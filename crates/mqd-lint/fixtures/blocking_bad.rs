// Fixture: blocking-call must fire on unbounded recv/join/read_line in
// worker code — the PR 4 pool-deadlock class. Linted under the virtual
// path crates/mqd-server/src/server.rs.
pub fn worker_loop(rx: &Mutex<Receiver<Conn>>, handles: Vec<JoinHandle<()>>) {
    loop {
        let guard = match rx.lock() {
            Ok(g) => g,
            Err(_) => return,
        };
        let Ok(conn) = guard.recv() else { return };
        drop(guard);
        serve(conn);
    }
}

pub fn shutdown(handles: Vec<JoinHandle<()>>) {
    for h in handles {
        let _ = h.join();
    }
}

pub fn read_command(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    let _ = reader.read_line(&mut line);
    line
}
