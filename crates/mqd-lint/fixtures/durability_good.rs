//! Known-good durability fixture: every mutation goes through the
//! `mqd_wal::fsio` wrappers; raw reads stay allowed (the rule polices
//! mutation, not access).

pub fn seal(dir: &std::path::Path, name: &str, bytes: &[u8], fsync: bool) -> Result<(), MqdError> {
    let path = dir.join(name);
    crate::fsio::write_atomic(&path, bytes, fsync)
}

pub fn prune(path: &std::path::Path, fsync: bool) -> Result<(), MqdError> {
    crate::fsio::remove_durable(path, fsync)
}

pub fn drop_tail(file: &std::fs::File, keep: u64, fsync: bool) -> Result<(), MqdError> {
    crate::fsio::truncate_file(file, keep, fsync)
}

pub fn scan(dir: &std::path::Path) -> std::io::Result<Vec<Vec<u8>>> {
    let mut blocks = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        blocks.push(std::fs::read(entry.path())?);
    }
    Ok(blocks)
}
