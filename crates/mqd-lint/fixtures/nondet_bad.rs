// Fixture: nondet-iter must fire on HashMap/HashSet iteration in a
// determinism-critical module. Linted under the virtual path
// crates/mqd-store/src/store.rs by tests/fixtures.rs.
use std::collections::{HashMap, HashSet};

pub fn posting_lists(index: &HashMap<u32, Vec<u32>>) -> Vec<u32> {
    let mut out = Vec::new();
    for (_, list) in index.iter() { //~ nondet-iter
        out.extend_from_slice(list);
    }
    out
}

pub fn drain_seen(seen: &mut HashSet<u32>) -> Vec<u32> {
    seen.drain().collect() //~ nondet-iter
}

pub fn loop_over_map(counts: HashMap<u32, u64>) -> u64 {
    let mut total = 0;
    for (_, v) in counts { //~ nondet-iter
        total += v;
    }
    total
}
