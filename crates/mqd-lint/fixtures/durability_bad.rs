//! Known-bad durability fixture: raw filesystem mutation inside mqd-wal,
//! skipping the fsync pairing that `mqd_wal::fsio` exists to enforce.

use std::fs::{File, OpenOptions};

pub fn seal(tmp: &std::path::Path, dst: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    std::fs::write(tmp, bytes)?; //~ durability-path
    std::fs::rename(tmp, dst)?; //~ durability-path
    Ok(())
}

pub fn reset(file: &File, stale: &std::path::Path) -> std::io::Result<()> {
    file.set_len(0)?; //~ durability-path
    std::fs::remove_file(stale)?; //~ durability-path
    Ok(())
}

pub fn reopen(path: &std::path::Path) -> std::io::Result<File> {
    let wal = OpenOptions::new().append(true).open(path)?; //~ durability-path
    drop(wal);
    File::create(path) //~ durability-path
}
