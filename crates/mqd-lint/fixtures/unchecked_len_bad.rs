// Known-bad: wire-decoded lengths reach allocations unclamped — one
// corrupt or hostile frame claiming an exabyte of rows OOMs the process
// before any validation runs (the PR 8 decoder-hardening class).
pub fn decode_batch(buf: &mut Cursor) -> Result<Vec<Row>, MqdError> {
    let count = buf.get_varint()?;
    let mut rows = Vec::with_capacity(count as usize); //~ unchecked-len
    for _ in 0..count {
        rows.push(decode_row(buf)?);
    }
    Ok(rows)
}

pub fn decode_flags(buf: &mut Cursor) -> Result<Vec<bool>, MqdError> {
    let n = buf.get_varint()? as usize;
    let mut flags = Vec::new();
    flags.reserve(n); //~ unchecked-len
    for _ in 0..n {
        flags.push(buf.get_u8()? != 0);
    }
    Ok(flags)
}

pub fn decode_blob(buf: &mut Cursor) -> Result<Vec<u8>, MqdError> {
    let len = buf.get_varint()? as usize;
    let mut blob = vec![0u8; len]; //~ unchecked-len
    for b in blob.iter_mut() {
        *b = buf.get_u8()?;
    }
    Ok(blob)
}
