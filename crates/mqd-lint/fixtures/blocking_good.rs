// Fixture: bounded variants and non-thread join() stay clean under
// blocking-call.
pub fn worker_loop(rx: &Receiver<Conn>) {
    loop {
        match rx.recv_timeout(Duration::from_millis(200)) {
            Ok(conn) => serve(conn),
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

pub fn checkpoint_path(dir: &Path, parts: &[String]) -> PathBuf {
    // Path::join and slice::join take arguments — not thread joins.
    dir.join(parts.join("-"))
}
