//! StreamScan and StreamScan+ (Section 5.1, delayed output).
//!
//! Per label `a` the engine tracks the oldest (`P_ou`) and latest (`P_lu`)
//! uncovered pending posts and the latest emitted post (`P_lc`). A pending
//! group is flushed at
//!
//! ```text
//! deadline(a) = min( time(P_lu) + tau,  time(P_ou) + lambda )
//! ```
//!
//! at which point `P_lu` is emitted: waiting longer than `time(P_ou) +
//! lambda` would let `P_ou` become uncoverable, and waiting longer than
//! `time(P_lu) + tau` would violate the delay constraint on the post about
//! to be emitted. With `tau >= lambda` this reproduces offline Scan exactly
//! (same `s` bound); with `tau < lambda` the bound degrades towards `2s`
//! (Section 5.1, Figure 5).
//!
//! StreamScan+ adds the cross-label optimization of Scan+: an emitted post
//! immediately becomes the "latest emitted" for **all** its labels and
//! prunes their pending queues.

use std::collections::VecDeque;

use mqd_core::{coverage, LabelId};

use crate::engine::{Emission, EngineSnapshot, StreamContext, StreamEngine};

#[derive(Clone, Debug, Default)]
struct LabelState {
    /// Uncovered pending posts for this label, in arrival order.
    pending: VecDeque<u32>,
    /// The latest emitted post carrying this label.
    last_emitted: Option<u32>,
    /// Flush moment for the pending group, when non-empty.
    deadline: Option<i64>,
}

/// StreamScan / StreamScan+ engine. Construct with [`StreamScan::new`] or
/// [`StreamScan::new_plus`].
pub struct StreamScan {
    plus: bool,
    states: Vec<LabelState>,
    /// Posts already emitted (dedup across labels).
    emitted: Vec<bool>,
}

impl StreamScan {
    /// Plain StreamScan: labels are fully independent.
    pub fn new(num_labels: usize, num_posts: usize) -> Self {
        StreamScan {
            plus: false,
            states: vec![LabelState::default(); num_labels],
            emitted: vec![false; num_posts],
        }
    }

    /// StreamScan+ with cross-label pruning.
    pub fn new_plus(num_labels: usize, num_posts: usize) -> Self {
        StreamScan {
            plus: true,
            ..Self::new(num_labels, num_posts)
        }
    }

    fn recompute_deadline(&mut self, ctx: &StreamContext<'_>, a: usize) {
        let st = &mut self.states[a];
        st.deadline = match (st.pending.front(), st.pending.back()) {
            (Some(&ou), Some(&lu)) => {
                // With a variable lambda the future coverer is unknown; the
                // oldest pending post's own threshold is the natural local
                // estimate (exact for fixed lambda).
                let lam = ctx.lambda.lambda(ctx.inst, ou, LabelId(a as u16));
                // Saturating: extreme (garbage) timestamps near i64::MAX must
                // degrade to "flush at the end of time", not overflow.
                Some(
                    ctx.inst
                        .value(lu)
                        .saturating_add(ctx.tau)
                        .min(ctx.inst.value(ou).saturating_add(lam)),
                )
            }
            _ => None,
        };
    }

    /// Emit the latest pending post of label `a` at `emit_time`.
    fn fire(&mut self, ctx: &StreamContext<'_>, a: usize, emit_time: i64, out: &mut Vec<Emission>) {
        let Some(&z) = self.states[a].pending.back() else {
            return;
        };
        if !std::mem::replace(&mut self.emitted[z as usize], true) {
            out.push(Emission { post: z, emit_time });
        }
        let touched: Vec<usize> = if self.plus {
            ctx.inst.labels(z).iter().map(|b| b.index()).collect()
        } else {
            vec![a]
        };
        for b in touched {
            let lb = LabelId(b as u16);
            if !ctx.inst.post(z).has_label(lb) {
                continue;
            }
            let st = &mut self.states[b];
            st.last_emitted = Some(z);
            st.pending
                .retain(|&p| !coverage::covers(ctx.inst, ctx.lambda, z, p, lb));
            self.recompute_deadline(ctx, b);
        }
    }
}

impl StreamEngine for StreamScan {
    fn name(&self) -> &'static str {
        if self.plus {
            "StreamScan+"
        } else {
            "StreamScan"
        }
    }

    fn on_time(&mut self, ctx: &StreamContext<'_>, now: i64, out: &mut Vec<Emission>) {
        // Fire due deadlines in chronological order; firing may reschedule,
        // so loop until quiescent.
        loop {
            let due = self
                .states
                .iter()
                .enumerate()
                .filter_map(|(a, st)| st.deadline.filter(|&d| d <= now).map(|d| (d, a)))
                .min();
            match due {
                Some((d, a)) => self.fire(ctx, a, d, out),
                None => break,
            }
        }
    }

    fn on_arrival(&mut self, ctx: &StreamContext<'_>, post: u32, out: &mut Vec<Emission>) {
        let _ = out;
        for &a in ctx.inst.labels(post) {
            let st = &self.states[a.index()];
            let already = st
                .last_emitted
                .is_some_and(|lc| coverage::covers(ctx.inst, ctx.lambda, lc, post, a));
            if already {
                continue;
            }
            self.states[a.index()].pending.push_back(post);
            self.recompute_deadline(ctx, a.index());
        }
    }

    fn snapshot(&self) -> Option<EngineSnapshot> {
        let mut snap = EngineSnapshot::empty(self.states.len());
        // Per-post pending-label sets, in arrival (= index) order.
        let mut pending: std::collections::BTreeMap<u32, Vec<u16>> = Default::default();
        for (a, st) in self.states.iter().enumerate() {
            if let Some(lc) = st.last_emitted {
                snap.emitted_per_label[a].push(lc);
            }
            for &p in &st.pending {
                pending.entry(p).or_default().push(a as u16);
            }
        }
        snap.pending = pending.into_iter().collect();
        snap.emitted = (0..self.emitted.len() as u32)
            .filter(|&p| self.emitted[p as usize])
            .collect();
        Some(snap)
    }

    fn restore(&mut self, ctx: &StreamContext<'_>, snap: &EngineSnapshot) -> bool {
        for st in &mut self.states {
            *st = LabelState::default();
        }
        self.emitted.iter_mut().for_each(|e| *e = false);
        for &p in &snap.emitted {
            self.emitted[p as usize] = true;
        }
        for (a, st) in self.states.iter_mut().enumerate() {
            st.last_emitted = snap.last_emitted(a);
        }
        // Entries are post-index sorted = arrival order, so queues rebuild
        // in their original order.
        for (p, labels) in &snap.pending {
            for &a in labels {
                self.states[a as usize].pending.push_back(*p);
            }
        }
        for a in 0..self.states.len() {
            self.recompute_deadline(ctx, a);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::run_stream;
    use mqd_core::{FixedLambda, Instance};

    fn line_instance(times: &[i64]) -> Instance {
        Instance::from_values(times.iter().map(|&t| (t, vec![0])), 1).unwrap()
    }

    #[test]
    fn emits_cover_with_delay_bound() {
        let inst = line_instance(&[0, 5, 10, 40, 45, 100]);
        let f = FixedLambda(10);
        let tau = 10;
        let mut eng = StreamScan::new(1, inst.len());
        let res = run_stream(&inst, &f, tau, &mut eng);
        assert!(coverage::is_cover(&inst, &f, &res.selected));
        assert!(res.max_delay <= tau, "max delay {} > tau", res.max_delay);
    }

    #[test]
    fn tau_at_least_lambda_matches_offline_scan() {
        // Section 5.1: with tau >= lambda the streaming algorithm outputs
        // exactly what offline Scan outputs.
        let times: Vec<i64> = vec![0, 3, 7, 12, 13, 20, 31, 33, 40, 55, 60, 61];
        let inst = Instance::from_values(
            times
                .iter()
                .enumerate()
                .map(|(i, &t)| (t, vec![(i % 2) as u16])),
            2,
        )
        .unwrap();
        let f = FixedLambda(6);
        let mut eng = StreamScan::new(2, inst.len());
        let res = run_stream(&inst, &f, 6, &mut eng);
        let offline = mqd_core::algorithms::solve_scan(&inst, &f);
        assert_eq!(res.selected, offline.selected);
    }

    #[test]
    fn zero_tau_emits_immediately() {
        let inst = line_instance(&[0, 1, 2, 3]);
        let f = FixedLambda(2);
        let mut eng = StreamScan::new(1, inst.len());
        let res = run_stream(&inst, &f, 0, &mut eng);
        assert!(coverage::is_cover(&inst, &f, &res.selected));
        assert_eq!(res.max_delay, 0);
    }

    #[test]
    fn plus_variant_shares_picks_across_labels() {
        // A post carrying both labels is emitted for label 0; StreamScan+
        // must let it satisfy label 1's pending group too.
        let inst =
            Instance::from_values(vec![(0, vec![0, 1]), (1, vec![0]), (2, vec![1])], 2).unwrap();
        let f = FixedLambda(10);
        let mut base = StreamScan::new(2, inst.len());
        let mut plus = StreamScan::new_plus(2, inst.len());
        let rb = run_stream(&inst, &f, 3, &mut base);
        let rp = run_stream(&inst, &f, 3, &mut plus);
        assert!(coverage::is_cover(&inst, &f, &rb.selected));
        assert!(coverage::is_cover(&inst, &f, &rp.selected));
        assert!(rp.selected.len() <= rb.selected.len());
    }

    #[test]
    fn covered_arrivals_are_skipped() {
        // After an emission, posts within lambda of it must not re-enter the
        // pending queue.
        let inst = line_instance(&[0, 1, 2, 3, 4, 5]);
        let f = FixedLambda(5);
        let mut eng = StreamScan::new(1, inst.len());
        let res = run_stream(&inst, &f, 1, &mut eng);
        assert!(coverage::is_cover(&inst, &f, &res.selected));
        // One emission around t<=1 covers everything up to t=5+... at most 2.
        assert!(res.selected.len() <= 2);
    }

    #[test]
    fn empty_stream() {
        let inst = Instance::from_values(Vec::<(i64, Vec<u16>)>::new(), 1).unwrap();
        let f = FixedLambda(1);
        let mut eng = StreamScan::new(1, 0);
        let res = run_stream(&inst, &f, 5, &mut eng);
        assert!(res.selected.is_empty());
        assert!(res.emissions.is_empty());
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        // Split a replay at every midpoint: the restored engine must finish
        // the stream with exactly the emissions the uninterrupted one makes.
        let inst = Instance::from_values(
            vec![
                (0, vec![0]),
                (3, vec![1]),
                (7, vec![0, 1]),
                (12, vec![0]),
                (30, vec![1]),
                (33, vec![0]),
            ],
            2,
        )
        .unwrap();
        let f = FixedLambda(6);
        let tau = 4;
        let ctx = StreamContext::new(&inst, &f, tau);
        for plus in [false, true] {
            let mk = || {
                if plus {
                    StreamScan::new_plus(2, inst.len())
                } else {
                    StreamScan::new(2, inst.len())
                }
            };
            let mut base = mk();
            let full = run_stream(&inst, &f, tau, &mut base);
            for cut in 0..inst.len() {
                let mut eng = mk();
                let mut out = Vec::new();
                for p in 0..cut as u32 {
                    let t = inst.value(p);
                    eng.on_time(&ctx, t.saturating_sub(1), &mut out);
                    eng.on_arrival(&ctx, p, &mut out);
                }
                let snap = eng.snapshot().expect("scan supports snapshots");
                let mut restored = mk();
                assert!(restored.restore(&ctx, &snap));
                for p in cut as u32..inst.len() as u32 {
                    let t = inst.value(p);
                    restored.on_time(&ctx, t.saturating_sub(1), &mut out);
                    restored.on_arrival(&ctx, p, &mut out);
                }
                restored.flush(&ctx, &mut out);
                assert_eq!(out, full.emissions, "plus={plus} cut={cut}");
            }
        }
    }

    #[test]
    fn extreme_timestamps_do_not_overflow() {
        // Garbage dimension values near the i64 edges must saturate into
        // "flush at end of stream", never panic on overflow (debug builds).
        let inst = Instance::from_values(
            vec![
                (i64::MIN + 1, vec![0]),
                (0, vec![0]),
                (i64::MAX - 1, vec![0]),
            ],
            1,
        )
        .unwrap();
        let f = FixedLambda(i64::MAX);
        let mut eng = StreamScan::new(1, inst.len());
        let res = run_stream(&inst, &f, i64::MAX, &mut eng);
        assert!(coverage::is_cover(&inst, &f, &res.selected));
    }
}
