//! A live diversified timeline: the digest a client UI actually renders.
//!
//! The paper's engines decide *which* posts enter the output sub-stream;
//! a timeline view additionally forgets posts that scrolled out of the
//! trailing window. [`WindowedTimeline`] buffers the last `window` ms of
//! matched posts and produces, on demand, a lambda-cover of exactly that
//! window (offline Scan — per-label optimal), so the rendered digest is
//! always a valid representative set of what the user can still scroll to.

use std::collections::VecDeque;

use mqd_core::algorithms::solve_scan;
use mqd_core::{FixedLambda, Instance, LabelId, Post, PostId};

/// A post held by the timeline.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TimelinePost {
    /// External post id.
    pub id: u64,
    /// Timestamp (ms).
    pub time: i64,
    /// Matched labels.
    pub labels: Vec<u16>,
}

/// Sliding-window diversified timeline.
#[derive(Debug)]
pub struct WindowedTimeline {
    window: i64,
    lambda: i64,
    num_labels: usize,
    posts: VecDeque<TimelinePost>,
    last_time: i64,
}

impl WindowedTimeline {
    /// Creates a timeline over the trailing `window` ms, diversified with
    /// threshold `lambda` (both must be positive and `lambda <= window`
    /// to be meaningful).
    pub fn new(num_labels: usize, window: i64, lambda: i64) -> Self {
        assert!(window > 0 && lambda >= 0, "window > 0, lambda >= 0");
        WindowedTimeline {
            window,
            lambda,
            num_labels,
            posts: VecDeque::new(),
            last_time: i64::MIN,
        }
    }

    /// Ingests a matched post (non-decreasing times); expired posts are
    /// dropped. Returns how many posts expired.
    pub fn on_post(&mut self, id: u64, time: i64, labels: Vec<u16>) -> usize {
        debug_assert!(time >= self.last_time, "timeline input must be ordered");
        self.last_time = time;
        self.posts.push_back(TimelinePost { id, time, labels });
        self.expire(time)
    }

    /// Advances the clock without a post (e.g. a UI refresh tick).
    pub fn on_tick(&mut self, time: i64) -> usize {
        self.last_time = self.last_time.max(time);
        self.expire(time)
    }

    fn expire(&mut self, now: i64) -> usize {
        let mut dropped = 0;
        while self
            .posts
            .front()
            .is_some_and(|p| p.time < now.saturating_sub(self.window))
        {
            self.posts.pop_front();
            dropped += 1;
        }
        dropped
    }

    /// Number of posts currently inside the window.
    pub fn len(&self) -> usize {
        self.posts.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.posts.is_empty()
    }

    /// The current diversified digest: a lambda-cover of the live window
    /// (per-label optimal Scan), in time order.
    pub fn digest(&self) -> Vec<TimelinePost> {
        if self.posts.is_empty() {
            return Vec::new();
        }
        let posts: Vec<Post> = self
            .posts
            .iter()
            .map(|p| {
                Post::new(
                    PostId(p.id),
                    p.time,
                    p.labels.iter().map(|&l| LabelId(l)).collect(),
                )
            })
            .collect();
        let inst = Instance::from_posts(posts, self.num_labels)
            // lint:allow(panic-path): ingest() rejects labels >= num_labels, so construction cannot fail here
            .expect("timeline inputs are validated on ingest");
        let lam = FixedLambda(self.lambda);
        let sol = solve_scan(&inst, &lam);
        sol.selected
            .iter()
            .map(|&i| TimelinePost {
                id: inst.post(i).id().0,
                time: inst.value(i),
                labels: inst.labels(i).iter().map(|l| l.0).collect(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqd_core::coverage;

    #[test]
    fn digest_covers_live_window() {
        let mut tl = WindowedTimeline::new(2, 100, 10);
        for t in 0..50 {
            tl.on_post(t as u64, t, vec![(t % 2) as u16]);
        }
        let digest = tl.digest();
        assert!(!digest.is_empty());
        assert!(digest.len() < tl.len());
        // Verify against a freshly built instance of the window.
        let inst =
            Instance::from_values((0..50).map(|t| (t as i64, vec![(t % 2) as u16])), 2).unwrap();
        let selected: Vec<u32> = digest
            .iter()
            .map(|p| inst.window(p.time, p.time).start as u32)
            .collect();
        assert!(coverage::is_cover(&inst, &FixedLambda(10), &selected));
    }

    #[test]
    fn old_posts_expire() {
        let mut tl = WindowedTimeline::new(1, 100, 10);
        tl.on_post(0, 0, vec![0]);
        tl.on_post(1, 50, vec![0]);
        assert_eq!(tl.len(), 2);
        let dropped = tl.on_post(2, 150, vec![0]);
        assert_eq!(dropped, 1); // post at t=0 left the window
        assert_eq!(tl.len(), 2);
        assert_eq!(tl.on_tick(1_000), 2);
        assert!(tl.is_empty());
        assert!(tl.digest().is_empty());
    }

    #[test]
    fn digest_tracks_expiry() {
        let mut tl = WindowedTimeline::new(1, 100, 5);
        tl.on_post(0, 0, vec![0]);
        let d0 = tl.digest();
        assert_eq!(d0.len(), 1);
        assert_eq!(d0[0].id, 0);
        tl.on_post(1, 200, vec![0]); // expires post 0
        let d1 = tl.digest();
        assert_eq!(d1.len(), 1);
        assert_eq!(d1[0].id, 1);
    }

    #[test]
    fn boundary_post_stays_in_window() {
        let mut tl = WindowedTimeline::new(1, 100, 5);
        tl.on_post(0, 0, vec![0]);
        tl.on_tick(100); // age == window: still visible
        assert_eq!(tl.len(), 1);
        tl.on_tick(101);
        assert!(tl.is_empty());
    }

    #[test]
    fn digest_is_time_ordered_and_ids_preserved() {
        let mut tl = WindowedTimeline::new(3, 1_000, 50);
        for t in (0..500).step_by(7) {
            tl.on_post(1_000 + t as u64, t, vec![(t % 3) as u16]);
        }
        let d = tl.digest();
        for w in d.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        assert!(d.iter().all(|p| p.id >= 1_000));
    }
}
