//! Multi-user fan-out: one pass over the global post stream serving many
//! subscribers at once.
//!
//! Section 7.3 motivates Scan-family algorithms because the diversifier
//! "has to be executed for millions of users (as in Twitter)". Running one
//! engine per user touches every user for every post; this hub inverts the
//! subscriptions (topic → users) so a post only touches the users actually
//! subscribed to one of its topics, and keeps the per-(user, topic)
//! instant-output cache of Section 5.1 (`tau = 0`, `2s`-bounded per user).
//!
//! Equivalence with running [`crate::InstantScan`] independently per user
//! is covered by tests.
//!
//! For **offline** digests (a user opening their timeline and receiving a
//! diversified recap) the batch solver [`solve_batch_users`] distributes
//! users across worker threads over one shared read-only [`Instance`]:
//! each worker builds the user's label-filtered view, runs the sequential
//! GreedySC on it (no nested parallelism), and maps the digest back to
//! global post indices. Users are independent, so the output is
//! byte-identical at any thread count.

use std::collections::HashMap;

use mqd_core::algorithms::solve_greedy_sc_threads;
use mqd_core::{FixedLambda, Instance, LabelId, Post, PostId};

/// Per-user delivery statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UserStats {
    /// Posts matching at least one subscribed topic.
    pub matched: u64,
    /// Posts actually delivered (the diversified sub-stream).
    pub delivered: u64,
}

/// The shared-pass multi-user diversifier (instant output).
///
/// ```
/// use mqd_stream::MultiUserHub;
/// // user 0 follows topic 7; user 1 follows topics 7 and 9.
/// let mut hub = MultiUserHub::new(vec![vec![7], vec![7, 9]], 10);
/// assert_eq!(hub.on_post(0, &[7]), vec![0, 1]);   // first post: both users
/// assert!(hub.on_post(5, &[7]).is_empty());       // covered for both
/// assert_eq!(hub.on_post(6, &[9]), vec![1]);      // topic 9 is new for user 1
/// ```
#[derive(Debug)]
pub struct MultiUserHub {
    lambda: i64,
    /// topic -> subscribed user ids.
    subscribers: HashMap<u32, Vec<u32>>,
    /// (user, topic) -> time of the last post delivered to this user that
    /// carried this topic.
    cache: HashMap<(u32, u32), i64>,
    stats: Vec<UserStats>,
    /// Per-user subscription lists (for delivery-time cache updates).
    subscriptions: Vec<Vec<u32>>,
}

impl MultiUserHub {
    /// Builds a hub: `subscriptions[u]` is user `u`'s topic list; `lambda`
    /// is the uniform diversity threshold on the time dimension.
    pub fn new(subscriptions: Vec<Vec<u32>>, lambda: i64) -> Self {
        assert!(lambda >= 0);
        let mut subscribers: HashMap<u32, Vec<u32>> = HashMap::new();
        for (u, topics) in subscriptions.iter().enumerate() {
            for &t in topics {
                let entry = subscribers.entry(t).or_default();
                if entry.last() != Some(&(u as u32)) {
                    entry.push(u as u32);
                }
            }
        }
        let stats = vec![UserStats::default(); subscriptions.len()];
        MultiUserHub {
            lambda,
            subscribers,
            cache: HashMap::new(),
            stats,
            subscriptions,
        }
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.subscriptions.len()
    }

    /// Per-user statistics so far.
    pub fn stats(&self) -> &[UserStats] {
        &self.stats
    }

    /// Processes one global post (its timestamp and topic annotations);
    /// posts must arrive in non-decreasing time order. Returns the ids of
    /// the users this post is delivered to (sorted, deduplicated).
    pub fn on_post(&mut self, time: i64, topics: &[u32]) -> Vec<u32> {
        // Users touched by this post, with the subset of their subscribed
        // topics the post carries.
        let mut touched: Vec<u32> = topics
            .iter()
            .filter_map(|t| self.subscribers.get(t))
            .flat_map(|us| us.iter().copied())
            .collect();
        touched.sort_unstable();
        touched.dedup();

        let mut delivered = Vec::new();
        for &u in &touched {
            self.stats[u as usize].matched += 1;
            // Instant rule: deliver iff some shared topic's cache entry is
            // stale (no delivery within lambda).
            let shared: Vec<u32> = self.subscriptions[u as usize]
                .iter()
                .copied()
                .filter(|t| topics.contains(t))
                .collect();
            // Gap in i128: `time - last` overflows i64 when the stream
            // spans most of the timestamp domain.
            let uncovered = shared.iter().any(|&t| {
                self.cache
                    .get(&(u, t))
                    .is_none_or(|&last| time as i128 - last as i128 > self.lambda as i128)
            });
            if uncovered {
                for &t in &shared {
                    self.cache.insert((u, t), time);
                }
                self.stats[u as usize].delivered += 1;
                delivered.push(u);
            }
        }
        delivered
    }
}

/// One user's digest request: the global labels they subscribe to and
/// their uniform diversity threshold.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchUser {
    /// Subscribed global label ids (deduplicated internally; order kept).
    pub labels: Vec<u16>,
    /// Uniform threshold on the diversity dimension.
    pub lambda: i64,
}

/// Solves one GreedySC digest per user over a shared read-only instance,
/// distributing users across the configured worker threads. Returns, per
/// user, the selected **global** post indices (sorted). Byte-identical to
/// the sequential per-user loop at any thread count.
pub fn solve_batch_users(inst: &Instance, users: &[BatchUser]) -> Vec<Vec<u32>> {
    solve_batch_users_threads(mqd_par::configured_threads(), inst, users)
}

/// [`solve_batch_users`] with an explicit thread count.
pub fn solve_batch_users_threads(
    threads: usize,
    inst: &Instance,
    users: &[BatchUser],
) -> Vec<Vec<u32>> {
    mqd_par::par_map_range_coarse_threads(threads, users.len(), |u| solve_one_user(inst, &users[u]))
}

/// Builds the user's label-filtered sub-instance and solves it with the
/// sequential GreedySC (workers must not nest parallelism).
fn solve_one_user(inst: &Instance, user: &BatchUser) -> Vec<u32> {
    let mut subscribed = user.labels.clone();
    subscribed.sort_unstable();
    subscribed.dedup();
    // Global label -> dense local id.
    let local: HashMap<u16, u16> = subscribed
        .iter()
        .enumerate()
        .map(|(i, &g)| (g, i as u16))
        .collect();

    let mut posts = Vec::new();
    let mut to_global = Vec::new();
    for k in 0..inst.len() as u32 {
        let labels: Vec<LabelId> = inst
            .labels(k)
            .iter()
            .filter_map(|a| local.get(&(a.index() as u16)).map(|&l| LabelId(l)))
            .collect();
        if !labels.is_empty() {
            posts.push(Post::new(PostId(k as u64), inst.value(k), labels));
            to_global.push(k);
        }
    }
    if posts.is_empty() {
        return Vec::new();
    }
    let sub = Instance::from_posts(posts, subscribed.len())
        // lint:allow(panic-path): the remap above assigns ids 0..subscribed.len(), so density holds by construction
        .expect("local labels are dense by construction");
    let sol = solve_greedy_sc_threads(1, &sub, &FixedLambda(user.lambda));
    let mut out: Vec<u32> = sol
        .selected
        .iter()
        .map(|&i| to_global[i as usize])
        .collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instant::InstantScan;
    use crate::simulator::run_stream;
    use mqd_core::{FixedLambda, Instance, LabelId, Post, PostId};

    #[test]
    fn routes_only_to_subscribers() {
        let mut hub = MultiUserHub::new(vec![vec![0], vec![1], vec![0, 1]], 10);
        assert_eq!(hub.num_users(), 3);
        let d = hub.on_post(0, &[0]);
        assert_eq!(d, vec![0, 2]);
        let d = hub.on_post(1, &[2]); // nobody subscribed
        assert!(d.is_empty());
        assert_eq!(hub.stats()[1].matched, 0);
    }

    #[test]
    fn instant_rule_suppresses_covered_posts() {
        let mut hub = MultiUserHub::new(vec![vec![7]], 10);
        assert_eq!(hub.on_post(0, &[7]), vec![0]);
        assert!(hub.on_post(5, &[7]).is_empty()); // within lambda
        assert_eq!(hub.on_post(11, &[7]), vec![0]); // beyond lambda
        assert_eq!(
            hub.stats()[0],
            UserStats {
                matched: 3,
                delivered: 2
            }
        );
    }

    #[test]
    fn cross_topic_delivery_updates_all_shared_caches() {
        // A post carrying both topics refreshes both caches, exactly like
        // InstantScan's cache update.
        let mut hub = MultiUserHub::new(vec![vec![0, 1]], 10);
        assert_eq!(hub.on_post(0, &[0, 1]), vec![0]);
        assert!(hub.on_post(5, &[1]).is_empty());
        assert_eq!(hub.on_post(20, &[1]), vec![0]);
    }

    /// The hub must behave exactly like one InstantScan per user.
    #[test]
    fn equivalent_to_per_user_instant_engines() {
        use mqd_rng::rngs::StdRng;
        use mqd_rng::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let num_topics = 6u32;
        let users: Vec<Vec<u32>> = (0..5)
            .map(|_| {
                let mut ts: Vec<u32> = (0..num_topics)
                    .filter(|_| rng.random::<f64>() < 0.4)
                    .collect();
                if ts.is_empty() {
                    ts.push(rng.random_range(0..num_topics));
                }
                ts
            })
            .collect();
        // Global stream: strictly increasing times to avoid tie ambiguity.
        let stream: Vec<(i64, Vec<u32>)> = (0..200)
            .map(|i| {
                let t = i as i64 * 3 + rng.random_range(0..2);
                let mut topics = vec![rng.random_range(0..num_topics)];
                if rng.random::<f64>() < 0.3 {
                    topics.push(rng.random_range(0..num_topics));
                }
                topics.sort_unstable();
                topics.dedup();
                (t, topics)
            })
            .collect();
        let lambda = 25i64;

        let mut hub = MultiUserHub::new(users.clone(), lambda);
        let mut hub_deliveries: Vec<Vec<i64>> = vec![Vec::new(); users.len()];
        for (t, topics) in &stream {
            for u in hub.on_post(*t, topics) {
                hub_deliveries[u as usize].push(*t);
            }
        }

        for (u, topics) in users.iter().enumerate() {
            // Build this user's filtered instance with local label ids.
            let mut posts = Vec::new();
            for (i, (t, ptopics)) in stream.iter().enumerate() {
                let labels: Vec<LabelId> = topics
                    .iter()
                    .enumerate()
                    .filter(|(_, gt)| ptopics.contains(gt))
                    .map(|(local, _)| LabelId(local as u16))
                    .collect();
                if !labels.is_empty() {
                    posts.push(Post::new(PostId(i as u64), *t, labels));
                }
            }
            let inst = Instance::from_posts(posts, topics.len()).unwrap();
            let mut eng = InstantScan::new(topics.len());
            let res = run_stream(&inst, &FixedLambda(lambda), 0, &mut eng);
            let expect: Vec<i64> = res.selected.iter().map(|&i| inst.value(i)).collect();
            assert_eq!(
                hub_deliveries[u], expect,
                "user {u} hub vs standalone mismatch"
            );
        }
    }

    #[test]
    fn hub_survives_extreme_timestamps() {
        // Regression: the staleness check `time - last > lambda` was raw
        // i64 and overflowed once a stream spanned most of the timestamp
        // domain.
        let mut hub = MultiUserHub::new(vec![vec![0]], 10);
        assert_eq!(hub.on_post(i64::MIN + 1, &[0]), vec![0]);
        // Far beyond lambda: must deliver, not wrap around.
        assert_eq!(hub.on_post(i64::MAX, &[0]), vec![0]);
        assert_eq!(
            hub.stats()[0],
            UserStats {
                matched: 2,
                delivered: 2
            }
        );
    }

    #[test]
    fn empty_hub() {
        let mut hub = MultiUserHub::new(vec![], 5);
        assert!(hub.on_post(0, &[1]).is_empty());
        assert_eq!(hub.num_users(), 0);
    }

    fn batch_fixture() -> (Instance, Vec<BatchUser>) {
        use mqd_rng::rngs::StdRng;
        use mqd_rng::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        let mut t = 0i64;
        let items: Vec<(i64, Vec<u16>)> = (0..300)
            .map(|_| {
                t += rng.random_range(0..30i64);
                let mut ls = vec![rng.random_range(0..8u16)];
                if rng.random::<f64>() < 0.3 {
                    ls.push(rng.random_range(0..8u16));
                    ls.sort_unstable();
                    ls.dedup();
                }
                (t, ls)
            })
            .collect();
        let inst = Instance::from_values(items, 8).unwrap();
        let users: Vec<BatchUser> = (0..12)
            .map(|_| {
                let k = rng.random_range(1..4usize);
                BatchUser {
                    labels: (0..k).map(|_| rng.random_range(0..8u16)).collect(),
                    lambda: rng.random_range(10..120i64),
                }
            })
            .collect();
        (inst, users)
    }

    #[test]
    fn batch_solver_identical_across_thread_counts() {
        let (inst, users) = batch_fixture();
        let seq = solve_batch_users_threads(1, &inst, &users);
        assert_eq!(seq.len(), users.len());
        for threads in [2, 3, 8] {
            assert_eq!(
                solve_batch_users_threads(threads, &inst, &users),
                seq,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn batch_digests_cover_each_users_view() {
        use mqd_core::coverage;
        let (inst, users) = batch_fixture();
        let digests = solve_batch_users_threads(2, &inst, &users);
        for (user, digest) in users.iter().zip(&digests) {
            // Rebuild the user's filtered view and check the digest (mapped
            // back to local indices) is a lambda-cover of it.
            let mut subscribed = user.labels.clone();
            subscribed.sort_unstable();
            subscribed.dedup();
            let mut posts = Vec::new();
            let mut to_global = Vec::new();
            for k in 0..inst.len() as u32 {
                let labels: Vec<LabelId> = inst
                    .labels(k)
                    .iter()
                    .filter_map(|a| {
                        subscribed
                            .iter()
                            .position(|&g| g as usize == a.index())
                            .map(|l| LabelId(l as u16))
                    })
                    .collect();
                if !labels.is_empty() {
                    posts.push(Post::new(PostId(k as u64), inst.value(k), labels));
                    to_global.push(k);
                }
            }
            if posts.is_empty() {
                assert!(digest.is_empty());
                continue;
            }
            let sub = Instance::from_posts(posts, subscribed.len()).unwrap();
            let local_sel: Vec<u32> = digest
                .iter()
                .map(|g| to_global.iter().position(|x| x == g).unwrap() as u32)
                .collect();
            assert!(coverage::is_cover(
                &sub,
                &FixedLambda(user.lambda),
                &local_sel
            ));
        }
    }

    #[test]
    fn batch_user_with_unused_labels_gets_empty_digest() {
        let inst = Instance::from_values(vec![(0, vec![0]), (5, vec![1])], 2).unwrap();
        let users = vec![BatchUser {
            labels: vec![7],
            lambda: 10,
        }];
        // Label 7 never occurs: the filtered view is empty.
        assert_eq!(
            solve_batch_users_threads(2, &inst, &users),
            vec![Vec::<u32>::new()]
        );
    }
}
