//! Streaming Multi-Query Diversification (Section 5 of the EDBT 2014
//! paper): progressively report a small lambda-cover of an unbounded post
//! stream, releasing every reported post within delay `tau` of its
//! timestamp.
//!
//! Engines:
//!
//! * [`StreamScan`] / `StreamScan::new_plus` — per-label pending groups with
//!   the `min(time(P_lu)+tau, time(P_ou)+lambda)` flush rule (Section 5.1);
//!   equals offline Scan when `tau >= lambda`.
//! * [`StreamGreedy`] / `StreamGreedy::new_plus` — windowed greedy set
//!   cover over `[time(P'), time(P')+tau]` (Section 5.2).
//! * [`InstantScan`] — the `tau = 0` cache scheme with the `2s` bound.
//!
//! Use [`run_stream`] to replay an [`mqd_core::Instance`] through an engine
//! and obtain the emitted sub-stream plus delay statistics.
//!
//! Scale-out layers (built on `mqd-par` and `std::sync::mpsc` only):
//!
//! * [`run_sharded_stream`] — labels partitioned across shard threads, each
//!   running its own engine behind a bounded channel; merged output keeps
//!   the per-post delay bound `tau`.
//! * [`solve_batch_users`] — many users' offline digests solved in parallel
//!   over one shared read-only instance.

#![warn(missing_docs)]

pub mod chaos;
pub mod checkpoint;
pub mod density;
pub mod engine;
pub mod greedy;
pub mod instant;
pub mod multiuser;
pub mod repair;
pub mod scan;
pub mod shard;
pub mod simulator;
pub mod supervisor;
pub mod timeline;

pub use chaos::{Fault, FaultKind, FaultPlan, FaultReport, RestartRecord, ShardCounters};
pub use checkpoint::{encode_checkpoint, resume_supervised};
pub use density::{AdaptiveEngine, AdaptiveInstant, OnlineLambda};
pub use engine::{Emission, EngineSnapshot, StreamContext, StreamEngine};
pub use greedy::StreamGreedy;
pub use instant::InstantScan;
pub use repair::CoverRepair;

pub use multiuser::{
    solve_batch_users, solve_batch_users_threads, BatchUser, MultiUserHub, UserStats,
};
pub use scan::StreamScan;
pub use shard::{run_sharded_reference, run_sharded_stream, ShardEngineKind};
pub use simulator::{run_stream, StreamRunResult};
pub use supervisor::{
    run_supervised_reference, run_supervised_stream, SupervisedEmission, SupervisedRun,
    SupervisedRunResult, SupervisorConfig,
};
pub use timeline::{TimelinePost, WindowedTimeline};
