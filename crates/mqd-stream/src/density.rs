//! Online proportional diversity: Section 6's Equation 2 estimated from
//! the stream itself.
//!
//! Offline, `VariableLambda` precomputes `lambda_a(P_i)` from the full
//! dataset. A streaming system only knows the past, so [`OnlineLambda`]
//! estimates the density terms over a trailing window of length
//! `2*lambda0` per label, and the average per-label rate `density0` from
//! the whole prefix — both updated in O(1) amortized per post. The
//! [`AdaptiveInstant`] engine plugs the estimate into the instant-output
//! rule: every emitted post freezes the lambda that was current at emission
//! (the coverer's lambda, keeping the directional semantics of Section 6).

use std::collections::VecDeque;

use mqd_core::LabelId;

/// Sliding-window density estimator implementing Equation 2 online.
#[derive(Debug)]
pub struct OnlineLambda {
    lambda0: i64,
    /// Trailing window length (`2 * lambda0`).
    window: i64,
    /// Recent post times per label, pruned to the trailing window.
    recent: Vec<VecDeque<i64>>,
    /// Total label occurrences observed.
    total_pairs: u64,
    first_time: Option<i64>,
    last_time: i64,
}

impl OnlineLambda {
    /// Creates an estimator for `num_labels` labels with base threshold
    /// `lambda0 > 0`.
    pub fn new(num_labels: usize, lambda0: i64) -> Self {
        assert!(lambda0 > 0, "lambda0 must be positive");
        OnlineLambda {
            lambda0,
            window: lambda0.saturating_mul(2),
            recent: vec![VecDeque::new(); num_labels],
            total_pairs: 0,
            first_time: None,
            last_time: i64::MIN,
        }
    }

    /// The base threshold.
    pub fn lambda0(&self) -> i64 {
        self.lambda0
    }

    /// Records a post (non-decreasing times).
    pub fn observe(&mut self, time: i64, labels: &[LabelId]) {
        debug_assert!(time >= self.last_time, "stream must be time-ordered");
        self.first_time.get_or_insert(time);
        self.last_time = time;
        for &a in labels {
            let q = &mut self.recent[a.index()];
            q.push_back(time);
            while q.front().is_some_and(|&t| t < time - self.window) {
                q.pop_front();
            }
            self.total_pairs += 1;
        }
    }

    /// Current Equation-2 estimate for label `a` at the stream head:
    /// `lambda0 * e^(1 - density_a / density0)`, clamped to
    /// `[0, ceil(e * lambda0)]`. Returns `lambda0` until enough stream has
    /// elapsed to estimate `density0`.
    pub fn lambda_for(&self, a: LabelId) -> i64 {
        let Some(first) = self.first_time else {
            return self.lambda0;
        };
        let elapsed = (self.last_time - first).max(1);
        if elapsed < self.window {
            // Not enough history for a stable baseline.
            return self.lambda0;
        }
        let density0 = self.total_pairs as f64 / (self.recent.len().max(1) as f64 * elapsed as f64);
        let expected = (density0 * self.window as f64).max(f64::MIN_POSITIVE);
        // Prune lazily on read too, in case this label went quiet.
        let q = &self.recent[a.index()];
        let live = q
            .iter()
            .rev()
            .take_while(|&&t| t >= self.last_time - self.window)
            .count();
        let ratio = live as f64 / expected;
        let cap = (self.lambda0 as f64 * std::f64::consts::E).ceil() as i64;
        ((self.lambda0 as f64 * (1.0 - ratio).exp()).round() as i64).clamp(0, cap)
    }
}

/// Instant-output diversification with the online proportional lambda: a
/// post is emitted iff some of its labels has no previous emission within
/// that emission's frozen lambda.
#[derive(Debug)]
pub struct AdaptiveInstant {
    density: OnlineLambda,
    /// Per label: time and frozen lambda of the latest emission.
    cache: Vec<Option<(i64, i64)>>,
}

impl AdaptiveInstant {
    /// Creates the engine.
    pub fn new(num_labels: usize, lambda0: i64) -> Self {
        AdaptiveInstant {
            density: OnlineLambda::new(num_labels, lambda0),
            cache: vec![None; num_labels],
        }
    }

    /// Processes one post; returns whether it is emitted into the digest.
    pub fn on_post(&mut self, time: i64, labels: &[LabelId]) -> bool {
        self.density.observe(time, labels);
        let uncovered = labels.iter().any(|&a| {
            self.cache[a.index()]
                .is_none_or(|(t_lc, lam)| time as i128 - t_lc as i128 > lam as i128)
        });
        if uncovered {
            for &a in labels {
                let lam = self.density.lambda_for(a);
                self.cache[a.index()] = Some((time, lam));
            }
        }
        uncovered
    }

    /// The current lambda estimate for a label (for introspection/UIs).
    pub fn current_lambda(&self, a: LabelId) -> i64 {
        self.density.lambda_for(a)
    }
}

/// [`AdaptiveInstant`] as a [`StreamEngine`], so it plugs into
/// [`crate::run_stream`] and the CLI. It ignores the context's
/// `LambdaProvider` (it derives its own thresholds from `lambda0`), and
/// its output is **guaranteed** to be a lambda-cover for the fixed
/// threshold `ceil(e * lambda0)` — Equation 2's analytic maximum: every
/// suppressed occurrence was within its coverer's frozen lambda, which
/// never exceeds that cap; every other post covers itself.
pub struct AdaptiveEngine {
    inner: AdaptiveInstant,
}

impl AdaptiveEngine {
    /// Creates the engine with base threshold `lambda0 > 0`.
    pub fn new(num_labels: usize, lambda0: i64) -> Self {
        AdaptiveEngine {
            inner: AdaptiveInstant::new(num_labels, lambda0),
        }
    }

    /// The cover guarantee of this engine's output: `ceil(e * lambda0)`.
    pub fn cover_lambda(lambda0: i64) -> i64 {
        (lambda0 as f64 * std::f64::consts::E).ceil() as i64
    }
}

impl crate::engine::StreamEngine for AdaptiveEngine {
    fn name(&self) -> &'static str {
        "AdaptiveInstant"
    }

    fn on_time(
        &mut self,
        _ctx: &crate::engine::StreamContext<'_>,
        _now: i64,
        _out: &mut Vec<crate::engine::Emission>,
    ) {
    }

    fn on_arrival(
        &mut self,
        ctx: &crate::engine::StreamContext<'_>,
        post: u32,
        out: &mut Vec<crate::engine::Emission>,
    ) {
        let time = ctx.inst.value(post);
        if self.inner.on_post(time, ctx.inst.labels(post)) {
            out.push(crate::engine::Emission {
                post,
                emit_time: time,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L0: LabelId = LabelId(0);
    const L1: LabelId = LabelId(1);

    #[test]
    fn warmup_returns_lambda0() {
        let mut d = OnlineLambda::new(2, 100);
        assert_eq!(d.lambda_for(L0), 100);
        d.observe(0, &[L0]);
        d.observe(50, &[L0]);
        assert_eq!(d.lambda_for(L0), 100, "within warmup window");
    }

    #[test]
    fn dense_label_gets_smaller_lambda_than_sparse() {
        let mut d = OnlineLambda::new(2, 100);
        // Label 0 posts every 10 units, label 1 every 200.
        for t in (0..2_000).step_by(10) {
            d.observe(t, &[L0]);
            if t % 200 == 0 {
                d.observe(t, &[L1]);
            }
        }
        let dense = d.lambda_for(L0);
        let sparse = d.lambda_for(L1);
        assert!(
            dense < sparse,
            "dense {dense} should be below sparse {sparse}"
        );
        let cap = (100.0 * std::f64::consts::E).ceil() as i64;
        assert!(sparse <= cap);
    }

    #[test]
    fn burst_shrinks_lambda_then_recovers() {
        let mut d = OnlineLambda::new(1, 100);
        // Steady phase.
        for t in (0..5_000).step_by(100) {
            d.observe(t, &[L0]);
        }
        let steady = d.lambda_for(L0);
        // Burst: 10x rate.
        for t in (5_000..5_600).step_by(10) {
            d.observe(t, &[L0]);
        }
        let burst = d.lambda_for(L0);
        assert!(burst < steady, "burst {burst} vs steady {steady}");
        // Quiet again: the trailing window empties out.
        d.observe(7_000, &[L0]);
        let after = d.lambda_for(L0);
        assert!(after > burst, "after {after} vs burst {burst}");
    }

    #[test]
    fn adaptive_instant_emits_more_during_bursts() {
        // Fixed instant with lambda0 emits ~1 per lambda0 regardless of
        // rate; the adaptive engine shrinks lambda inside the burst and
        // keeps more of it.
        let lambda0 = 1_000i64;
        let mut adaptive = AdaptiveInstant::new(1, lambda0);
        let mut fixed_last: Option<i64> = None;
        let mut fixed_kept = 0usize;
        let mut adaptive_kept_burst = 0usize;
        let mut fixed_kept_burst = 0usize;

        let feed = |t: i64,
                    adaptive: &mut AdaptiveInstant,
                    in_burst: bool,
                    fk: &mut usize,
                    ak: &mut usize,
                    fixed_last: &mut Option<i64>,
                    fixed_kept: &mut usize| {
            if adaptive.on_post(t, &[L0]) && in_burst {
                *ak += 1;
            }
            if fixed_last.is_none_or(|lt| t - lt > lambda0) {
                *fixed_last = Some(t);
                *fixed_kept += 1;
                if in_burst {
                    *fk += 1;
                }
            }
        };
        // Warm-up + steady traffic: one post per 500.
        for t in (0..20_000).step_by(500) {
            feed(
                t,
                &mut adaptive,
                false,
                &mut fixed_kept_burst,
                &mut adaptive_kept_burst,
                &mut fixed_last,
                &mut fixed_kept,
            );
        }
        // A hot burst: one post per 20 over 4000 units.
        for t in (20_000..24_000).step_by(20) {
            feed(
                t,
                &mut adaptive,
                true,
                &mut fixed_kept_burst,
                &mut adaptive_kept_burst,
                &mut fixed_last,
                &mut fixed_kept,
            );
        }
        assert!(
            adaptive_kept_burst > fixed_kept_burst,
            "adaptive {adaptive_kept_burst} should keep more burst posts than fixed {fixed_kept_burst}"
        );
    }

    #[test]
    fn adaptive_instant_always_emits_first_post() {
        let mut eng = AdaptiveInstant::new(2, 50);
        assert!(eng.on_post(0, &[L0, L1]));
        assert!(!eng.on_post(1, &[L0]));
        assert!(eng.current_lambda(L0) >= 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_lambda0_rejected() {
        OnlineLambda::new(1, 0);
    }

    #[test]
    fn adaptive_engine_covers_at_e_lambda0() {
        use crate::simulator::run_stream;
        use mqd_core::{FixedLambda, Instance};
        // Mixed steady + burst stream over two labels.
        let mut items: Vec<(i64, Vec<u16>)> = Vec::new();
        for t in (0..60_000i64).step_by(997) {
            items.push((t, vec![(t % 2) as u16]));
        }
        for t in (20_000..24_000i64).step_by(53) {
            items.push((t, vec![0]));
        }
        let inst = Instance::from_values(items, 2).unwrap();
        let lambda0 = 2_000i64;
        let mut eng = AdaptiveEngine::new(2, lambda0);
        // The provider passed in is irrelevant to the engine's decisions.
        let res = run_stream(&inst, &FixedLambda(lambda0), 0, &mut eng);
        assert_eq!(res.max_delay, 0);
        let cap = FixedLambda(AdaptiveEngine::cover_lambda(lambda0));
        assert!(
            res.is_cover(&inst, &cap),
            "adaptive output must cover at ceil(e*lambda0)"
        );
        assert!(res.size() < inst.len());
    }
}
