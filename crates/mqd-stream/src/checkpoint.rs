//! Checkpoint/recovery for supervised streaming runs.
//!
//! [`encode_checkpoint`] serializes a [`SupervisedRun`] at a delivery
//! boundary — stream parameters, an input digest, and per shard the
//! supervisor scalars plus the engine's [`EngineSnapshot`] — using the same
//! binlog-style wire primitives (varints + FNV-1a framing) as the CLI's
//! post store. [`resume_supervised`] rebuilds a run from those bytes,
//! refusing with [`MqdError::CheckpointMismatch`] when the checkpoint was
//! taken against different parameters or a different input stream.
//!
//! Recovery guarantee: a run killed at any point and resumed from its last
//! checkpoint re-delivers the arrivals after the checkpoint position, and —
//! because the checkpoint carries each shard's emission log — the resumed
//! run's final output is byte-identical to the uninterrupted run's
//! (engines are deterministic). In particular every unflagged emission
//! still honors `delay <= tau`, and a post arriving between the checkpoint
//! and the kill is released within `tau + checkpoint interval` of its
//! timestamp.

use mqd_core::wire::{check_framed, put_varint, put_varint_i64, seal_framed, Cursor};
use mqd_core::{Instance, MqdError};

use crate::chaos::{FaultPlan, ShardCounters};
use crate::engine::EngineSnapshot;
use crate::shard::ShardEngineKind;
use crate::supervisor::{SupervisedRun, SupervisorConfig};

/// File magic of a checkpoint blob — aliased from the sanctioned wire
/// module so the constant can never drift from the decoder's copy.
pub const MAGIC: [u8; 4] = *mqd_core::wire::CHECKPOINT_MAGIC;
/// Footer magic sealing the FNV-1a checksum (the shared frame footer).
const FOOTER: [u8; 4] = *mqd_core::wire::FRAME_FOOTER;
/// Format version.
const VERSION: u64 = 1;

/// Serializes `run` at its current delivery boundary. Forces a supervisor
/// snapshot on every shard first so the replay buffers are empty and the
/// engine snapshots capture the complete state.
pub fn encode_checkpoint(run: &mut SupervisedRun) -> Vec<u8> {
    let mut buf = Vec::with_capacity(256);
    buf.extend_from_slice(&MAGIC);
    put_varint(&mut buf, VERSION);
    put_varint_i64(&mut buf, run.lambda);
    put_varint_i64(&mut buf, run.tau);
    put_varint(&mut buf, run.sups.len() as u64);
    buf.push(run.kind.to_tag());
    put_varint(&mut buf, run.digest);
    put_varint(&mut buf, run.seed);
    put_varint(&mut buf, run.next_post as u64);
    for sup in &mut run.sups {
        sup.take_snapshot();
        put_varint(&mut buf, sup.seq());
        put_varint(&mut buf, sup.next_expected as u64);
        put_varint_i64(&mut buf, sup.clock);
        put_varint_i64(&mut buf, sup.stall_until);
        buf.push(sup.degraded as u8);
        encode_counters(&mut buf, &sup.counters);
        encode_flags(&mut buf, &sup.fired);
        let emitted: Vec<u32> = bitset_to_indices(sup.emitted_local_bits());
        put_varint(&mut buf, emitted.len() as u64);
        for p in emitted {
            put_varint(&mut buf, p as u64);
        }
        encode_engine_snapshot(&mut buf, &sup.engine_snapshot());
        let log = sup.emissions_so_far();
        put_varint(&mut buf, log.len() as u64);
        for e in log {
            put_varint(&mut buf, e.post as u64);
            put_varint_i64(&mut buf, e.emit_time);
            buf.push(e.degraded as u8);
        }
        let restarts = sup.restarts_so_far();
        put_varint(&mut buf, restarts.len() as u64);
        for r in restarts {
            put_varint(&mut buf, r.seq);
            put_varint(&mut buf, r.attempt as u64);
        }
    }
    seal_framed(&mut buf, &FOOTER);
    buf
}

/// Rebuilds a [`SupervisedRun`] from checkpoint bytes, validating that the
/// stream parameters and input digest match. The returned run continues
/// from the checkpointed position; drive it with [`SupervisedRun::step`]
/// and [`SupervisedRun::finish`] as usual.
#[allow(clippy::too_many_arguments)]
pub fn resume_supervised(
    inst: &Instance,
    lambda: i64,
    tau: i64,
    shards: usize,
    kind: ShardEngineKind,
    plan: &FaultPlan,
    cfg: SupervisorConfig,
    bytes: &[u8],
) -> Result<SupervisedRun, MqdError> {
    let body = check_framed(bytes, &FOOTER, MAGIC.len() + 1)?;
    let mut c = Cursor::new(body);
    let magic: [u8; 4] = c.get_array()?;
    if magic != MAGIC {
        return Err(c.corrupt("not a checkpoint file (bad magic)"));
    }
    let version = c.get_varint()?;
    if version != VERSION {
        return Err(c.corrupt(format!("unsupported checkpoint version {version}")));
    }
    let ck_lambda = c.get_varint_i64()?;
    let ck_tau = c.get_varint_i64()?;
    let ck_shards = c.get_varint()? as usize;
    let ck_kind = c.get_u8()?;
    let ck_digest = c.get_varint()?;
    let _ck_seed = c.get_varint()?;
    let next_post = c.get_varint()? as u32;

    let mut run = SupervisedRun::new(inst, lambda, tau, shards, kind, plan, cfg);
    if ck_lambda != lambda {
        return Err(mismatch(format!("lambda {ck_lambda} != {lambda}")));
    }
    if ck_tau != tau {
        return Err(mismatch(format!("tau {ck_tau} != {tau}")));
    }
    if ck_shards != run.sups.len() {
        return Err(mismatch(format!(
            "shard count {ck_shards} != {}",
            run.sups.len()
        )));
    }
    if ShardEngineKind::from_tag(ck_kind) != Some(kind) {
        return Err(mismatch(format!("engine kind tag {ck_kind}")));
    }
    if ck_digest != run.digest {
        return Err(mismatch("input stream digest".to_string()));
    }
    if next_post as usize > inst.len() {
        return Err(mismatch(format!(
            "position {next_post} beyond stream length {}",
            inst.len()
        )));
    }

    for s in 0..ck_shards {
        let seq = c.get_varint()?;
        let next_expected = c.get_varint()? as u32;
        let clock = c.get_varint_i64()?;
        let stall_until = c.get_varint_i64()?;
        let degraded = c.get_u8()? != 0;
        let counters = decode_counters(&mut c)?;
        let fired = decode_flags(&mut c, run.sups[s].fired.len())?;
        let sup = &mut run.sups[s];
        let local_len = sup.shard.inst.len();
        let emitted_n = c.get_varint()? as usize;
        if emitted_n > local_len {
            return Err(c.corrupt("emitted set larger than shard"));
        }
        let mut emitted_local = vec![false; local_len];
        for _ in 0..emitted_n {
            let p = c.get_varint()? as usize;
            if p >= local_len {
                return Err(c.corrupt("emitted post index out of range"));
            }
            emitted_local[p] = true;
        }
        let snap = decode_engine_snapshot(&mut c, sup.shard.inst.num_labels(), local_len)?;
        let n_emissions = c.get_varint()?;
        if n_emissions as usize > local_len {
            return Err(c.corrupt("emission log larger than shard"));
        }
        // Each emission encodes at least 3 bytes (post + time + flag).
        let n_emissions = c.plausible_len(n_emissions, 3, "emission")?;
        let mut emissions = Vec::with_capacity(n_emissions);
        for _ in 0..n_emissions {
            let post = c.get_varint()? as u32;
            if post as usize >= inst.len() {
                return Err(c.corrupt("emission post index out of range"));
            }
            let emit_time = c.get_varint_i64()?;
            let degraded = c.get_u8()? != 0;
            emissions.push(crate::supervisor::SupervisedEmission {
                post,
                emit_time,
                degraded,
            });
        }
        let n_restarts = c.get_varint()?;
        // Each restart record encodes at least 2 bytes (seq + attempt).
        let n_restarts = c.plausible_len(n_restarts, 2, "restart")?;
        let mut restarts = Vec::with_capacity(n_restarts);
        for _ in 0..n_restarts {
            restarts.push(crate::chaos::RestartRecord {
                shard: s,
                seq: c.get_varint()?,
                attempt: c.get_varint()? as usize,
            });
        }
        run.sups[s].restore_checkpoint(
            seq,
            next_expected,
            clock,
            stall_until,
            degraded,
            counters,
            emitted_local,
            fired,
            snap,
            emissions,
            restarts,
        );
    }
    if c.has_remaining() {
        return Err(c.corrupt("trailing bytes after checkpoint payload"));
    }
    run.next_post = next_post;
    Ok(run)
}

fn mismatch(what: String) -> MqdError {
    MqdError::CheckpointMismatch { what }
}

fn encode_counters(buf: &mut Vec<u8>, ct: &ShardCounters) {
    for v in [
        ct.stalls_applied,
        ct.duplicates_dropped,
        ct.late_clamped,
        ct.garbage_rejected,
        ct.degraded_emissions,
        ct.stall_rewrites,
        ct.mode_switches,
    ] {
        put_varint(buf, v);
    }
}

fn decode_counters(c: &mut Cursor<'_>) -> Result<ShardCounters, MqdError> {
    Ok(ShardCounters {
        stalls_applied: c.get_varint()?,
        duplicates_dropped: c.get_varint()?,
        late_clamped: c.get_varint()?,
        garbage_rejected: c.get_varint()?,
        degraded_emissions: c.get_varint()?,
        stall_rewrites: c.get_varint()?,
        mode_switches: c.get_varint()?,
    })
}

fn encode_flags(buf: &mut Vec<u8>, flags: &[bool]) {
    put_varint(buf, flags.len() as u64);
    let set: Vec<u64> = flags
        .iter()
        .enumerate()
        .filter(|(_, &f)| f)
        .map(|(i, _)| i as u64)
        .collect();
    put_varint(buf, set.len() as u64);
    for i in set {
        put_varint(buf, i);
    }
}

fn decode_flags(c: &mut Cursor<'_>, expect_len: usize) -> Result<Vec<bool>, MqdError> {
    let len = c.get_varint()? as usize;
    if len != expect_len {
        return Err(c.corrupt(format!("flag vector length {len} != expected {expect_len}")));
    }
    // Allocate from the caller's trusted length, not the wire's claim.
    let mut flags = vec![false; expect_len];
    let set = c.get_varint()? as usize;
    if set > len {
        return Err(c.corrupt("more set flags than flags"));
    }
    for _ in 0..set {
        let i = c.get_varint()? as usize;
        if i >= len {
            return Err(c.corrupt("flag index out of range"));
        }
        flags[i] = true;
    }
    Ok(flags)
}

fn encode_engine_snapshot(buf: &mut Vec<u8>, snap: &EngineSnapshot) {
    put_varint(buf, snap.emitted_per_label.len() as u64);
    for list in &snap.emitted_per_label {
        put_varint(buf, list.len() as u64);
        for &p in list {
            put_varint(buf, p as u64);
        }
    }
    put_varint(buf, snap.pending.len() as u64);
    for (post, labels) in &snap.pending {
        put_varint(buf, *post as u64);
        put_varint(buf, labels.len() as u64);
        for &a in labels {
            put_varint(buf, a as u64);
        }
    }
    put_varint(buf, snap.emitted.len() as u64);
    for &p in &snap.emitted {
        put_varint(buf, p as u64);
    }
}

fn decode_engine_snapshot(
    c: &mut Cursor<'_>,
    num_labels: usize,
    num_posts: usize,
) -> Result<EngineSnapshot, MqdError> {
    let nl = c.get_varint()? as usize;
    if nl != num_labels {
        return Err(c.corrupt(format!("snapshot label count {nl} != shard's {num_labels}")));
    }
    let mut emitted_per_label = Vec::with_capacity(num_labels);
    for _ in 0..nl {
        let n = c.get_varint()?;
        if n as usize > num_posts {
            return Err(c.corrupt("per-label emitted list larger than shard"));
        }
        let n = c.plausible_len(n, 1, "per-label emitted list")?;
        let mut list = Vec::with_capacity(n);
        for _ in 0..n {
            let p = c.get_varint()? as u32;
            if p as usize >= num_posts {
                return Err(c.corrupt("emitted post index out of range"));
            }
            list.push(p);
        }
        emitted_per_label.push(list);
    }
    let np = c.get_varint()?;
    if np as usize > num_posts {
        return Err(c.corrupt("pending list larger than shard"));
    }
    // Each pending entry encodes at least 2 bytes (post + label count).
    let np = c.plausible_len(np, 2, "pending list")?;
    let mut pending = Vec::with_capacity(np);
    for _ in 0..np {
        let post = c.get_varint()? as u32;
        if post as usize >= num_posts {
            return Err(c.corrupt("pending post index out of range"));
        }
        let n = c.get_varint()?;
        if n as usize > num_labels {
            return Err(c.corrupt("pending label set larger than label space"));
        }
        let n = c.plausible_len(n, 1, "pending label set")?;
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let a = c.get_varint()? as u16;
            if (a as usize) >= num_labels {
                return Err(c.corrupt("pending label out of range"));
            }
            labels.push(a);
        }
        pending.push((post, labels));
    }
    let ne = c.get_varint()?;
    if ne as usize > num_posts {
        return Err(c.corrupt("emitted set larger than shard"));
    }
    let ne = c.plausible_len(ne, 1, "emitted set")?;
    let mut emitted = Vec::with_capacity(ne);
    for _ in 0..ne {
        let p = c.get_varint()? as u32;
        if p as usize >= num_posts {
            return Err(c.corrupt("emitted post index out of range"));
        }
        emitted.push(p);
    }
    Ok(EngineSnapshot {
        emitted_per_label,
        pending,
        emitted,
    })
}

fn bitset_to_indices(bits: &[bool]) -> Vec<u32> {
    bits.iter()
        .enumerate()
        .filter(|(_, &b)| b)
        .map(|(i, _)| i as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::FaultPlan;
    use crate::supervisor::{run_supervised_reference, SupervisedEmission};
    use mqd_core::{coverage, FixedLambda};

    fn instance(seed: u64, n: usize, labels: usize) -> Instance {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut t = 0i64;
        let items: Vec<(i64, Vec<u16>)> = (0..n)
            .map(|_| {
                t += (next() % 40) as i64;
                (t, vec![(next() % labels as u64) as u16])
            })
            .collect();
        Instance::from_values(items, labels).unwrap()
    }

    #[test]
    fn kill_and_resume_reproduces_the_uninterrupted_run() {
        let inst = instance(13, 120, 4);
        let (lambda, tau, shards) = (60, 35, 4);
        let kind = ShardEngineKind::ScanPlus;
        let plan = FaultPlan::for_instance(&inst, shards, 4242, tau);
        let cfg = SupervisorConfig::default();

        let full = run_supervised_reference(&inst, lambda, tau, shards, kind, &plan, cfg).unwrap();

        for kill_at in [1u32, 30, 60, 119, 120] {
            // Phase 1: run to the kill point, checkpointing there.
            let mut run = SupervisedRun::new(&inst, lambda, tau, shards, kind, &plan, cfg);
            while run.position() < kill_at && run.step().unwrap() {}
            let bytes = encode_checkpoint(&mut run);
            // What a process killed here has durably published (no flush)
            // must be a subset of the uninterrupted run's emissions.
            let pre: Vec<SupervisedEmission> = run.released_emissions();
            for e in &pre {
                assert!(
                    full.emissions.contains(e),
                    "kill at {kill_at}: pre-kill emission {e:?} not in full run"
                );
            }
            drop(run);
            // Phase 2: the process dies; a fresh one resumes from the blob.
            // The checkpoint carries the emission log, so the resumed run's
            // final output is the complete stream, byte-identical.
            let mut resumed =
                resume_supervised(&inst, lambda, tau, shards, kind, &plan, cfg, &bytes).unwrap();
            assert_eq!(resumed.position(), kill_at.min(inst.len() as u32));
            resumed.run_all().unwrap();
            let post = resumed.finish().unwrap();

            assert_eq!(
                post.emissions, full.emissions,
                "kill at {kill_at}: resumed output differs from uninterrupted run"
            );
            assert_eq!(post.report.to_json(), full.report.to_json());
            let selected: Vec<u32> = {
                let mut s: Vec<u32> = post.emissions.iter().map(|e| e.post).collect();
                s.sort_unstable();
                s.dedup();
                s
            };
            assert!(coverage::is_cover(&inst, &FixedLambda(lambda), &selected));
        }
    }

    #[test]
    fn mismatched_parameters_are_refused() {
        let inst = instance(5, 50, 3);
        let plan = FaultPlan::none();
        let cfg = SupervisorConfig::default();
        let kind = ShardEngineKind::Scan;
        let mut run = SupervisedRun::new(&inst, 40, 20, 3, kind, &plan, cfg);
        run.step().unwrap();
        let bytes = encode_checkpoint(&mut run);

        let err = resume_supervised(&inst, 41, 20, 3, kind, &plan, cfg, &bytes).unwrap_err();
        assert!(matches!(err, MqdError::CheckpointMismatch { .. }), "{err}");
        let err = resume_supervised(&inst, 40, 21, 3, kind, &plan, cfg, &bytes).unwrap_err();
        assert!(matches!(err, MqdError::CheckpointMismatch { .. }), "{err}");
        let err = resume_supervised(&inst, 40, 20, 2, kind, &plan, cfg, &bytes).unwrap_err();
        assert!(matches!(err, MqdError::CheckpointMismatch { .. }), "{err}");
        let err = resume_supervised(
            &inst,
            40,
            20,
            3,
            ShardEngineKind::Greedy,
            &plan,
            cfg,
            &bytes,
        )
        .unwrap_err();
        assert!(matches!(err, MqdError::CheckpointMismatch { .. }), "{err}");
        let other = instance(6, 50, 3);
        let err = resume_supervised(&other, 40, 20, 3, kind, &plan, cfg, &bytes).unwrap_err();
        assert!(matches!(err, MqdError::CheckpointMismatch { .. }), "{err}");
    }

    #[test]
    fn corrupted_bytes_are_typed_errors() {
        let inst = instance(7, 40, 2);
        let plan = FaultPlan::none();
        let cfg = SupervisorConfig::default();
        let mut run = SupervisedRun::new(&inst, 30, 15, 2, ShardEngineKind::Scan, &plan, cfg);
        for _ in 0..10 {
            run.step().unwrap();
        }
        let bytes = encode_checkpoint(&mut run);
        // Body flip: checksum catches it.
        let mut bad = bytes.clone();
        bad[8] ^= 0xff;
        let err = resume_supervised(&inst, 30, 15, 2, ShardEngineKind::Scan, &plan, cfg, &bad)
            .unwrap_err();
        assert!(matches!(err, MqdError::Corrupt { .. }), "{err}");
        // Truncation: footer check catches it.
        let err = resume_supervised(
            &inst,
            30,
            15,
            2,
            ShardEngineKind::Scan,
            &plan,
            cfg,
            &bytes[..bytes.len() - 5],
        )
        .unwrap_err();
        assert!(matches!(err, MqdError::Corrupt { .. }), "{err}");
    }
}
