//! Shard supervision: catch shard panics, restart from the last coverage
//! frontier, absorb injected faults, and degrade gracefully under overload.
//!
//! Every shard runs behind a supervisor state machine ([`ShardSup`]) that
//! wraps engine event processing in [`std::panic::catch_unwind`]. The
//! supervisor keeps a rolling [`EngineSnapshot`] (the per-label coverage
//! frontier plus buffered posts) and a replay buffer of the arrivals
//! delivered since the snapshot; when processing panics — injected by a
//! [`FaultPlan`] or a genuine engine bug — the shard is rebuilt from the
//! snapshot, the replay buffer is re-run, and a [`RestartRecord`] lands in
//! the [`FaultReport`]. A shard that exhausts its restart budget fails the
//! run with [`MqdError::ShardFailed`].
//!
//! **Clock model.** All supervision decisions use logical (timestamp)
//! quantities only: a stall fault sets `stall_until = max(stall_until,
//! t + duration)`, the processing time of an arrival is
//! `max(t, stall_until)`, and the shard's *lag* is their difference.
//! Nothing depends on wall clocks, queue depths, or thread scheduling, so
//! the threaded supervised run and its sequential reference are
//! byte-identical — including the fault report.
//!
//! **Graceful degradation.** When the lag exceeds the degrade threshold
//! (default `tau / 2`), the shard flushes its primary engine and switches
//! to the Instant (`tau = 0`) scheme seeded from the current coverage
//! frontier; when the lag drains to zero it switches back, restoring the
//! primary engine from the Instant cache. Every emission produced on the
//! degraded path — or released late because of a stall — is flagged, so
//! the invariant *unflagged implies `delay <= tau`* holds structurally and
//! [`FaultReport::tau_violations_unflagged`] counts its violations (always
//! zero unless the accounting itself is broken).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::sync_channel;
use std::sync::OnceLock;

use mqd_core::{FixedLambda, Instance, MqdError};

use crate::chaos::{Fault, FaultKind, FaultPlan, FaultReport, RestartRecord, ShardCounters};
use crate::engine::{Emission, EngineSnapshot, StreamContext, StreamEngine};
use crate::instant::InstantScan;
use crate::shard::{build_shards, clamp_shards, Shard, ShardEngineKind};
use crate::simulator::StreamRunResult;

/// Payload of supervisor-injected panics; the panic hook swallows these so
/// chaos runs don't spray backtraces.
pub(crate) const INJECTED_PANIC: &str = "injected shard fault (chaos)";

/// Installs (once per process) a panic hook that silences injected chaos
/// panics and forwards everything else to the previous hook.
type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Send + Sync>;

fn silence_injected_panics() {
    static PREV: OnceLock<PanicHook> = OnceLock::new();
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        let _ = PREV.set(prev);
        std::panic::set_hook(Box::new(|info| {
            // The payload is a `String` (panic! with interpolation), but
            // check the `&str` shape too so a literal panic also matches.
            let payload = info.payload();
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied());
            let injected = msg.is_some_and(|s| s.contains(INJECTED_PANIC));
            if !injected {
                if let Some(prev) = PREV.get() {
                    prev(info);
                }
            }
        }));
    });
}

/// Tuning knobs for the shard supervisor.
#[derive(Clone, Copy, Debug)]
pub struct SupervisorConfig {
    /// Arrivals between rolling snapshots (restart granularity). The replay
    /// buffer never grows past this, so a restart re-processes at most this
    /// many arrivals.
    pub snapshot_every: u64,
    /// Restarts a single shard may consume before the run fails with
    /// [`MqdError::ShardFailed`].
    pub max_restarts: usize,
    /// Lag (processing time minus arrival time) above which the shard
    /// degrades to the Instant scheme. `None` means `tau / 2`.
    pub degrade_threshold: Option<i64>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            snapshot_every: 32,
            max_restarts: 8,
            degrade_threshold: None,
        }
    }
}

/// An emission annotated with its degradation flag. `degraded` is true when
/// the emission was produced by the degraded (Instant) path **or** its
/// release was pushed past its schedule by a stall — exactly the emissions
/// exempt from the `delay <= tau` invariant.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SupervisedEmission {
    /// Global post index.
    pub post: u32,
    /// Actual release time (schedule, possibly stall-delayed).
    pub emit_time: i64,
    /// Whether this emission is exempt from the delay budget.
    pub degraded: bool,
}

impl SupervisedEmission {
    /// The reporting delay of this emission. Saturating: emit/arrival
    /// times straddling the i64 range must clamp, not wrap to a negative
    /// delay.
    pub fn delay(&self, inst: &mqd_core::Instance) -> i64 {
        self.emit_time.saturating_sub(inst.value(self.post))
    }
}

/// Outcome of a supervised run: the merged stream result, the flag-annotated
/// emissions, and the deterministic fault report.
#[derive(Clone, Debug)]
pub struct SupervisedRunResult {
    /// Merged emissions/selection/delays, as for the plain sharded runs.
    pub result: StreamRunResult,
    /// Merged emissions with degradation flags, ordered by
    /// `(emit_time, post)`.
    pub emissions: Vec<SupervisedEmission>,
    /// The full fault/restart/degradation account.
    pub report: FaultReport,
}

/// Rolling restart point: everything needed to rebuild the shard as it was
/// at a delivery boundary.
#[derive(Clone)]
struct SupSnapshot {
    /// Deliveries fully processed when the snapshot was taken.
    seq: u64,
    next_expected: u32,
    clock: i64,
    stall_until: i64,
    degraded: bool,
    counters: ShardCounters,
    engine: EngineSnapshot,
    emitted_local: Vec<bool>,
    /// `emissions.len()` at capture; a restart truncates back to this.
    emission_mark: usize,
}

/// The supervisor state machine for one shard.
pub(crate) struct ShardSup {
    pub(crate) index: usize,
    pub(crate) shard: Shard,
    lambda: FixedLambda,
    tau: i64,
    kind: ShardEngineKind,
    cfg: SupervisorConfig,
    faults: Vec<Fault>,
    /// Panic faults that already fired (never rolled back by restarts, so
    /// each panic fires exactly once).
    pub(crate) fired: Vec<bool>,
    engine: Box<dyn StreamEngine>,
    pub(crate) degraded: bool,
    pub(crate) clock: i64,
    pub(crate) stall_until: i64,
    pub(crate) next_expected: u32,
    pub(crate) counters: ShardCounters,
    /// Cumulative emitted set (local indices), across mode switches.
    emitted_local: Vec<bool>,
    emissions: Vec<SupervisedEmission>,
    restarts: Vec<RestartRecord>,
    snap: SupSnapshot,
    /// Arrivals delivered since the snapshot (replayed after a restart).
    pending_replay: Vec<u32>,
    /// How many `pending_replay` entries are fully processed.
    replay_done: usize,
    want_snapshot: bool,
}

impl ShardSup {
    pub(crate) fn new(
        index: usize,
        shard: Shard,
        lambda: i64,
        tau: i64,
        kind: ShardEngineKind,
        cfg: SupervisorConfig,
        faults: Vec<Fault>,
    ) -> Self {
        let labels = shard.inst.num_labels();
        let engine = kind.build(labels, shard.inst.len());
        let fired = vec![false; faults.len()];
        let emitted_local = vec![false; shard.inst.len()];
        let snap = SupSnapshot {
            seq: 0,
            next_expected: 0,
            clock: i64::MIN,
            stall_until: i64::MIN,
            degraded: false,
            counters: ShardCounters::default(),
            engine: engine
                .snapshot()
                .unwrap_or_else(|| EngineSnapshot::empty(labels)),
            emitted_local: emitted_local.clone(),
            emission_mark: 0,
        };
        ShardSup {
            index,
            shard,
            lambda: FixedLambda(lambda),
            tau,
            kind,
            cfg,
            faults,
            fired,
            engine,
            degraded: false,
            clock: i64::MIN,
            stall_until: i64::MIN,
            next_expected: 0,
            counters: ShardCounters::default(),
            emitted_local,
            emissions: Vec::new(),
            restarts: Vec::new(),
            snap,
            pending_replay: Vec::new(),
            replay_done: 0,
            want_snapshot: false,
        }
    }

    /// Total deliveries fully processed (the next arrival's seq number).
    pub(crate) fn seq(&self) -> u64 {
        self.snap.seq + self.replay_done as u64
    }

    fn degrade_threshold(&self) -> i64 {
        self.cfg.degrade_threshold.unwrap_or(self.tau / 2).max(0)
    }

    fn fault_at(&self, seq: u64) -> Option<usize> {
        self.faults.binary_search_by_key(&seq, |f| f.seq).ok()
    }

    /// Delivers one arrival (a local post index, in feeder order), absorbing
    /// panics via restart.
    pub(crate) fn deliver(&mut self, idx: u32) -> Result<(), MqdError> {
        self.pending_replay.push(idx);
        self.run_pending()?;
        self.maybe_snapshot();
        Ok(())
    }

    fn run_pending(&mut self) -> Result<(), MqdError> {
        while self.replay_done < self.pending_replay.len() {
            let i = self.replay_done;
            match catch_unwind(AssertUnwindSafe(|| self.process_one(i))) {
                Ok(()) => self.replay_done += 1,
                Err(_) => self.restart(self.snap.seq + i as u64)?,
            }
        }
        Ok(())
    }

    /// Processes the `i`-th replay entry. May panic (that's the point); the
    /// caller restores from the snapshot, so a torn engine state is
    /// discarded rather than observed.
    fn process_one(&mut self, i: usize) {
        let idx = self.pending_replay[i];
        let seq = self.snap.seq + i as u64;
        let true_t = self.shard.inst.value(idx);
        if let Some(fi) = self.fault_at(seq) {
            match self.faults[fi].kind {
                FaultKind::Panic => {
                    if !self.fired[fi] {
                        // Mark fired *before* unwinding so the post-restart
                        // replay proceeds past this seq.
                        self.fired[fi] = true;
                        // lint:allow(panic-path): deliberate chaos injection — the supervisor's restart path exists to absorb exactly this panic
                        panic!("{INJECTED_PANIC}");
                    }
                }
                FaultKind::Stall { duration } => {
                    self.stall_until = self.stall_until.max(true_t.saturating_add(duration));
                    self.counters.stalls_applied += 1;
                }
                FaultKind::Duplicate => {
                    // The previous arrival shows up again; the sequence
                    // check rejects anything below the expected index.
                    if let Some(dup) = idx.checked_sub(1) {
                        if dup < self.next_expected {
                            self.counters.duplicates_dropped += 1;
                        }
                    }
                }
                FaultKind::Late { .. } => {
                    // Observed timestamp is behind the durable store's; the
                    // clock below is clamped monotone on the true value.
                    self.counters.late_clamped += 1;
                }
                FaultKind::Garbage { .. } => {
                    // Observed diversity value disagrees with the durable
                    // store; reject the observation, keep the true value.
                    self.counters.garbage_rejected += 1;
                }
            }
        }

        self.clock = self.clock.max(true_t);
        let lag = self.stall_until.saturating_sub(self.clock).max(0);
        if !self.degraded && lag > self.degrade_threshold() {
            self.degrade();
        } else if self.degraded && lag == 0 {
            self.recover();
        }

        let mut out = Vec::new();
        {
            let ctx = StreamContext::new(&self.shard.inst, &self.lambda, self.tau);
            self.engine
                .on_time(&ctx, true_t.saturating_sub(1), &mut out);
            if idx >= self.next_expected {
                self.engine.on_arrival(&ctx, idx, &mut out);
                self.next_expected = idx + 1;
            } else {
                // A real duplicate delivery (same local index again).
                self.counters.duplicates_dropped += 1;
            }
        }
        self.sink(out, false);
    }

    /// Switches to the Instant (`tau = 0`) scheme: flush the primary engine
    /// (preserving the lambda-cover), then continue from its coverage
    /// frontier with zero buffering.
    fn degrade(&mut self) {
        let labels = self.shard.inst.num_labels();
        let mut out = Vec::new();
        {
            let ctx = StreamContext::new(&self.shard.inst, &self.lambda, self.tau);
            self.engine.flush(&ctx, &mut out);
            let frontier = self
                .engine
                .snapshot()
                .unwrap_or_else(|| EngineSnapshot::empty(labels));
            let mut instant = InstantScan::new(labels);
            instant.restore(&ctx, &frontier);
            self.engine = Box::new(instant);
        }
        self.degraded = true;
        self.counters.mode_switches += 1;
        self.sink(out, true);
        self.want_snapshot = true;
    }

    /// Switches back to the primary engine, seeded from the Instant cache's
    /// frontier and the cumulative emitted set.
    fn recover(&mut self) {
        let labels = self.shard.inst.num_labels();
        let mut snap = self
            .engine
            .snapshot()
            .unwrap_or_else(|| EngineSnapshot::empty(labels));
        snap.emitted = self
            .emitted_local
            .iter()
            .enumerate()
            .filter(|(_, &e)| e)
            .map(|(i, _)| i as u32)
            .collect();
        let mut primary = self.kind.build(labels, self.shard.inst.len());
        {
            let ctx = StreamContext::new(&self.shard.inst, &self.lambda, self.tau);
            primary.restore(&ctx, &snap);
        }
        self.engine = primary;
        self.degraded = false;
        self.counters.mode_switches += 1;
        self.want_snapshot = true;
    }

    /// Records emissions: stall-delayed releases are rewritten to the stall
    /// end and flagged; degraded-path emissions are flagged and counted.
    fn sink(&mut self, out: Vec<Emission>, degraded_path: bool) {
        for e in out {
            let actual = e.emit_time.max(self.stall_until);
            let rewritten = actual != e.emit_time;
            if rewritten {
                self.counters.stall_rewrites += 1;
            }
            let deg = degraded_path || self.degraded;
            if deg {
                self.counters.degraded_emissions += 1;
            }
            self.emitted_local[e.post as usize] = true;
            self.emissions.push(SupervisedEmission {
                post: self.shard.to_global[e.post as usize],
                emit_time: actual,
                degraded: deg || rewritten,
            });
        }
    }

    fn restart(&mut self, seq: u64) -> Result<(), MqdError> {
        if self.restarts.len() >= self.cfg.max_restarts {
            return Err(MqdError::ShardFailed {
                shard: self.index,
                restarts: self.restarts.len(),
            });
        }
        self.restarts.push(RestartRecord {
            shard: self.index,
            seq,
            attempt: self.restarts.len() + 1,
        });
        self.restore_from_snap();
        Ok(())
    }

    fn restore_from_snap(&mut self) {
        let labels = self.shard.inst.num_labels();
        self.next_expected = self.snap.next_expected;
        self.clock = self.snap.clock;
        self.stall_until = self.snap.stall_until;
        self.degraded = self.snap.degraded;
        self.counters = self.snap.counters;
        self.emitted_local = self.snap.emitted_local.clone();
        self.emissions.truncate(self.snap.emission_mark);
        let mut engine: Box<dyn StreamEngine> = if self.snap.degraded {
            Box::new(InstantScan::new(labels))
        } else {
            self.kind.build(labels, self.shard.inst.len())
        };
        {
            let ctx = StreamContext::new(&self.shard.inst, &self.lambda, self.tau);
            engine.restore(&ctx, &self.snap.engine);
        }
        self.engine = engine;
        self.replay_done = 0;
    }

    fn maybe_snapshot(&mut self) {
        if self.want_snapshot || self.pending_replay.len() as u64 >= self.cfg.snapshot_every.max(1)
        {
            self.take_snapshot();
        }
    }

    /// Captures a restart point. Only valid at delivery boundaries.
    pub(crate) fn take_snapshot(&mut self) {
        debug_assert_eq!(self.replay_done, self.pending_replay.len());
        let labels = self.shard.inst.num_labels();
        self.snap = SupSnapshot {
            seq: self.snap.seq + self.replay_done as u64,
            next_expected: self.next_expected,
            clock: self.clock,
            stall_until: self.stall_until,
            degraded: self.degraded,
            counters: self.counters,
            engine: self
                .engine
                .snapshot()
                .unwrap_or_else(|| EngineSnapshot::empty(labels)),
            emitted_local: self.emitted_local.clone(),
            emission_mark: self.emissions.len(),
        };
        self.pending_replay.clear();
        self.replay_done = 0;
        self.want_snapshot = false;
    }

    /// The cumulative emitted set (local post indices) as a bitset.
    pub(crate) fn emitted_local_bits(&self) -> &[bool] {
        &self.emitted_local
    }

    /// Emissions this shard has released so far (pre-flush).
    pub(crate) fn emissions_so_far(&self) -> &[SupervisedEmission] {
        &self.emissions
    }

    /// Restarts recorded so far (for checkpointing, so a resumed run's
    /// fault report matches the uninterrupted one).
    pub(crate) fn restarts_so_far(&self) -> &[RestartRecord] {
        &self.restarts
    }

    /// The engine's current restartable snapshot (for checkpointing; call
    /// [`Self::take_snapshot`] first so the replay buffer is empty).
    pub(crate) fn engine_snapshot(&self) -> EngineSnapshot {
        self.engine
            .snapshot()
            .unwrap_or_else(|| EngineSnapshot::empty(self.shard.inst.num_labels()))
    }

    /// Overwrites the supervisor state from checkpointed fields. The engine
    /// is rebuilt and restored from `engine_snap`; `emissions` is the
    /// checkpointed emission log, so the resumed run's final output is the
    /// complete emission stream, not just the post-checkpoint tail.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn restore_checkpoint(
        &mut self,
        seq: u64,
        next_expected: u32,
        clock: i64,
        stall_until: i64,
        degraded: bool,
        counters: ShardCounters,
        emitted_local: Vec<bool>,
        fired: Vec<bool>,
        engine_snap: EngineSnapshot,
        emissions: Vec<SupervisedEmission>,
        restarts: Vec<RestartRecord>,
    ) {
        self.next_expected = next_expected;
        self.clock = clock;
        self.stall_until = stall_until;
        self.degraded = degraded;
        self.counters = counters;
        self.emitted_local = emitted_local;
        self.fired = fired;
        let labels = self.shard.inst.num_labels();
        let mut engine: Box<dyn StreamEngine> = if degraded {
            Box::new(InstantScan::new(labels))
        } else {
            self.kind.build(labels, self.shard.inst.len())
        };
        {
            let ctx = StreamContext::new(&self.shard.inst, &self.lambda, self.tau);
            engine.restore(&ctx, &engine_snap);
        }
        self.engine = engine;
        self.emissions = emissions;
        self.restarts = restarts;
        self.pending_replay.clear();
        self.replay_done = 0;
        self.want_snapshot = false;
        self.snap = SupSnapshot {
            seq,
            next_expected,
            clock,
            stall_until,
            degraded,
            counters,
            engine: engine_snap,
            emitted_local: self.emitted_local.clone(),
            emission_mark: self.emissions.len(),
        };
    }

    /// End of stream: flush the engine (absorbing panics like any other
    /// event) and return the shard's outcome.
    pub(crate) fn finish(mut self) -> Result<ShardOutcome, MqdError> {
        loop {
            let res = catch_unwind(AssertUnwindSafe(|| {
                let mut out = Vec::new();
                let ctx = StreamContext::new(&self.shard.inst, &self.lambda, self.tau);
                self.engine.flush(&ctx, &mut out);
                out
            }));
            match res {
                Ok(out) => {
                    self.sink(out, false);
                    break;
                }
                Err(_) => {
                    self.restart(self.seq())?;
                    self.run_pending()?;
                }
            }
        }
        Ok(ShardOutcome {
            index: self.index,
            emissions: self.emissions,
            counters: self.counters,
            restarts: self.restarts,
        })
    }
}

/// What one supervised shard hands back to the merger.
pub(crate) struct ShardOutcome {
    pub(crate) index: usize,
    pub(crate) emissions: Vec<SupervisedEmission>,
    pub(crate) counters: ShardCounters,
    pub(crate) restarts: Vec<RestartRecord>,
}

/// Merges per-shard outcomes into the final result and report.
fn assemble(
    global_times: &[i64],
    tau: i64,
    seed: u64,
    plan_faults: Vec<Fault>,
    kind: ShardEngineKind,
    mut outcomes: Vec<ShardOutcome>,
) -> SupervisedRunResult {
    outcomes.sort_by_key(|o| o.index);
    let shards = outcomes.len();
    let mut counters = ShardCounters::default();
    let mut restarts = Vec::new();
    let mut all: Vec<SupervisedEmission> = Vec::new();
    for o in outcomes {
        counters.add(&o.counters);
        restarts.extend(o.restarts);
        all.extend(o.emissions);
    }
    // Dedup per post, keeping the earliest release (ties prefer unflagged);
    // then global release order.
    all.sort_by_key(|e| (e.post, e.emit_time, e.degraded));
    all.dedup_by_key(|e| e.post);
    all.sort_by_key(|e| (e.emit_time, e.post));

    let mut selected: Vec<u32> = all.iter().map(|e| e.post).collect();
    selected.sort_unstable();
    selected.dedup();
    let delay = |e: &SupervisedEmission| e.emit_time.saturating_sub(global_times[e.post as usize]);
    let max_delay = all.iter().map(delay).max().unwrap_or(0);
    let max_unflagged_delay = all
        .iter()
        .filter(|e| !e.degraded)
        .map(delay)
        .max()
        .unwrap_or(0);
    let tau_violations_unflagged = all.iter().filter(|e| !e.degraded && delay(e) > tau).count();

    let emissions_plain: Vec<Emission> = all
        .iter()
        .map(|e| Emission {
            post: e.post,
            emit_time: e.emit_time,
        })
        .collect();
    let report = FaultReport {
        seed,
        shards,
        tau,
        faults: plan_faults,
        restarts,
        counters,
        emissions: all.len(),
        max_delay,
        max_unflagged_delay,
        tau_violations_unflagged,
    };
    SupervisedRunResult {
        result: StreamRunResult {
            algorithm: kind.supervised_name(),
            emissions: emissions_plain,
            selected,
            max_delay,
        },
        emissions: all,
        report,
    }
}

/// A resumable sequential supervised run: the unit the checkpoint codec
/// serializes. Feed it arrival-by-arrival with [`Self::step`], snapshot it
/// at any boundary, kill it, and rebuild it with the checkpoint codec — the
/// resumed run emits exactly what the uninterrupted one would have from
/// that point on.
pub struct SupervisedRun {
    pub(crate) sups: Vec<ShardSup>,
    pub(crate) next_post: u32,
    pub(crate) global_times: Vec<i64>,
    pub(crate) lambda: i64,
    pub(crate) tau: i64,
    pub(crate) kind: ShardEngineKind,
    pub(crate) seed: u64,
    pub(crate) plan_faults: Vec<Fault>,
    pub(crate) digest: u64,
}

impl std::fmt::Debug for SupervisedRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SupervisedRun")
            .field("shards", &self.sups.len())
            .field("next_post", &self.next_post)
            .field("posts", &self.global_times.len())
            .field("lambda", &self.lambda)
            .field("tau", &self.tau)
            .field("kind", &self.kind)
            .finish_non_exhaustive()
    }
}

impl SupervisedRun {
    /// Builds the run over `inst` with the given fault plan.
    pub fn new(
        inst: &Instance,
        lambda: i64,
        tau: i64,
        shards: usize,
        kind: ShardEngineKind,
        plan: &FaultPlan,
        cfg: SupervisorConfig,
    ) -> Self {
        silence_injected_panics();
        let shards = clamp_shards(inst, shards);
        let sups = build_shards(inst, shards)
            .into_iter()
            .enumerate()
            .map(|(s, sh)| ShardSup::new(s, sh, lambda, tau, kind, cfg, plan.for_shard(s)))
            .collect();
        SupervisedRun {
            sups,
            next_post: 0,
            global_times: (0..inst.len() as u32).map(|k| inst.value(k)).collect(),
            lambda,
            tau,
            kind,
            seed: plan.seed,
            plan_faults: plan.faults.clone(),
            digest: instance_digest(inst),
        }
    }

    /// Global posts delivered so far.
    pub fn position(&self) -> u32 {
        self.next_post
    }

    /// Whether every arrival has been delivered.
    pub fn done(&self) -> bool {
        self.next_post as usize >= self.global_times.len()
    }

    /// Delivers the next global arrival to every shard owning one of its
    /// labels. Returns `Ok(false)` once the stream is exhausted.
    pub fn step(&mut self) -> Result<bool, MqdError> {
        if self.done() {
            return Ok(false);
        }
        let k = self.next_post;
        for sup in &mut self.sups {
            let local = sup.shard.to_local[k as usize];
            if local != u32::MAX {
                sup.deliver(local)?;
            }
        }
        self.next_post += 1;
        Ok(true)
    }

    /// Runs to end of stream.
    pub fn run_all(&mut self) -> Result<(), MqdError> {
        while self.step()? {}
        Ok(())
    }

    /// Emissions released so far, across shards, in `(emit_time, post)`
    /// order (without the end-of-stream flush). This is what a process
    /// killed right now would have durably published.
    pub fn released_emissions(&self) -> Vec<SupervisedEmission> {
        let mut all: Vec<SupervisedEmission> = self
            .sups
            .iter()
            .flat_map(|s| s.emissions_so_far().iter().copied())
            .collect();
        all.sort_by_key(|e| (e.post, e.emit_time, e.degraded));
        all.dedup_by_key(|e| e.post);
        all.sort_by_key(|e| (e.emit_time, e.post));
        all
    }

    /// Flushes every shard and assembles the merged result and report.
    pub fn finish(self) -> Result<SupervisedRunResult, MqdError> {
        let mut outcomes = Vec::with_capacity(self.sups.len());
        for sup in self.sups {
            outcomes.push(sup.finish()?);
        }
        Ok(assemble(
            &self.global_times,
            self.tau,
            self.seed,
            self.plan_faults,
            self.kind,
            outcomes,
        ))
    }
}

/// Canonical digest of an instance (timestamps and label sets), used to
/// refuse applying a checkpoint to the wrong stream.
pub(crate) fn instance_digest(inst: &Instance) -> u64 {
    let mut buf = Vec::with_capacity(inst.len() * 6);
    mqd_core::wire::put_varint(&mut buf, inst.len() as u64);
    for k in 0..inst.len() as u32 {
        mqd_core::wire::put_varint_i64(&mut buf, inst.value(k));
        let labels = inst.labels(k);
        mqd_core::wire::put_varint(&mut buf, labels.len() as u64);
        for &a in labels {
            mqd_core::wire::put_varint(&mut buf, a.index() as u64);
        }
    }
    mqd_core::wire::fnv1a(&buf)
}

/// Sequential supervised run: build, drive to completion, finish. The
/// reference implementation the threaded runner must match byte-for-byte.
pub fn run_supervised_reference(
    inst: &Instance,
    lambda: i64,
    tau: i64,
    shards: usize,
    kind: ShardEngineKind,
    plan: &FaultPlan,
    cfg: SupervisorConfig,
) -> Result<SupervisedRunResult, MqdError> {
    let mut run = SupervisedRun::new(inst, lambda, tau, shards, kind, plan, cfg);
    run.run_all()?;
    run.finish()
}

/// Threaded supervised run: the PR-1 feeder/worker topology with every
/// worker wrapped in a [`ShardSup`]. Fault interpretation is keyed by the
/// per-shard arrival sequence, so the output — emissions *and* report — is
/// byte-identical to [`run_supervised_reference`] for any thread schedule.
pub fn run_supervised_stream(
    inst: &Instance,
    lambda: i64,
    tau: i64,
    shards: usize,
    kind: ShardEngineKind,
    plan: &FaultPlan,
    cfg: SupervisorConfig,
) -> Result<SupervisedRunResult, MqdError> {
    silence_injected_panics();
    let shards = clamp_shards(inst, shards);
    let built = build_shards(inst, shards);
    let routing: Vec<Vec<u32>> = built.iter().map(|s| s.to_local.clone()).collect();
    let mut sups: Vec<ShardSup> = built
        .into_iter()
        .enumerate()
        .map(|(s, sh)| ShardSup::new(s, sh, lambda, tau, kind, cfg, plan.for_shard(s)))
        .collect();

    let mut results: Vec<Result<ShardOutcome, MqdError>> = Vec::with_capacity(shards);
    std::thread::scope(|scope| {
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for mut sup in sups.drain(..) {
            let (tx, rx) = sync_channel::<u32>(1024);
            senders.push(tx);
            handles.push(scope.spawn(move || -> Result<ShardOutcome, MqdError> {
                // lint:allow(blocking-call): the feeder drops all senders after the routing loop, ending this recv with Err
                while let Ok(idx) = rx.recv() {
                    if let Err(e) = sup.deliver(idx) {
                        // Keep draining so the feeder never blocks on a
                        // failed shard's full channel.
                        // lint:allow(blocking-call): same sender-drop bound as the loop above
                        while rx.recv().is_ok() {}
                        return Err(e);
                    }
                }
                sup.finish()
            }));
        }
        for k in 0..inst.len() {
            for (s, routes) in routing.iter().enumerate() {
                let local = routes[k];
                if local != u32::MAX && senders[s].send(local).is_err() {
                    // The shard exited early (restart budget exhausted);
                    // its typed error surfaces when we join below.
                    continue;
                }
            }
        }
        drop(senders);
        for h in handles {
            // lint:allow(blocking-call): the sender drop above ends each shard's recv loop, so the join is bounded
            results.push(match h.join() {
                Ok(r) => r,
                Err(payload) => std::panic::resume_unwind(payload),
            });
        }
    });

    let mut outcomes = Vec::with_capacity(shards);
    for r in results {
        outcomes.push(r?);
    }
    let global_times: Vec<i64> = (0..inst.len() as u32).map(|k| inst.value(k)).collect();
    Ok(assemble(
        &global_times,
        tau,
        plan.seed,
        plan.faults.clone(),
        kind,
        outcomes,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::run_sharded_reference;
    use mqd_core::{coverage, FixedLambda};

    fn instance(seed: u64, n: usize, labels: usize) -> Instance {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut t = 0i64;
        let items: Vec<(i64, Vec<u16>)> = (0..n)
            .map(|_| {
                t += (next() % 40) as i64;
                let mut ls = vec![(next() % labels as u64) as u16];
                if next() % 3 == 0 {
                    ls.push((next() % labels as u64) as u16);
                    ls.sort_unstable();
                    ls.dedup();
                }
                (t, ls)
            })
            .collect();
        Instance::from_values(items, labels).unwrap()
    }

    #[test]
    fn no_faults_matches_plain_sharding() {
        let inst = instance(5, 150, 4);
        let (lambda, tau) = (60, 40);
        for kind in [ShardEngineKind::Scan, ShardEngineKind::Greedy] {
            let sup = run_supervised_reference(
                &inst,
                lambda,
                tau,
                4,
                kind,
                &FaultPlan::none(),
                SupervisorConfig::default(),
            )
            .unwrap();
            let plain = run_sharded_reference(&inst, lambda, tau, 4, kind);
            assert_eq!(sup.result.selected, plain.selected, "{kind:?}");
            assert_eq!(sup.result.emissions, plain.emissions, "{kind:?}");
            assert!(sup.report.restarts.is_empty());
            assert_eq!(sup.report.counters, ShardCounters::default());
        }
    }

    #[test]
    fn panic_restart_is_transparent() {
        // Only panic faults: after restart+replay the output must equal the
        // fault-free run exactly, with every restart on record.
        let inst = instance(11, 120, 4);
        let (lambda, tau) = (60, 40);
        let faults = vec![
            Fault {
                shard: 0,
                seq: 3,
                kind: FaultKind::Panic,
            },
            Fault {
                shard: 1,
                seq: 10,
                kind: FaultKind::Panic,
            },
            Fault {
                shard: 2,
                seq: 0,
                kind: FaultKind::Panic,
            },
        ];
        let plan = FaultPlan::from_faults(99, faults);
        let sup = run_supervised_reference(
            &inst,
            lambda,
            tau,
            4,
            ShardEngineKind::ScanPlus,
            &plan,
            SupervisorConfig::default(),
        )
        .unwrap();
        let clean = run_sharded_reference(&inst, lambda, tau, 4, ShardEngineKind::ScanPlus);
        assert_eq!(sup.result.emissions, clean.emissions);
        assert_eq!(sup.report.restarts.len(), 3);
        assert_eq!(sup.report.tau_violations_unflagged, 0);
    }

    #[test]
    fn stall_rewrites_are_flagged_and_budget_holds() {
        let inst = instance(3, 150, 3);
        let (lambda, tau) = (80, 30);
        let plan = FaultPlan::from_faults(
            7,
            vec![Fault {
                shard: 0,
                seq: 5,
                kind: FaultKind::Stall { duration: 500 },
            }],
        );
        let sup = run_supervised_reference(
            &inst,
            lambda,
            tau,
            3,
            ShardEngineKind::Scan,
            &plan,
            SupervisorConfig::default(),
        )
        .unwrap();
        assert!(sup.report.counters.stalls_applied >= 1);
        assert!(
            sup.report.counters.stall_rewrites + sup.report.counters.degraded_emissions > 0,
            "a 500-tick stall with tau=30 must delay or degrade something"
        );
        assert_eq!(sup.report.tau_violations_unflagged, 0);
        assert!(sup.report.max_unflagged_delay <= tau);
        // Long stall must have pushed the shard into degraded mode.
        assert!(sup.report.counters.mode_switches >= 1);
        assert!(coverage::is_cover(
            &inst,
            &FixedLambda(lambda),
            &sup.result.selected
        ));
    }

    #[test]
    fn duplicates_are_dropped() {
        let inst = instance(9, 80, 2);
        let plan = FaultPlan::from_faults(
            1,
            vec![
                Fault {
                    shard: 0,
                    seq: 4,
                    kind: FaultKind::Duplicate,
                },
                Fault {
                    shard: 1,
                    seq: 6,
                    kind: FaultKind::Duplicate,
                },
            ],
        );
        let sup = run_supervised_reference(
            &inst,
            40,
            20,
            2,
            ShardEngineKind::Greedy,
            &plan,
            SupervisorConfig::default(),
        )
        .unwrap();
        assert_eq!(sup.report.counters.duplicates_dropped, 2);
        assert!(coverage::is_cover(
            &inst,
            &FixedLambda(40),
            &sup.result.selected
        ));
    }

    #[test]
    fn threaded_matches_reference_under_chaos() {
        let inst = instance(21, 200, 5);
        let (lambda, tau) = (70, 45);
        for seed in [1u64, 42, 1234] {
            let plan = FaultPlan::for_instance(&inst, 5, seed, tau);
            for kind in [ShardEngineKind::ScanPlus, ShardEngineKind::GreedyPlus] {
                let a = run_supervised_stream(
                    &inst,
                    lambda,
                    tau,
                    5,
                    kind,
                    &plan,
                    SupervisorConfig::default(),
                )
                .unwrap();
                let b = run_supervised_reference(
                    &inst,
                    lambda,
                    tau,
                    5,
                    kind,
                    &plan,
                    SupervisorConfig::default(),
                )
                .unwrap();
                assert_eq!(a.emissions, b.emissions, "seed {seed} {kind:?}");
                assert_eq!(a.report, b.report, "seed {seed} {kind:?}");
                assert_eq!(
                    a.report.to_json(),
                    b.report.to_json(),
                    "seed {seed} {kind:?}"
                );
                assert_eq!(a.report.tau_violations_unflagged, 0);
                assert!(coverage::is_cover(
                    &inst,
                    &FixedLambda(lambda),
                    &a.result.selected
                ));
            }
        }
    }

    #[test]
    fn restart_budget_exhaustion_fails_the_run() {
        let inst = instance(2, 40, 2);
        let plan = FaultPlan::from_faults(
            3,
            vec![Fault {
                shard: 0,
                seq: 1,
                kind: FaultKind::Panic,
            }],
        );
        let cfg = SupervisorConfig {
            max_restarts: 0,
            ..Default::default()
        };
        let err = run_supervised_reference(&inst, 30, 10, 2, ShardEngineKind::Scan, &plan, cfg)
            .unwrap_err();
        assert!(matches!(err, MqdError::ShardFailed { shard: 0, .. }));
    }

    #[test]
    fn tiny_snapshot_interval_still_correct() {
        // Snapshot after every arrival: restarts replay a single delivery.
        let inst = instance(17, 100, 3);
        let plan = FaultPlan::for_instance(&inst, 3, 77, 25);
        let cfg = SupervisorConfig {
            snapshot_every: 1,
            ..Default::default()
        };
        let a =
            run_supervised_reference(&inst, 50, 25, 3, ShardEngineKind::Scan, &plan, cfg).unwrap();
        let b = run_supervised_reference(
            &inst,
            50,
            25,
            3,
            ShardEngineKind::Scan,
            &plan,
            SupervisorConfig::default(),
        )
        .unwrap();
        assert_eq!(
            a.emissions, b.emissions,
            "snapshot cadence must not change output"
        );
        assert!(coverage::is_cover(
            &inst,
            &FixedLambda(50),
            &a.result.selected
        ));
    }
}
