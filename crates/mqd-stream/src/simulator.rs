//! Event-driven stream simulator.
//!
//! Replays an [`Instance`] (posts sorted by timestamp) against a
//! [`StreamEngine`], modelling a clock that advances with arrivals:
//! before a post arrives at time `t`, every engine deadline strictly before
//! `t` fires; deadlines falling exactly on an arrival time fire after the
//! arrival (a post published at `time(P') + lambda` can still cover `P'`).
//! After the last arrival, remaining deadlines are flushed.

use mqd_core::{coverage, Instance, LambdaProvider};

use crate::engine::{Emission, StreamContext, StreamEngine};

/// Outcome of a simulated run.
#[derive(Clone, Debug)]
pub struct StreamRunResult {
    /// Engine name.
    pub algorithm: &'static str,
    /// Emissions in release order.
    pub emissions: Vec<Emission>,
    /// Distinct emitted post indices, sorted — the solution `Z`.
    pub selected: Vec<u32>,
    /// Largest observed `emit_time - time(post)`; 0 for an empty run.
    pub max_delay: i64,
}

impl StreamRunResult {
    /// Solution size `|Z|`.
    pub fn size(&self) -> usize {
        self.selected.len()
    }

    /// Whether the emitted sub-stream lambda-covers the whole input.
    pub fn is_cover<L: LambdaProvider + Sync + ?Sized>(&self, inst: &Instance, lp: &L) -> bool {
        coverage::is_cover(inst, lp, &self.selected)
    }
}

/// Replays `inst` through `engine` with delay budget `tau`.
///
/// ```
/// use mqd_core::{Instance, FixedLambda};
/// use mqd_stream::{run_stream, StreamScan};
/// let inst = Instance::from_values(
///     vec![(0, vec![0]), (5, vec![0]), (40, vec![0])], 1).unwrap();
/// let lambda = FixedLambda(10);
/// let mut engine = StreamScan::new(1, inst.len());
/// let res = run_stream(&inst, &lambda, 5, &mut engine);
/// assert!(res.is_cover(&inst, &lambda));
/// assert!(res.max_delay <= 5);
/// ```
pub fn run_stream<L: LambdaProvider>(
    inst: &Instance,
    lambda: &L,
    tau: i64,
    engine: &mut dyn StreamEngine,
) -> StreamRunResult {
    let ctx = StreamContext::new(inst, lambda, tau);
    let mut out: Vec<Emission> = Vec::new();
    for post in 0..inst.len() as u32 {
        let t = inst.value(post);
        engine.on_time(&ctx, t.saturating_sub(1), &mut out);
        engine.on_arrival(&ctx, post, &mut out);
    }
    engine.flush(&ctx, &mut out);

    let mut selected: Vec<u32> = out.iter().map(|e| e.post).collect();
    selected.sort_unstable();
    selected.dedup();
    let max_delay = out.iter().map(|e| e.delay(inst)).max().unwrap_or(0);
    StreamRunResult {
        algorithm: engine.name(),
        emissions: out,
        selected,
        max_delay,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Emission, StreamContext, StreamEngine};
    use mqd_core::{FixedLambda, Instance};

    /// Records the event sequence to pin down simulator ordering semantics.
    struct Recorder {
        events: Vec<(char, i64)>,
        pending: Option<i64>,
    }

    impl StreamEngine for Recorder {
        fn name(&self) -> &'static str {
            "Recorder"
        }
        fn on_time(&mut self, _ctx: &StreamContext<'_>, now: i64, out: &mut Vec<Emission>) {
            if let Some(d) = self.pending {
                if d <= now {
                    self.events.push(('T', d));
                    self.pending = None;
                    out.push(Emission {
                        post: 0,
                        emit_time: d,
                    });
                }
            }
        }
        fn on_arrival(&mut self, ctx: &StreamContext<'_>, post: u32, _out: &mut Vec<Emission>) {
            let t = ctx.inst.value(post);
            self.events.push(('A', t));
            if self.pending.is_none() {
                self.pending = Some(t + ctx.tau);
            }
        }
    }

    #[test]
    fn deadline_on_arrival_time_fires_after_arrival() {
        // Posts at t=0 and t=5; tau=5 -> deadline 5 coincides with the
        // second arrival, which must be delivered first.
        let inst = Instance::from_values(vec![(0, vec![0]), (5, vec![0])], 1).unwrap();
        let f = FixedLambda(10);
        let mut rec = Recorder {
            events: vec![],
            pending: None,
        };
        let res = run_stream(&inst, &f, 5, &mut rec);
        assert_eq!(rec.events, vec![('A', 0), ('A', 5), ('T', 5)]);
        assert_eq!(res.size(), 1);
    }

    #[test]
    fn deadline_before_next_arrival_fires_first() {
        let inst = Instance::from_values(vec![(0, vec![0]), (10, vec![0])], 1).unwrap();
        let f = FixedLambda(10);
        let mut rec = Recorder {
            events: vec![],
            pending: None,
        };
        run_stream(&inst, &f, 3, &mut rec);
        // The deadline armed at t=0 fires before the t=10 arrival; the
        // arrival re-arms a deadline at 13, which the flush releases.
        assert_eq!(rec.events, vec![('A', 0), ('T', 3), ('A', 10), ('T', 13)]);
    }

    #[test]
    fn flush_fires_trailing_deadlines() {
        let inst = Instance::from_values(vec![(0, vec![0])], 1).unwrap();
        let f = FixedLambda(10);
        let mut rec = Recorder {
            events: vec![],
            pending: None,
        };
        let res = run_stream(&inst, &f, 100, &mut rec);
        assert_eq!(rec.events, vec![('A', 0), ('T', 100)]);
        assert_eq!(res.emissions[0].emit_time, 100);
        assert_eq!(res.max_delay, 100);
    }
}
