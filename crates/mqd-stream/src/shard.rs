//! Sharded streaming: partition labels across worker shards, run one
//! streaming engine per shard behind a bounded channel, and merge the
//! emitted sub-streams in emission order.
//!
//! The MQDP coverage relation never crosses labels — a post covers an
//! occurrence `⟨P_i, a⟩` only via label `a` — so partitioning *labels*
//! across shards decomposes the problem exactly: the union of per-shard
//! lambda-covers is a lambda-cover of the full instance, and each shard's
//! engine enforces the delay budget `tau` for the occurrences it owns.
//! Label `a` goes to shard `a.index() % shards`; a post carrying labels
//! from several shards is fed to each of them (and deduplicated at merge,
//! keeping its earliest emission, which can only tighten the delay).
//!
//! Mechanically this mirrors a real ingestion pipeline: the caller's
//! thread is the feeder, pushing arrivals in timestamp order into one
//! bounded [`std::sync::mpsc::sync_channel`] per shard (providing
//! backpressure), while each shard thread replays the simulator's event
//! discipline — clock advance to `t - 1`, then the arrival — against its
//! label-filtered sub-instance, and flushes on channel close.
//!
//! Sharding is defined for a **uniform** threshold (`FixedLambda`):
//! variable per-post thresholds (Section 6) are computed against a
//! concrete instance and would not survive the per-shard re-indexing.
//!
//! Determinism: each shard consumes the same arrival sequence no matter
//! how threads interleave (one ordered channel per shard), so the merged
//! output is byte-identical across runs and shard/thread schedules; with
//! `shards = 1` it equals the unsharded [`run_stream`] of the same engine.

use std::sync::mpsc::sync_channel;

use mqd_core::{FixedLambda, Instance, LabelId, Post, PostId};

use crate::engine::{Emission, StreamContext, StreamEngine};
use crate::greedy::StreamGreedy;
use crate::scan::StreamScan;
use crate::simulator::StreamRunResult;

/// Bounded per-shard channel depth: enough to hide scheduling jitter,
/// small enough to give real backpressure on a day-scale replay.
const CHANNEL_DEPTH: usize = 1024;

/// Which engine each shard runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ShardEngineKind {
    /// Per-label pending groups (Section 5.1).
    Scan,
    /// StreamScan+ — Scan with cross-label cache checks.
    ScanPlus,
    /// Windowed greedy set cover (Section 5.2).
    Greedy,
    /// StreamGreedySC+ — greedy with the extended window.
    GreedyPlus,
}

impl ShardEngineKind {
    pub(crate) fn build(self, num_labels: usize, capacity: usize) -> Box<dyn StreamEngine> {
        match self {
            ShardEngineKind::Scan => Box::new(StreamScan::new(num_labels, capacity)),
            ShardEngineKind::ScanPlus => Box::new(StreamScan::new_plus(num_labels, capacity)),
            ShardEngineKind::Greedy => Box::new(StreamGreedy::new(num_labels, capacity)),
            ShardEngineKind::GreedyPlus => Box::new(StreamGreedy::new_plus(num_labels, capacity)),
        }
    }

    pub(crate) fn merged_name(self) -> &'static str {
        match self {
            ShardEngineKind::Scan => "Sharded(StreamScan)",
            ShardEngineKind::ScanPlus => "Sharded(StreamScan+)",
            ShardEngineKind::Greedy => "Sharded(StreamGreedySC)",
            ShardEngineKind::GreedyPlus => "Sharded(StreamGreedySC+)",
        }
    }

    pub(crate) fn supervised_name(self) -> &'static str {
        match self {
            ShardEngineKind::Scan => "Supervised(StreamScan)",
            ShardEngineKind::ScanPlus => "Supervised(StreamScan+)",
            ShardEngineKind::Greedy => "Supervised(StreamGreedySC)",
            ShardEngineKind::GreedyPlus => "Supervised(StreamGreedySC+)",
        }
    }

    /// Stable on-disk tag for checkpoint files.
    pub(crate) fn to_tag(self) -> u8 {
        match self {
            ShardEngineKind::Scan => 0,
            ShardEngineKind::ScanPlus => 1,
            ShardEngineKind::Greedy => 2,
            ShardEngineKind::GreedyPlus => 3,
        }
    }

    /// Inverse of [`Self::to_tag`].
    pub(crate) fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(ShardEngineKind::Scan),
            1 => Some(ShardEngineKind::ScanPlus),
            2 => Some(ShardEngineKind::Greedy),
            3 => Some(ShardEngineKind::GreedyPlus),
            _ => None,
        }
    }
}

/// The clamp every sharded entry point applies to a requested shard count:
/// at least one shard, at most one per label.
pub(crate) fn clamp_shards(inst: &Instance, shards: usize) -> usize {
    shards.max(1).min(inst.num_labels().max(1))
}

/// One shard's label-filtered view of the instance.
pub(crate) struct Shard {
    /// Sub-instance over the posts carrying at least one owned label, with
    /// owned labels re-indexed densely.
    pub(crate) inst: Instance,
    /// Sub-instance post index -> global post index.
    pub(crate) to_global: Vec<u32>,
    /// Global post index -> sub-instance post index (or `u32::MAX`).
    pub(crate) to_local: Vec<u32>,
}

/// Splits `inst` into `shards` label-partitioned sub-instances. Shards that
/// own no occurrences still appear (empty) so indices stay aligned.
pub(crate) fn build_shards(inst: &Instance, shards: usize) -> Vec<Shard> {
    // Global label -> (owning shard, dense local label id).
    let num_labels = inst.num_labels();
    let mut local_label = vec![0u16; num_labels];
    let mut shard_labels = vec![0usize; shards];
    for (a, local) in local_label.iter_mut().enumerate() {
        let s = a % shards;
        *local = shard_labels[s] as u16;
        shard_labels[s] += 1;
    }

    let mut posts: Vec<Vec<Post>> = vec![Vec::new(); shards];
    let mut to_global: Vec<Vec<u32>> = vec![Vec::new(); shards];
    let mut to_local: Vec<Vec<u32>> = vec![vec![u32::MAX; inst.len()]; shards];
    for k in 0..inst.len() as u32 {
        let t = inst.value(k);
        // Labels a post carries in each shard (labels are sorted, and
        // `a % shards` preserves relative order within a shard, so each
        // local label list stays sorted).
        let mut per_shard: Vec<Vec<LabelId>> = vec![Vec::new(); shards];
        for &a in inst.labels(k) {
            per_shard[a.index() % shards].push(LabelId(local_label[a.index()]));
        }
        for (s, labels) in per_shard.into_iter().enumerate() {
            if labels.is_empty() {
                continue;
            }
            to_local[s][k as usize] = posts[s].len() as u32;
            to_global[s].push(k);
            posts[s].push(Post::new(PostId(k as u64), t, labels));
        }
    }

    posts
        .into_iter()
        .zip(to_global)
        .zip(to_local)
        .enumerate()
        .map(|(s, ((p, tg), tl))| Shard {
            inst: Instance::from_posts(p, shard_labels[s].max(1))
                // lint:allow(panic-path): shard_labels[s] counts this shard's remapped dense ids, so the bound holds by construction
                .expect("shard labels are dense by construction"),
            to_global: tg,
            to_local: tl,
        })
        .collect()
}

/// Merges per-shard emissions (already mapped to global post indices):
/// dedup posts keeping each post's earliest emission, then order by
/// `(emit_time, post)`.
pub(crate) fn merge_emissions(mut all: Vec<Emission>) -> Vec<Emission> {
    all.sort_unstable_by_key(|e| (e.post, e.emit_time));
    all.dedup_by_key(|e| e.post);
    all.sort_unstable_by_key(|e| (e.emit_time, e.post));
    all
}

fn result_from(
    inst: &Instance,
    kind: ShardEngineKind,
    emissions: Vec<Emission>,
) -> StreamRunResult {
    let mut selected: Vec<u32> = emissions.iter().map(|e| e.post).collect();
    selected.sort_unstable();
    selected.dedup();
    let max_delay = emissions.iter().map(|e| e.delay(inst)).max().unwrap_or(0);
    StreamRunResult {
        algorithm: kind.merged_name(),
        emissions,
        selected,
        max_delay,
    }
}

/// Replays one shard's arrival sequence through its engine; `arrivals` are
/// sub-instance post indices in timestamp order. Returns emissions with
/// **global** post indices.
fn replay_shard(
    shard: &Shard,
    kind: ShardEngineKind,
    lambda: i64,
    tau: i64,
    arrivals: impl IntoIterator<Item = u32>,
) -> Vec<Emission> {
    let lp = FixedLambda(lambda);
    let ctx = StreamContext::new(&shard.inst, &lp, tau);
    let mut engine = kind.build(shard.inst.num_labels(), shard.inst.len());
    let mut out = Vec::new();
    for local in arrivals {
        let t = shard.inst.value(local);
        engine.on_time(&ctx, t.saturating_sub(1), &mut out);
        engine.on_arrival(&ctx, local, &mut out);
    }
    engine.flush(&ctx, &mut out);
    for e in &mut out {
        e.post = shard.to_global[e.post as usize];
    }
    out
}

/// Runs `inst` through `shards` parallel shard threads, each owning the
/// labels `a` with `a.index() % shards == s` and running `kind` with
/// uniform threshold `lambda` and delay budget `tau`. The caller's thread
/// feeds arrivals in timestamp order through bounded channels. The merged
/// result preserves the per-post delay bound `tau` and is byte-identical
/// to [`run_sharded_reference`] at any shard count.
pub fn run_sharded_stream(
    inst: &Instance,
    lambda: i64,
    tau: i64,
    shards: usize,
    kind: ShardEngineKind,
) -> StreamRunResult {
    let shards = clamp_shards(inst, shards);
    let built = build_shards(inst, shards);
    if shards == 1 {
        // lint:allow(panic-path): build_shards returns exactly `shards` entries and shards == 1 here
        let arrivals: Vec<u32> = (0..built[0].inst.len() as u32).collect();
        // lint:allow(panic-path): same single-shard bound as the line above
        let emissions = merge_emissions(replay_shard(&built[0], kind, lambda, tau, arrivals));
        return result_from(inst, kind, emissions);
    }

    let mut all: Vec<Emission> = Vec::new();
    std::thread::scope(|s| {
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for shard in &built {
            let (tx, rx) = sync_channel::<u32>(CHANNEL_DEPTH);
            senders.push(tx);
            handles.push(s.spawn(move || replay_shard(shard, kind, lambda, tau, rx)));
        }
        // Feeder: global timestamp order; a post goes to every shard that
        // owns one of its labels.
        for k in 0..inst.len() as u32 {
            for (s_idx, shard) in built.iter().enumerate() {
                let local = shard.to_local[k as usize];
                if local != u32::MAX && senders[s_idx].send(local).is_err() {
                    // A shard hung up early only if its thread died; the
                    // panic payload is re-raised at join below.
                    continue;
                }
            }
        }
        drop(senders); // close channels -> shards flush and return
        for h in handles {
            // lint:allow(blocking-call): the sender drop above ends each shard's recv loop, so the join is bounded
            match h.join() {
                Ok(emissions) => all.extend(emissions),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    result_from(inst, kind, merge_emissions(all))
}

/// Sequential reference for [`run_sharded_stream`]: identical shard
/// decomposition and merge, no threads or channels. Used by the
/// equivalence tests and available for debugging.
pub fn run_sharded_reference(
    inst: &Instance,
    lambda: i64,
    tau: i64,
    shards: usize,
    kind: ShardEngineKind,
) -> StreamRunResult {
    let shards = clamp_shards(inst, shards);
    let built = build_shards(inst, shards);
    let mut all = Vec::new();
    for shard in &built {
        let arrivals: Vec<u32> = (0..shard.inst.len() as u32).collect();
        all.extend(replay_shard(shard, kind, lambda, tau, arrivals));
    }
    result_from(inst, kind, merge_emissions(all))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::run_stream;
    use mqd_core::coverage;

    fn instance(seed: u64, n: usize, labels: usize) -> Instance {
        // Simple deterministic LCG-driven instance, strictly time-sorted.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut t = 0i64;
        let items: Vec<(i64, Vec<u16>)> = (0..n)
            .map(|_| {
                t += (next() % 40) as i64;
                let mut ls = vec![(next() % labels as u64) as u16];
                if next() % 3 == 0 {
                    ls.push((next() % labels as u64) as u16);
                    ls.sort_unstable();
                    ls.dedup();
                }
                (t, ls)
            })
            .collect();
        Instance::from_values(items, labels).unwrap()
    }

    #[test]
    fn single_shard_equals_unsharded_run() {
        let inst = instance(1, 150, 5);
        let (lambda, tau) = (60, 45);
        for (kind, mk) in [
            (ShardEngineKind::Scan, 0),
            (ShardEngineKind::ScanPlus, 1),
            (ShardEngineKind::Greedy, 2),
            (ShardEngineKind::GreedyPlus, 3),
        ] {
            let sharded = run_sharded_stream(&inst, lambda, tau, 1, kind);
            let mut engine: Box<dyn StreamEngine> = match mk {
                0 => Box::new(StreamScan::new(5, inst.len())),
                1 => Box::new(StreamScan::new_plus(5, inst.len())),
                2 => Box::new(StreamGreedy::new(5, inst.len())),
                _ => Box::new(StreamGreedy::new_plus(5, inst.len())),
            };
            let plain = run_stream(&inst, &FixedLambda(lambda), tau, engine.as_mut());
            assert_eq!(sharded.selected, plain.selected, "{kind:?}");
            assert_eq!(sharded.max_delay, plain.max_delay, "{kind:?}");
        }
    }

    #[test]
    fn sharded_matches_reference_and_covers() {
        let inst = instance(7, 200, 6);
        let (lambda, tau) = (80, 50);
        let f = FixedLambda(lambda);
        for kind in [
            ShardEngineKind::Scan,
            ShardEngineKind::ScanPlus,
            ShardEngineKind::Greedy,
            ShardEngineKind::GreedyPlus,
        ] {
            for shards in [1usize, 2, 3, 6, 16] {
                let par = run_sharded_stream(&inst, lambda, tau, shards, kind);
                let seq = run_sharded_reference(&inst, lambda, tau, shards, kind);
                assert_eq!(par.selected, seq.selected, "{kind:?} shards={shards}");
                assert_eq!(par.emissions, seq.emissions, "{kind:?} shards={shards}");
                assert!(
                    coverage::is_cover(&inst, &f, &par.selected),
                    "{kind:?} shards={shards} non-cover"
                );
                assert!(
                    par.max_delay <= tau,
                    "{kind:?} shards={shards}: delay {} > tau {tau}",
                    par.max_delay
                );
            }
        }
    }

    #[test]
    fn delay_bound_holds_at_tau_zero() {
        let inst = instance(3, 120, 4);
        let res = run_sharded_stream(&inst, 50, 0, 4, ShardEngineKind::Scan);
        assert_eq!(res.max_delay, 0);
        assert!(coverage::is_cover(&inst, &FixedLambda(50), &res.selected));
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::from_values(Vec::<(i64, Vec<u16>)>::new(), 3).unwrap();
        let res = run_sharded_stream(&inst, 10, 5, 4, ShardEngineKind::ScanPlus);
        assert!(res.selected.is_empty());
        assert_eq!(res.max_delay, 0);
    }

    #[test]
    fn more_shards_than_labels_is_clamped() {
        let inst = instance(9, 60, 2);
        let a = run_sharded_stream(&inst, 40, 30, 64, ShardEngineKind::Greedy);
        let b = run_sharded_stream(&inst, 40, 30, 2, ShardEngineKind::Greedy);
        assert_eq!(a.selected, b.selected);
    }
}
