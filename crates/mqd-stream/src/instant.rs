//! Instant output (`tau = 0`) — Section 5.1/5.2.
//!
//! A small cache keeps the most recently emitted post per label. A new post
//! is emitted immediately iff at least one of its labels is not covered by
//! the cached post; emitting updates the cache for **all** its labels. The
//! paper proves a `2s` bound for this scheme (each label's output posts are
//! pairwise more than lambda apart, so an optimal solution needs at least
//! half as many per label).

use mqd_core::coverage;

use crate::engine::{Emission, EngineSnapshot, StreamContext, StreamEngine};

/// The cache-based instant-output engine.
pub struct InstantScan {
    /// Latest emitted post per label.
    cache: Vec<Option<u32>>,
}

impl InstantScan {
    /// Creates the engine for `num_labels` labels.
    pub fn new(num_labels: usize) -> Self {
        InstantScan {
            cache: vec![None; num_labels],
        }
    }
}

impl StreamEngine for InstantScan {
    fn name(&self) -> &'static str {
        "Instant"
    }

    fn on_time(&mut self, _ctx: &StreamContext<'_>, _now: i64, _out: &mut Vec<Emission>) {
        // No deadlines: every decision is made on arrival.
    }

    fn on_arrival(&mut self, ctx: &StreamContext<'_>, post: u32, out: &mut Vec<Emission>) {
        let uncovered = ctx.inst.labels(post).iter().any(|&a| {
            self.cache[a.index()]
                .is_none_or(|lc| !coverage::covers(ctx.inst, ctx.lambda, lc, post, a))
        });
        if uncovered {
            out.push(Emission {
                post,
                emit_time: ctx.inst.value(post),
            });
            for &a in ctx.inst.labels(post) {
                self.cache[a.index()] = Some(post);
            }
        }
    }

    fn snapshot(&self) -> Option<EngineSnapshot> {
        Some(EngineSnapshot {
            emitted_per_label: self
                .cache
                .iter()
                .map(|c| c.iter().copied().collect())
                .collect(),
            pending: Vec::new(),
            emitted: Vec::new(),
        })
    }

    fn restore(&mut self, ctx: &StreamContext<'_>, snap: &EngineSnapshot) -> bool {
        let _ = ctx;
        for (a, slot) in self.cache.iter_mut().enumerate() {
            *slot = if a < snap.emitted_per_label.len() {
                snap.last_emitted(a)
            } else {
                None
            };
        }
        // Pending posts carry over nowhere: the Instant scheme emits or drops
        // on arrival, so the supervisor re-delivers them through on_arrival.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::run_stream;
    use mqd_core::{coverage, FixedLambda, Instance};

    #[test]
    fn zero_delay_and_valid_cover() {
        let inst = Instance::from_values(
            vec![
                (0, vec![0]),
                (3, vec![0, 1]),
                (5, vec![1]),
                (20, vec![0]),
                (22, vec![1]),
            ],
            2,
        )
        .unwrap();
        let f = FixedLambda(5);
        let mut eng = InstantScan::new(2);
        let res = run_stream(&inst, &f, 0, &mut eng);
        assert_eq!(res.max_delay, 0);
        assert!(coverage::is_cover(&inst, &f, &res.selected));
    }

    #[test]
    fn single_label_output_at_most_twice_optimum() {
        // The 2s bound with s = 1: consecutive emissions are > lambda apart,
        // so |output| <= 2 |opt|.
        let times: Vec<i64> = (0..50).map(|i| i * 3).collect();
        let inst = Instance::from_values(times.iter().map(|&t| (t, vec![0])), 1).unwrap();
        let f = FixedLambda(7);
        let mut eng = InstantScan::new(1);
        let res = run_stream(&inst, &f, 0, &mut eng);
        assert!(coverage::is_cover(&inst, &f, &res.selected));
        let opt = mqd_core::algorithms::solve_scan(&inst, &f); // optimal for one label
        assert!(res.selected.len() <= 2 * opt.size());
        // Consecutive emitted posts must be more than lambda apart.
        for w in res.selected.windows(2) {
            assert!(inst.value(w[1]) - inst.value(w[0]) > 7);
        }
    }

    #[test]
    fn first_post_always_emitted() {
        let inst = Instance::from_values(vec![(42, vec![0])], 1).unwrap();
        let f = FixedLambda(1);
        let mut eng = InstantScan::new(1);
        let res = run_stream(&inst, &f, 0, &mut eng);
        assert_eq!(res.selected, vec![0]);
        assert_eq!(res.emissions[0].emit_time, 42);
    }
}
