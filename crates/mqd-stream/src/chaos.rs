//! Deterministic fault injection for the sharded streaming layer.
//!
//! A [`FaultPlan`] is a sorted list of faults, each pinned to a `(shard,
//! seq)` coordinate where `seq` is the per-shard arrival sequence number.
//! Plans are generated from a single `u64` seed via [`mqd_rng::StdRng`], so
//! every failure scenario — which shard panics, when a channel stalls and
//! for how long, which arrivals are duplicated or carry garbage timestamps
//! — is reproducible byte-for-byte from the seed alone. Because faults are
//! interpreted shard-side at well-defined sequence points (never by wall
//! clock or thread schedule), the threaded supervised run and its
//! sequential reference produce identical output and identical
//! [`FaultReport`]s for the same seed.

use mqd_core::Instance;
use mqd_rng::{RngExt, SeedableRng, StdRng};

use crate::shard::clamp_shards;

/// One kind of injected failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// The shard panics while processing this arrival (caught and restarted
    /// by the supervisor). Fires once: the retry after restart proceeds.
    Panic,
    /// The shard's output channel stalls: nothing actually leaves the shard
    /// before `arrival_time + duration`. Emissions scheduled earlier are
    /// released late (and flagged).
    Stall {
        /// How long past the arrival's timestamp the stall lasts.
        duration: i64,
    },
    /// The previous arrival is delivered a second time; the supervisor's
    /// sequence check must drop it.
    Duplicate,
    /// The arrival's observed timestamp lags its true one (out-of-order
    /// delivery); the supervisor clamps the clock monotone.
    Late {
        /// How far behind the true timestamp the observed one is.
        skew: i64,
    },
    /// The arrival's observed diversity value is garbage (often an extreme
    /// `i64`); the supervisor must reject it against the durable store
    /// without panicking or corrupting its clock.
    Garbage {
        /// The garbage value observed instead of the true timestamp.
        value: i64,
    },
}

impl FaultKind {
    /// Stable lowercase name used in the JSON report.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Stall { .. } => "stall",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Late { .. } => "late",
            FaultKind::Garbage { .. } => "garbage",
        }
    }
}

/// A fault pinned to a per-shard arrival sequence point.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Fault {
    /// Which shard fails.
    pub shard: usize,
    /// The 0-based arrival sequence number (within the shard) at which the
    /// fault fires.
    pub seq: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic, seed-derived set of faults for one supervised run.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// The generating seed (0 for an empty, hand-built plan).
    pub seed: u64,
    /// Faults sorted by `(shard, seq)`, at most one per coordinate.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// No faults at all: the supervised run degenerates to plain sharding.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Builds a plan from an explicit fault list (sorted and deduplicated
    /// by `(shard, seq)`, first occurrence wins).
    pub fn from_faults(seed: u64, mut faults: Vec<Fault>) -> Self {
        faults.sort_by_key(|f| (f.shard, f.seq));
        faults.dedup_by_key(|f| (f.shard, f.seq));
        FaultPlan { seed, faults }
    }

    /// Generates the canonical chaos plan for `inst` split into `shards`
    /// shards with delay budget `tau`, from `seed`. Every shard draws from
    /// its own sub-generator (`seed` mixed with the shard index), so the
    /// plan does not depend on iteration order. The plan always contains at
    /// least one panic and one stall when the stream is non-empty, so a
    /// chaos run exercises both the restart and the stall-rewrite paths.
    pub fn for_instance(inst: &Instance, shards: usize, seed: u64, tau: i64) -> Self {
        let shards = clamp_shards(inst, shards);
        let counts = arrival_counts(inst, shards);
        let max_stall = tau.max(1).saturating_mul(2);
        let mut faults: Vec<Fault> = Vec::new();
        for (s, &n) in counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let mut rng = StdRng::seed_from_u64(seed ^ mix_shard(s));
            for seq in 0..n as u64 {
                let roll = rng.random_range(0u32..96);
                let kind = match roll {
                    0 => Some(FaultKind::Panic),
                    1..=3 => Some(FaultKind::Stall {
                        duration: rng.random_range(1..=max_stall),
                    }),
                    4..=5 if seq > 0 => Some(FaultKind::Duplicate),
                    6..=7 => Some(FaultKind::Late {
                        skew: rng.random_range(1..=tau.max(1)),
                    }),
                    8 => Some(FaultKind::Garbage {
                        value: garbage_value(&mut rng),
                    }),
                    _ => None,
                };
                if let Some(kind) = kind {
                    faults.push(Fault {
                        shard: s,
                        seq,
                        kind,
                    });
                }
            }
        }
        // Guarantee coverage of the two tentpole paths on non-empty input.
        let busiest = counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, &n)| n)
            .filter(|&(_, &n)| n > 0)
            .map(|(s, &n)| (s, n as u64));
        if let Some((s, n)) = busiest {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
            if !faults.iter().any(|f| f.kind == FaultKind::Panic) {
                let seq = free_seq(&faults, s, n / 2, n);
                faults.push(Fault {
                    shard: s,
                    seq,
                    kind: FaultKind::Panic,
                });
            }
            if !faults
                .iter()
                .any(|f| matches!(f.kind, FaultKind::Stall { .. }))
            {
                let seq = free_seq(&faults, s, n / 3, n);
                faults.push(Fault {
                    shard: s,
                    seq,
                    kind: FaultKind::Stall {
                        duration: rng.random_range(1..=max_stall),
                    },
                });
            }
        }
        Self::from_faults(seed, faults)
    }

    /// The faults targeting shard `s`, in seq order.
    pub fn for_shard(&self, s: usize) -> Vec<Fault> {
        self.faults
            .iter()
            .copied()
            .filter(|f| f.shard == s)
            .collect()
    }

    /// Total number of injected faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The largest number of injected panics targeting any single shard.
    /// The supervisor's restart budget exists to catch crash *loops*, so
    /// callers running a chaos plan add this on top of their base budget —
    /// otherwise a long instance (panic odds are per-arrival) would
    /// legitimately exhaust it.
    pub fn max_panics_per_shard(&self) -> usize {
        let mut per_shard: Vec<usize> = Vec::new();
        for f in &self.faults {
            if f.kind == FaultKind::Panic {
                if per_shard.len() <= f.shard {
                    per_shard.resize(f.shard + 1, 0);
                }
                per_shard[f.shard] += 1;
            }
        }
        per_shard.into_iter().max().unwrap_or(0)
    }
}

/// The first seq at or cyclically after `start` (mod `n`) with no fault on
/// shard `s` yet — so a forced fault never collides with (and loses to) an
/// already-drawn one.
fn free_seq(faults: &[Fault], s: usize, start: u64, n: u64) -> u64 {
    (0..n)
        .map(|d| (start + d) % n)
        .find(|&q| !faults.iter().any(|f| f.shard == s && f.seq == q))
        .unwrap_or(start)
}

/// Per-shard arrival counts under the label partition `a % shards` — the
/// coordinate space fault seq numbers live in.
fn arrival_counts(inst: &Instance, shards: usize) -> Vec<usize> {
    let mut counts = vec![0usize; shards];
    let mut owned = vec![false; shards];
    for k in 0..inst.len() as u32 {
        owned.iter_mut().for_each(|o| *o = false);
        for &a in inst.labels(k) {
            owned[a.index() % shards] = true;
        }
        for (s, o) in owned.iter().enumerate() {
            if *o {
                counts[s] += 1;
            }
        }
    }
    counts
}

/// SplitMix-style avalanche of the shard index into the seed domain.
fn mix_shard(s: usize) -> u64 {
    let mut z = (s as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Draws a garbage timestamp: usually an extreme `i64`, sometimes plain
/// random bits — the values most likely to trip overflow or ordering bugs.
fn garbage_value(rng: &mut StdRng) -> i64 {
    match rng.random_range(0u32..4) {
        0 => i64::MIN,
        1 => i64::MAX,
        2 => i64::MIN + 1,
        _ => rng.random::<u64>() as i64,
    }
}

/// A record of one shard restart performed by the supervisor.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RestartRecord {
    /// The restarted shard.
    pub shard: usize,
    /// The arrival sequence number whose processing panicked.
    pub seq: u64,
    /// 1-based attempt count for this shard.
    pub attempt: usize,
}

/// Counters a shard supervisor accumulates while absorbing faults. All of
/// these are deterministic functions of `(instance, plan, config)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ShardCounters {
    /// Stall faults applied.
    pub stalls_applied: u64,
    /// Duplicate arrivals dropped by the sequence check.
    pub duplicates_dropped: u64,
    /// Out-of-order timestamps clamped back to the monotone clock.
    pub late_clamped: u64,
    /// Garbage diversity values rejected against the durable store.
    pub garbage_rejected: u64,
    /// Emissions released while the shard ran the degraded (Instant) scheme.
    pub degraded_emissions: u64,
    /// Emissions whose release time was pushed past their schedule by a
    /// stall (flagged, whatever mode the shard was in).
    pub stall_rewrites: u64,
    /// Mode switches (primary -> Instant and back).
    pub mode_switches: u64,
}

impl ShardCounters {
    /// Element-wise sum.
    pub fn add(&mut self, o: &ShardCounters) {
        self.stalls_applied += o.stalls_applied;
        self.duplicates_dropped += o.duplicates_dropped;
        self.late_clamped += o.late_clamped;
        self.garbage_rejected += o.garbage_rejected;
        self.degraded_emissions += o.degraded_emissions;
        self.stall_rewrites += o.stall_rewrites;
        self.mode_switches += o.mode_switches;
    }
}

/// The full, deterministic account of a supervised run: every injected
/// fault, every restart, every degraded emission, and the delay invariants
/// that held. Rendered to JSON with [`FaultReport::to_json`]; two runs with
/// the same seed produce byte-identical JSON.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FaultReport {
    /// The chaos seed the plan was generated from.
    pub seed: u64,
    /// Number of shards in the run.
    pub shards: usize,
    /// The delay budget the unflagged emissions honor.
    pub tau: i64,
    /// Every injected fault, sorted by `(shard, seq)`.
    pub faults: Vec<Fault>,
    /// Every shard restart, in shard-then-time order.
    pub restarts: Vec<RestartRecord>,
    /// Aggregated counters across shards.
    pub counters: ShardCounters,
    /// Number of merged emissions.
    pub emissions: usize,
    /// Largest delay over all emissions (flagged included).
    pub max_delay: i64,
    /// Largest delay over unflagged emissions only.
    pub max_unflagged_delay: i64,
    /// Unflagged emissions with `delay > tau` — must be 0; a non-zero value
    /// means the degradation accounting lost an emission.
    pub tau_violations_unflagged: usize,
}

impl FaultReport {
    /// Deterministic JSON rendering (fixed key order, no whitespace
    /// variance) — byte-identical across runs with the same seed.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + 64 * self.faults.len());
        s.push('{');
        push_kv_u64(&mut s, "seed", self.seed);
        s.push(',');
        push_kv_u64(&mut s, "shards", self.shards as u64);
        s.push(',');
        push_kv_i64(&mut s, "tau", self.tau);
        s.push_str(",\"faults\":[");
        for (i, f) in self.faults.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('{');
            push_kv_u64(&mut s, "shard", f.shard as u64);
            s.push(',');
            push_kv_u64(&mut s, "seq", f.seq);
            s.push_str(",\"kind\":\"");
            s.push_str(f.kind.name());
            s.push('"');
            match f.kind {
                FaultKind::Stall { duration } => {
                    s.push(',');
                    push_kv_i64(&mut s, "duration", duration);
                }
                FaultKind::Late { skew } => {
                    s.push(',');
                    push_kv_i64(&mut s, "skew", skew);
                }
                FaultKind::Garbage { value } => {
                    s.push(',');
                    push_kv_i64(&mut s, "value", value);
                }
                FaultKind::Panic | FaultKind::Duplicate => {}
            }
            s.push('}');
        }
        s.push_str("],\"restarts\":[");
        for (i, r) in self.restarts.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('{');
            push_kv_u64(&mut s, "shard", r.shard as u64);
            s.push(',');
            push_kv_u64(&mut s, "seq", r.seq);
            s.push(',');
            push_kv_u64(&mut s, "attempt", r.attempt as u64);
            s.push('}');
        }
        s.push_str("],\"counters\":{");
        push_kv_u64(&mut s, "stalls_applied", self.counters.stalls_applied);
        s.push(',');
        push_kv_u64(
            &mut s,
            "duplicates_dropped",
            self.counters.duplicates_dropped,
        );
        s.push(',');
        push_kv_u64(&mut s, "late_clamped", self.counters.late_clamped);
        s.push(',');
        push_kv_u64(&mut s, "garbage_rejected", self.counters.garbage_rejected);
        s.push(',');
        push_kv_u64(
            &mut s,
            "degraded_emissions",
            self.counters.degraded_emissions,
        );
        s.push(',');
        push_kv_u64(&mut s, "stall_rewrites", self.counters.stall_rewrites);
        s.push(',');
        push_kv_u64(&mut s, "mode_switches", self.counters.mode_switches);
        s.push_str("},");
        push_kv_u64(&mut s, "emissions", self.emissions as u64);
        s.push(',');
        push_kv_i64(&mut s, "max_delay", self.max_delay);
        s.push(',');
        push_kv_i64(&mut s, "max_unflagged_delay", self.max_unflagged_delay);
        s.push(',');
        push_kv_u64(
            &mut s,
            "tau_violations_unflagged",
            self.tau_violations_unflagged as u64,
        );
        s.push('}');
        s
    }
}

fn push_kv_u64(s: &mut String, k: &str, v: u64) {
    s.push('"');
    s.push_str(k);
    s.push_str("\":");
    s.push_str(&v.to_string());
}

fn push_kv_i64(s: &mut String, k: &str, v: i64) {
    s.push('"');
    s.push_str(k);
    s.push_str("\":");
    s.push_str(&v.to_string());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance() -> Instance {
        let items: Vec<(i64, Vec<u16>)> = (0..60)
            .map(|i| (i as i64 * 5, vec![(i % 4) as u16]))
            .collect();
        Instance::from_values(items, 4).unwrap()
    }

    #[test]
    fn plan_is_deterministic_and_sorted() {
        let inst = instance();
        let a = FaultPlan::for_instance(&inst, 4, 42, 50);
        let b = FaultPlan::for_instance(&inst, 4, 42, 50);
        assert_eq!(a.faults, b.faults);
        assert!(a
            .faults
            .windows(2)
            .all(|w| (w[0].shard, w[0].seq) < (w[1].shard, w[1].seq)));
        let c = FaultPlan::for_instance(&inst, 4, 43, 50);
        assert_ne!(a.faults, c.faults, "different seeds give different plans");
    }

    #[test]
    fn plan_always_has_a_panic_and_a_stall() {
        let inst = instance();
        for seed in 0..20u64 {
            let plan = FaultPlan::for_instance(&inst, 4, seed, 50);
            assert!(
                plan.faults.iter().any(|f| f.kind == FaultKind::Panic),
                "seed {seed}"
            );
            assert!(
                plan.faults
                    .iter()
                    .any(|f| matches!(f.kind, FaultKind::Stall { .. })),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn empty_instance_gets_empty_plan() {
        let inst = Instance::from_values(Vec::<(i64, Vec<u16>)>::new(), 3).unwrap();
        let plan = FaultPlan::for_instance(&inst, 3, 7, 10);
        assert!(plan.is_empty());
    }

    #[test]
    fn report_json_is_stable() {
        let report = FaultReport {
            seed: 9,
            shards: 2,
            tau: 30,
            faults: vec![
                Fault {
                    shard: 0,
                    seq: 3,
                    kind: FaultKind::Panic,
                },
                Fault {
                    shard: 1,
                    seq: 5,
                    kind: FaultKind::Stall { duration: 12 },
                },
            ],
            restarts: vec![RestartRecord {
                shard: 0,
                seq: 3,
                attempt: 1,
            }],
            counters: ShardCounters {
                stalls_applied: 1,
                ..Default::default()
            },
            emissions: 7,
            max_delay: 42,
            max_unflagged_delay: 30,
            tau_violations_unflagged: 0,
        };
        let json = report.to_json();
        assert_eq!(json, report.to_json());
        assert!(json.starts_with("{\"seed\":9,\"shards\":2,\"tau\":30,\"faults\":["));
        assert!(json.contains("\"kind\":\"stall\",\"duration\":12"));
        assert!(json.contains("\"restarts\":[{\"shard\":0,\"seq\":3,\"attempt\":1}]"));
        assert!(json.ends_with("\"tau_violations_unflagged\":0}"));
    }
}
