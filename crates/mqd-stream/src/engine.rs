//! The streaming engine abstraction shared by all StreamMQDP algorithms
//! (Section 5).
//!
//! Engines are event-driven: the simulator (or a real ingestion pipeline)
//! delivers posts in timestamp order via [`StreamEngine::on_arrival`] and
//! advances the clock via [`StreamEngine::on_time`], which fires any pending
//! output deadlines. Every emitted post carries its emission time so the
//! caller can audit the delay constraint `emit_time - time(P) <= tau`.

use mqd_core::{Instance, LambdaProvider};

/// A post released into the diversified output sub-stream.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Emission {
    /// Post index into the instance (sorted by timestamp).
    pub post: u32,
    /// The moment the engine released the post.
    pub emit_time: i64,
}

impl Emission {
    /// The reporting delay of this emission.
    pub fn delay(&self, inst: &Instance) -> i64 {
        self.emit_time - inst.value(self.post)
    }
}

/// Shared read-only context handed to engines on every event.
pub struct StreamContext<'a> {
    /// The posts, sorted by timestamp; arrival order is index order.
    pub inst: &'a Instance,
    /// Coverage thresholds.
    pub lambda: &'a dyn LambdaProvider,
    /// Maximum allowed reporting delay `tau` (Problem 2).
    pub tau: i64,
}

impl<'a> StreamContext<'a> {
    /// Convenience constructor.
    pub fn new(inst: &'a Instance, lambda: &'a dyn LambdaProvider, tau: i64) -> Self {
        StreamContext { inst, lambda, tau }
    }
}

/// A StreamMQDP algorithm.
pub trait StreamEngine {
    /// Display name ("StreamScan", "StreamGreedySC+", ...).
    fn name(&self) -> &'static str;

    /// Advance the clock to `now`, firing every pending deadline `<= now`.
    /// Emissions are appended to `out` with their scheduled emit times.
    fn on_time(&mut self, ctx: &StreamContext<'_>, now: i64, out: &mut Vec<Emission>);

    /// Deliver the post with index `post` (its timestamp is
    /// `ctx.inst.value(post)`). The simulator guarantees `on_time` has been
    /// called with the post's timestamp first.
    fn on_arrival(&mut self, ctx: &StreamContext<'_>, post: u32, out: &mut Vec<Emission>);

    /// End of stream: fire all remaining deadlines.
    fn flush(&mut self, ctx: &StreamContext<'_>, out: &mut Vec<Emission>) {
        self.on_time(ctx, i64::MAX, out);
    }
}
