//! The streaming engine abstraction shared by all StreamMQDP algorithms
//! (Section 5).
//!
//! Engines are event-driven: the simulator (or a real ingestion pipeline)
//! delivers posts in timestamp order via [`StreamEngine::on_arrival`] and
//! advances the clock via [`StreamEngine::on_time`], which fires any pending
//! output deadlines. Every emitted post carries its emission time so the
//! caller can audit the delay constraint `emit_time - time(P) <= tau`.

use mqd_core::{Instance, LambdaProvider};

/// A post released into the diversified output sub-stream.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Emission {
    /// Post index into the instance (sorted by timestamp).
    pub post: u32,
    /// The moment the engine released the post.
    pub emit_time: i64,
}

impl Emission {
    /// The reporting delay of this emission. Saturating: emit/arrival
    /// times straddling the i64 range must clamp, not wrap to a negative
    /// delay.
    pub fn delay(&self, inst: &Instance) -> i64 {
        self.emit_time.saturating_sub(inst.value(self.post))
    }
}

/// Shared read-only context handed to engines on every event.
pub struct StreamContext<'a> {
    /// The posts, sorted by timestamp; arrival order is index order.
    pub inst: &'a Instance,
    /// Coverage thresholds.
    pub lambda: &'a dyn LambdaProvider,
    /// Maximum allowed reporting delay `tau` (Problem 2).
    pub tau: i64,
}

impl<'a> StreamContext<'a> {
    /// Convenience constructor.
    pub fn new(inst: &'a Instance, lambda: &'a dyn LambdaProvider, tau: i64) -> Self {
        StreamContext { inst, lambda, tau }
    }
}

/// A restartable snapshot of a streaming engine: the per-label coverage
/// frontier plus the posts still buffered (pending) inside the engine.
///
/// The snapshot is the unit of fault tolerance: the shard supervisor
/// captures one every few arrivals so a panicked shard can be restarted
/// from it, the checkpoint codec serializes it to disk so a killed process
/// can resume, and the graceful-degradation path hands it to the Instant
/// (`tau = 0`) scheme so coverage continues seamlessly across mode
/// switches. Restoring a freshly built engine from a snapshot and replaying
/// the arrivals delivered since the capture reproduces the original
/// engine's emissions exactly (engines are deterministic).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct EngineSnapshot {
    /// Per label: emitted posts carrying the label, sorted by timestamp.
    /// Scan-family engines only need the latest entry; the greedy family
    /// keeps the recent suffix for its arrival-time coverage check.
    pub emitted_per_label: Vec<Vec<u32>>,
    /// Buffered posts with the labels they are still pending for, in
    /// arrival (= post index) order.
    pub pending: Vec<(u32, Vec<u16>)>,
    /// Every post emitted so far (sorted indices) — the cross-label dedup
    /// guard. Engines without their own dedup state leave this empty on
    /// export; the supervisor maintains it across mode switches.
    pub emitted: Vec<u32>,
}

impl EngineSnapshot {
    /// An empty snapshot over `num_labels` labels (a fresh engine).
    pub fn empty(num_labels: usize) -> Self {
        EngineSnapshot {
            emitted_per_label: vec![Vec::new(); num_labels],
            pending: Vec::new(),
            emitted: Vec::new(),
        }
    }

    /// The latest emitted post carrying label `a`, if any.
    pub fn last_emitted(&self, a: usize) -> Option<u32> {
        self.emitted_per_label[a].last().copied()
    }
}

/// A StreamMQDP algorithm. `Send` so supervised shards (which own their
/// engine across restarts) can run on worker threads.
pub trait StreamEngine: Send {
    /// Display name ("StreamScan", "StreamGreedySC+", ...).
    fn name(&self) -> &'static str;

    /// Advance the clock to `now`, firing every pending deadline `<= now`.
    /// Emissions are appended to `out` with their scheduled emit times.
    fn on_time(&mut self, ctx: &StreamContext<'_>, now: i64, out: &mut Vec<Emission>);

    /// Deliver the post with index `post` (its timestamp is
    /// `ctx.inst.value(post)`). The simulator guarantees `on_time` has been
    /// called with the post's timestamp first.
    fn on_arrival(&mut self, ctx: &StreamContext<'_>, post: u32, out: &mut Vec<Emission>);

    /// End of stream: fire all remaining deadlines.
    fn flush(&mut self, ctx: &StreamContext<'_>, out: &mut Vec<Emission>) {
        self.on_time(ctx, i64::MAX, out);
    }

    /// Export a restartable snapshot, or `None` if this engine does not
    /// support supervision/checkpointing (the default).
    fn snapshot(&self) -> Option<EngineSnapshot> {
        None
    }

    /// Restore state from a snapshot. The engine must be freshly
    /// constructed with the same dimensions. Returns `false` (and leaves
    /// the engine untouched) when unsupported.
    fn restore(&mut self, ctx: &StreamContext<'_>, snap: &EngineSnapshot) -> bool {
        let _ = (ctx, snap);
        false
    }
}
