//! Incremental repair of cached fixed-lambda Scan covers.
//!
//! The serving layer caches one cover per `QuerySpec`. Under ingest, the
//! old cache invalidated *everything* on every append and the next query
//! paid a full re-solve inline — the 4-second p99 of `BENCH_server.json`.
//! But the paper's own §5 machinery proves a monotone stream only perturbs
//! coverage locally: a new post lands at the value frontier, and for the
//! per-label interval greedy of offline Scan, everything strictly more
//! than lambda left of the last uncovered group start is already *frozen*
//! — no future arrival can change those picks.
//!
//! [`CoverRepair`] exploits that: it is the `tau -> infinity`
//! specialization of [`crate::StreamScan`]'s pending-group rule, keeping
//! per query label only
//!
//! * the committed coverage frontier `reach = pick + lambda` of the last
//!   frozen group, and
//! * the still-open tail group `(left, best-candidate-so-far)`,
//!
//! plus the multiset of currently picked posts. Feeding it the slice rows
//! in `(value, id)` order reproduces offline Scan **byte-for-byte** (the
//! oracle's `repair-agreement` invariant pins this), and feeding it each
//! newly ingested row advances the answer in O(query labels) — no
//! re-solve, no slice rebuild.
//!
//! Why byte-identity holds: `scan_label` opens a group at the leftmost
//! uncovered post `left` and picks the candidate maximizing
//! `(reach, index)`; with a fixed lambda that is exactly the max
//! `(value, id)` post with `value <= left + lambda`, every candidate
//! precedes the first post past `left + lambda` in `(value, id)` order,
//! and the skip rule `value <= pick + lambda` is a pure function of the
//! frozen pick. So a left fold over `(value, id)`-ordered rows with the
//! three-way transition below (extend the open group / freeze it / skip a
//! covered row) visits exactly the same picks. All comparisons are done
//! in `i128`, which agrees with the solver's saturating `i64` arithmetic
//! on every input (saturation only collapses reaches past `i64::MAX`,
//! where both orderings already tie and fall back to `(value, id)`).
//!
//! Only fixed-lambda Scan is repairable this way. Scan+ lets a changed
//! tail pick re-cover occurrences of *other* labels arbitrarily far back
//! in their passes, GreedySC re-ranks globally, OPT is a global DP, and
//! the proportional lambda of §6 depends on slice-wide density — for all
//! of those the serving cache falls back to a background re-solve (see
//! `mqd-store`'s cache documentation).

use std::collections::BTreeMap;

use mqd_core::record::Record;

/// The open (not yet frozen) tail group of one label's interval greedy.
#[derive(Clone, Debug)]
struct OpenGroup {
    /// Value of the group's leftmost uncovered post.
    left: i64,
    /// Best candidate so far: the max `(value, id)` with
    /// `value <= left + lambda`.
    pick: (i64, u64),
}

/// Per-query-label fold state.
#[derive(Clone, Debug, Default)]
struct Lane {
    /// Coverage frontier of the last frozen group (`pick + lambda`,
    /// exact in `i128`); `None` until the first group freezes.
    reach: Option<i128>,
    /// The still-open tail group, if any.
    open: Option<OpenGroup>,
}

/// A picked post: its rendered labels (intersection with the query
/// labels) and how many lanes currently select it.
#[derive(Clone, Debug)]
struct Pick {
    labels: Vec<u16>,
    refs: u32,
}

/// Incrementally maintained fixed-lambda Scan cover over a monotone
/// record stream (see the module docs for the equivalence argument).
///
/// Feed every slice row once via [`CoverRepair::observe`], in `(value,
/// id)` order; [`CoverRepair::cover`] then renders the same records, in
/// the same order, as `run_query` would produce for the equivalent
/// fixed-lambda Scan spec.
#[derive(Clone, Debug)]
pub struct CoverRepair {
    /// Sorted, deduplicated query labels; lane `i` folds `labels[i]`.
    labels: Vec<u16>,
    lambda: i64,
    lanes: Vec<Lane>,
    /// Current picks, keyed by `(value, id)` — exactly the slice order
    /// the offline answer is rendered in.
    picks: BTreeMap<(i64, u64), Pick>,
}

impl CoverRepair {
    /// Empty state for a fixed-lambda Scan query over `labels`.
    /// `lambda` must be non-negative (enforced upstream by the query
    /// validator; negative lambdas would make "covers itself" false).
    pub fn new(labels: &[u16], lambda: i64) -> Self {
        let mut labels = labels.to_vec();
        labels.sort_unstable();
        labels.dedup();
        let lanes = vec![Lane::default(); labels.len()];
        CoverRepair {
            labels,
            lambda,
            lanes,
            picks: BTreeMap::new(),
        }
    }

    /// Folds one record into the cover. Rows must arrive in
    /// non-decreasing `(value, id)` order overall (slice order for the
    /// initial replay, ingest order afterwards — the store's monotone
    /// contract guarantees the two splice correctly). Rows carrying no
    /// query label are ignored; returns `true` iff the row joined.
    pub fn observe(&mut self, row: &Record) -> bool {
        // Intersect with the query labels, preserving sorted order —
        // the same rendering `Slice::record_for` produces. Ingested rows
        // are store-normalized (sorted, deduped) already; tolerate raw
        // input by normalizing locally when needed.
        let mut matched: Vec<u16> = Vec::new();
        for &l in &row.labels {
            if self.labels.binary_search(&l).is_ok() {
                matched.push(l);
            }
        }
        if matched.is_empty() {
            return false;
        }
        matched.sort_unstable();
        matched.dedup();

        let key = (row.value, row.id);
        let v = row.value as i128;
        let lambda = self.lambda as i128;
        for &l in &matched {
            let Ok(lane_idx) = self.labels.binary_search(&l) else {
                continue; // unreachable: `matched` is a subset of `labels`
            };
            let lane = &mut self.lanes[lane_idx];
            if let Some(group) = &mut lane.open {
                if v <= group.left as i128 + lambda {
                    // Still a candidate for the open group: keep the max
                    // (value, id) pick, exactly scan_label's tie-break.
                    if key > group.pick {
                        let old = group.pick;
                        group.pick = key;
                        incref(&mut self.picks, key, &matched);
                        decref(&mut self.picks, old);
                    }
                    continue;
                }
                // First row past left + lambda: the group freezes and its
                // pick's reach becomes the committed frontier.
                lane.reach = Some(group.pick.0 as i128 + lambda);
                lane.open = None;
            }
            if lane.reach.is_some_and(|r| v <= r) {
                continue; // covered by the last frozen pick
            }
            // Leftmost uncovered row of a new group: it covers itself
            // (lambda >= 0), so it starts as the group's pick.
            lane.open = Some(OpenGroup {
                left: row.value,
                pick: key,
            });
            incref(&mut self.picks, key, &matched);
        }
        true
    }

    /// Renders the current cover: selected records in ascending
    /// `(value, id)` order, labels intersected with the query labels —
    /// byte-identical (via `format_tsv`) to a cold offline solve over
    /// the same rows.
    pub fn cover(&self) -> Vec<Record> {
        self.picks
            .iter()
            .map(|(&(value, id), pick)| Record {
                id,
                value,
                labels: pick.labels.clone(),
            })
            .collect()
    }

    /// Number of currently selected posts.
    pub fn len(&self) -> usize {
        self.picks.len()
    }

    /// True when nothing is selected yet.
    pub fn is_empty(&self) -> bool {
        self.picks.is_empty()
    }
}

fn incref(picks: &mut BTreeMap<(i64, u64), Pick>, key: (i64, u64), labels: &[u16]) {
    picks
        .entry(key)
        .and_modify(|p| p.refs += 1)
        .or_insert_with(|| Pick {
            labels: labels.to_vec(),
            refs: 1,
        });
}

fn decref(picks: &mut BTreeMap<(i64, u64), Pick>, key: (i64, u64)) {
    if let Some(p) = picks.get_mut(&key) {
        p.refs -= 1;
        if p.refs == 0 {
            picks.remove(&key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqd_core::algorithms::solve_scan;
    use mqd_core::record::format_tsv;
    use mqd_core::{FixedLambda, Instance, LabelId, Post, PostId};
    use mqd_rng::{RngExt, SeedableRng, StdRng};

    /// Offline reference: the canonical slice + solve + render pipeline,
    /// restated here so the test does not depend on `mqd-store`.
    fn offline_scan(rows: &[Record], labels: &[u16], lambda: i64) -> Vec<String> {
        let mut qlabels = labels.to_vec();
        qlabels.sort_unstable();
        qlabels.dedup();
        let mut posts = Vec::new();
        for r in rows {
            let locals: Vec<LabelId> = r
                .labels
                .iter()
                .filter_map(|l| qlabels.binary_search(l).ok().map(|i| LabelId(i as u16)))
                .collect();
            if !locals.is_empty() {
                posts.push(Post::new(PostId(r.id), r.value, locals));
            }
        }
        let inst = Instance::from_posts(posts, qlabels.len()).unwrap();
        let mut sol = solve_scan(&inst, &FixedLambda(lambda));
        sol.selected.sort_unstable();
        sol.selected.dedup();
        sol.selected
            .iter()
            .map(|&z| {
                format_tsv(&Record {
                    id: inst.post(z).id().0,
                    value: inst.value(z),
                    labels: inst
                        .labels(z)
                        .iter()
                        .map(|&LabelId(l)| qlabels[l as usize])
                        .collect(),
                })
            })
            .collect()
    }

    fn rendered(repair: &CoverRepair) -> Vec<String> {
        repair.cover().iter().map(format_tsv).collect()
    }

    fn random_rows(seed: u64, n: usize, num_labels: u16, max_step: i64) -> Vec<Record> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut value = 0i64;
        (0..n)
            .map(|i| {
                value += rng.random_range(0..max_step); // 0 steps => ties
                let k = rng.random_range(1..=3usize);
                Record {
                    id: i as u64,
                    value,
                    labels: (0..k).map(|_| rng.random_range(0..num_labels)).collect(),
                }
            })
            .collect()
    }

    /// Sort ingest-ordered rows into slice `(value, id)` order.
    fn slice_order(rows: &[Record]) -> Vec<Record> {
        let mut v = rows.to_vec();
        v.sort_by_key(|r| (r.value, r.id));
        v
    }

    #[test]
    fn replay_matches_offline_scan_across_seeds() {
        for seed in 0..40u64 {
            let rows = random_rows(seed, 120, 4, if seed % 3 == 0 { 3 } else { 40 });
            let labels: Vec<u16> = match seed % 4 {
                0 => vec![0],
                1 => vec![0, 1],
                2 => vec![1, 2, 3],
                _ => vec![0, 1, 2, 3],
            };
            let lambda = [0, 1, 7, 50, 400][seed as usize % 5];
            let mut repair = CoverRepair::new(&labels, lambda);
            for r in slice_order(&rows) {
                repair.observe(&r);
            }
            assert_eq!(
                rendered(&repair),
                offline_scan(&rows, &labels, lambda),
                "seed {seed} lambda {lambda} labels {labels:?}"
            );
        }
    }

    #[test]
    fn incremental_appends_match_cold_solve_at_every_generation() {
        for seed in 100..130u64 {
            let rows = random_rows(seed, 90, 3, 25);
            let labels = vec![0u16, 2];
            let lambda = 30 + (seed as i64 % 4) * 13;
            let split = 30 + (seed as usize % 30);
            let mut repair = CoverRepair::new(&labels, lambda);
            for r in slice_order(&rows[..split]) {
                repair.observe(&r);
            }
            // Append the suffix one row at a time, in ingest order, and
            // demand byte-identity with a cold solve after every append.
            for g in split..rows.len() {
                repair.observe(&rows[g]);
                assert_eq!(
                    rendered(&repair),
                    offline_scan(&rows[..=g], &labels, lambda),
                    "seed {seed} generation {}",
                    g + 1
                );
            }
        }
    }

    #[test]
    fn equal_value_appends_are_order_invariant() {
        // Two rows with the same value arriving in either id order must
        // fold to the same state (the slice sorts by (value, id), ingest
        // does not).
        let base = vec![
            Record {
                id: 1,
                value: 0,
                labels: vec![0],
            },
            Record {
                id: 2,
                value: 40,
                labels: vec![0],
            },
        ];
        let tie_a = Record {
            id: 9,
            value: 100,
            labels: vec![0],
        };
        let tie_b = Record {
            id: 3,
            value: 100,
            labels: vec![0],
        };
        let mut fwd = CoverRepair::new(&[0], 10);
        let mut rev = CoverRepair::new(&[0], 10);
        for r in &base {
            fwd.observe(r);
            rev.observe(r);
        }
        fwd.observe(&tie_a);
        fwd.observe(&tie_b);
        rev.observe(&tie_b);
        rev.observe(&tie_a);
        assert_eq!(rendered(&fwd), rendered(&rev));
        let mut all = base;
        all.push(tie_b.clone());
        all.push(tie_a.clone());
        assert_eq!(rendered(&fwd), offline_scan(&all, &[0], 10));
    }

    #[test]
    fn rows_without_query_labels_are_ignored() {
        let mut repair = CoverRepair::new(&[0], 10);
        assert!(repair.observe(&Record {
            id: 1,
            value: 0,
            labels: vec![0, 5],
        }));
        assert!(!repair.observe(&Record {
            id: 2,
            value: 5,
            labels: vec![5],
        }));
        assert_eq!(repair.len(), 1);
        // Rendered labels are intersected: label 5 is dropped.
        assert_eq!(rendered(&repair), vec!["1\t0\t0"]);
    }

    #[test]
    fn saturating_extremes_match_offline_scan() {
        // Values at the i64 extremes: reach saturates in the solver and
        // overflows naive i64 math; both must agree.
        let rows = vec![
            Record {
                id: 1,
                value: i64::MIN,
                labels: vec![0],
            },
            Record {
                id: 2,
                value: i64::MAX - 1,
                labels: vec![0],
            },
            Record {
                id: 3,
                value: i64::MAX,
                labels: vec![0],
            },
        ];
        for lambda in [0, 1, i64::MAX] {
            let mut repair = CoverRepair::new(&[0], lambda);
            for r in &rows {
                repair.observe(r);
            }
            assert_eq!(
                rendered(&repair),
                offline_scan(&rows, &[0], lambda),
                "lambda {lambda}"
            );
        }
    }

    #[test]
    fn duplicate_query_labels_are_deduped() {
        let mut repair = CoverRepair::new(&[1, 0, 1, 0], 5);
        repair.observe(&Record {
            id: 1,
            value: 0,
            labels: vec![0, 1],
        });
        assert_eq!(repair.len(), 1);
        assert_eq!(rendered(&repair), vec!["1\t0\t0,1"]);
    }
}
