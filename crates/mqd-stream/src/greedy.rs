//! StreamGreedySC and StreamGreedySC+ (Section 5.2, delayed output).
//!
//! Let `P'` be the oldest post with an uncovered label occurrence. The
//! engine waits until `time(P') + tau`, gathers the window
//! `Z = {posts with time in [time(P'), time(P') + tau]}` from its buffer,
//! and runs greedy set cover over the *uncovered* occurrences of `Z`,
//! selecting posts from `Z` until:
//!
//! * **base variant**: every occurrence in `Z` is covered;
//! * **`+` variant**: `P'` itself is covered — the rest of the window keeps
//!   accumulating context for the next round (Section 5.2's
//!   StreamGreedySC+).
//!
//! Selected posts are emitted at the window deadline; their timestamps are
//! at least `time(P')`, so the delay constraint `<= tau` holds by
//! construction. Everything an emission covers — inside and beyond the
//! window — is pruned from the buffer.

use std::collections::VecDeque;

use mqd_core::{coverage, LabelId};
use mqd_setcover::PresenceFenwick;

use crate::engine::{Emission, EngineSnapshot, StreamContext, StreamEngine};

/// A buffered post with its still-uncovered labels.
#[derive(Clone, Debug)]
struct PendingPost {
    post: u32,
    uncovered: Vec<LabelId>,
}

/// StreamGreedySC / StreamGreedySC+ engine.
pub struct StreamGreedy {
    plus: bool,
    /// Uncovered posts, in arrival (= timestamp) order.
    buffer: VecDeque<PendingPost>,
    /// Emitted posts per label, kept sorted by post timestamp (greedy pick
    /// order inside a window is not time order, so inserts use binary
    /// search); the arrival-time coverage check scans a suffix of this.
    emitted_per_label: Vec<Vec<u32>>,
    /// Posts already emitted (dedup guard).
    emitted: Vec<bool>,
}

impl StreamGreedy {
    /// Base StreamGreedySC: each window round covers the whole window.
    pub fn new(num_labels: usize, num_posts: usize) -> Self {
        StreamGreedy {
            plus: false,
            buffer: VecDeque::new(),
            emitted_per_label: vec![Vec::new(); num_labels],
            emitted: vec![false; num_posts],
        }
    }

    /// StreamGreedySC+: each round stops as soon as the oldest uncovered
    /// post is covered.
    pub fn new_plus(num_labels: usize, num_posts: usize) -> Self {
        StreamGreedy {
            plus: true,
            ..Self::new(num_labels, num_posts)
        }
    }

    fn deadline(&self, ctx: &StreamContext<'_>) -> Option<i64> {
        self.buffer
            .front()
            .map(|p| ctx.inst.value(p.post).saturating_add(ctx.tau))
    }

    /// Whether an already-emitted post covers `a ∈ post`.
    fn covered_by_emitted(&self, ctx: &StreamContext<'_>, post: u32, a: LabelId) -> bool {
        let t = ctx.inst.value(post);
        let max_l = ctx.lambda.max_lambda();
        self.emitted_per_label[a.index()]
            .iter()
            .rev()
            .take_while(|&&z| ctx.inst.value(z) >= t.saturating_sub(max_l))
            .any(|&z| coverage::covers(ctx.inst, ctx.lambda, z, post, a))
    }

    /// Run one window round ending at `deadline`; returns emitted posts.
    ///
    /// Greedy set cover over the window's uncovered occurrences, with the
    /// window posts as candidate sets. Gains are counted with one
    /// [`PresenceFenwick`] per label over the window's uncovered-occurrence
    /// lists (`O(s log W)` per evaluation) and selection uses the
    /// lazy-evaluation heap — the same implicit-greedy machinery as the
    /// offline `solve_greedy_sc`, which keeps day-scale streams with large
    /// tau windows tractable. Ties break toward the earliest window post,
    /// matching the naive scan-max selection exactly.
    fn run_window(&mut self, ctx: &StreamContext<'_>, deadline: i64, out: &mut Vec<Emission>) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let inst = ctx.inst;
        // The window: buffered posts with timestamp <= deadline (the buffer
        // is timestamp-ordered and its front defines the deadline).
        let window_len = self
            .buffer
            .iter()
            .take_while(|p| inst.value(p.post) <= deadline)
            .count();
        if window_len == 0 {
            return;
        }

        let times: Vec<i64> = self
            .buffer
            .iter()
            .take(window_len)
            .map(|p| inst.value(p.post))
            .collect();
        // Per label: window positions whose occurrence of that label is
        // still uncovered, in time order.
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); inst.num_labels()];
        for (bi, p) in self.buffer.iter().take(window_len).enumerate() {
            for &a in &p.uncovered {
                lists[a.index()].push(bi as u32);
            }
        }
        let mut fens: Vec<PresenceFenwick> = lists
            .iter()
            .map(|l| PresenceFenwick::all_present(l.len()))
            .collect();
        let mut remaining: usize = lists.iter().map(|l| l.len()).sum();
        // lint:allow(panic-path): run_window is only entered when deadline() returned Some, which requires a non-empty buffer
        let mut front_remaining = self.buffer[0].uncovered.len();

        let list_range = |lists: &[Vec<u32>], a: usize, lo_t: i64, hi_t: i64| {
            let l = &lists[a];
            let lo = l.partition_point(|&bi| times[bi as usize] < lo_t);
            let hi = l.partition_point(|&bi| times[bi as usize] <= hi_t);
            lo..hi
        };
        let gain = |pos: usize, fens: &[PresenceFenwick]| -> u32 {
            let post = self.buffer[pos].post;
            let t = times[pos];
            let mut g = 0;
            for &a in inst.labels(post) {
                let lam = ctx.lambda.lambda(inst, post, a);
                if lam < 0 {
                    continue;
                }
                let r = list_range(
                    &lists,
                    a.index(),
                    t.saturating_sub(lam),
                    t.saturating_add(lam),
                );
                g += fens[a.index()].count_range(r.start, r.end);
            }
            g
        };

        let mut heap: BinaryHeap<(u32, Reverse<u32>)> = (0..window_len)
            .map(|pos| (gain(pos, &fens), Reverse(pos as u32)))
            .collect();
        let mut picked: Vec<u32> = Vec::new();
        loop {
            let done = if self.plus {
                front_remaining == 0
            } else {
                remaining == 0
            };
            if done {
                break;
            }
            let Some((stale, Reverse(pos))) = heap.pop() else {
                break;
            };
            if stale == 0 {
                break;
            }
            let fresh = gain(pos as usize, &fens);
            if fresh < stale {
                if fresh > 0 {
                    heap.push((fresh, Reverse(pos)));
                }
                continue;
            }
            let z = self.buffer[pos as usize].post;
            picked.push(z);
            // Mark everything z covers inside the window.
            let t = times[pos as usize];
            for &a in inst.labels(z) {
                let lam = ctx.lambda.lambda(inst, z, a);
                if lam < 0 {
                    continue;
                }
                let r = list_range(
                    &lists,
                    a.index(),
                    t.saturating_sub(lam),
                    t.saturating_add(lam),
                );
                for lp in r {
                    if fens[a.index()].clear(lp) {
                        remaining -= 1;
                        if lists[a.index()][lp] == 0 {
                            front_remaining -= 1;
                        }
                    }
                }
            }
        }

        // Emit picks and propagate coverage across the whole buffer (the
        // buffer is time-ordered, so each emission touches one time range).
        let buf_times: Vec<i64> = self.buffer.iter().map(|p| inst.value(p.post)).collect();
        for z in picked {
            if !std::mem::replace(&mut self.emitted[z as usize], true) {
                out.push(Emission {
                    post: z,
                    emit_time: deadline,
                });
            }
            let t = inst.value(z);
            for &a in inst.labels(z) {
                let list = &mut self.emitted_per_label[a.index()];
                let pos = list.partition_point(|&q| inst.value(q) <= t);
                list.insert(pos, z);
                let lam = ctx.lambda.lambda(inst, z, a);
                if lam < 0 {
                    continue;
                }
                let lo = buf_times.partition_point(|&bt| bt < t.saturating_sub(lam));
                let hi = buf_times.partition_point(|&bt| bt <= t.saturating_add(lam));
                for i in lo..hi {
                    self.buffer[i].uncovered.retain(|&b| b != a);
                }
            }
        }
        self.buffer.retain(|p| !p.uncovered.is_empty());
    }
}

impl StreamEngine for StreamGreedy {
    fn name(&self) -> &'static str {
        if self.plus {
            "StreamGreedySC+"
        } else {
            "StreamGreedySC"
        }
    }

    fn on_time(&mut self, ctx: &StreamContext<'_>, now: i64, out: &mut Vec<Emission>) {
        while let Some(d) = self.deadline(ctx) {
            if d > now {
                break;
            }
            self.run_window(ctx, d, out);
        }
    }

    fn on_arrival(&mut self, ctx: &StreamContext<'_>, post: u32, out: &mut Vec<Emission>) {
        let _ = out;
        let uncovered: Vec<LabelId> = ctx
            .inst
            .labels(post)
            .iter()
            .copied()
            .filter(|&a| !self.covered_by_emitted(ctx, post, a))
            .collect();
        if !uncovered.is_empty() {
            self.buffer.push_back(PendingPost { post, uncovered });
        }
    }

    fn snapshot(&self) -> Option<EngineSnapshot> {
        Some(EngineSnapshot {
            emitted_per_label: self.emitted_per_label.clone(),
            pending: self
                .buffer
                .iter()
                .map(|p| {
                    (
                        p.post,
                        p.uncovered.iter().map(|a| a.index() as u16).collect(),
                    )
                })
                .collect(),
            emitted: self
                .emitted
                .iter()
                .enumerate()
                .filter(|(_, &e)| e)
                .map(|(i, _)| i as u32)
                .collect(),
        })
    }

    fn restore(&mut self, ctx: &StreamContext<'_>, snap: &EngineSnapshot) -> bool {
        let _ = ctx;
        for list in &mut self.emitted_per_label {
            list.clear();
        }
        for (a, list) in snap.emitted_per_label.iter().enumerate() {
            if a < self.emitted_per_label.len() {
                self.emitted_per_label[a] = list.clone();
            }
        }
        self.emitted.iter_mut().for_each(|e| *e = false);
        for &p in &snap.emitted {
            if let Some(slot) = self.emitted.get_mut(p as usize) {
                *slot = true;
            }
        }
        self.buffer.clear();
        for (post, labels) in &snap.pending {
            self.buffer.push_back(PendingPost {
                post: *post,
                uncovered: labels.iter().map(|&a| LabelId(a)).collect(),
            });
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::run_stream;
    use mqd_core::{FixedLambda, Instance};

    fn two_label_instance() -> Instance {
        Instance::from_values(
            vec![
                (0, vec![0]),
                (2, vec![0, 1]),
                (4, vec![1]),
                (30, vec![0]),
                (31, vec![1]),
                (33, vec![0, 1]),
            ],
            2,
        )
        .unwrap()
    }

    #[test]
    fn produces_valid_cover_within_delay() {
        let inst = two_label_instance();
        let f = FixedLambda(5);
        for tau in [0i64, 2, 5, 10] {
            for plus in [false, true] {
                let mut eng = if plus {
                    StreamGreedy::new_plus(2, inst.len())
                } else {
                    StreamGreedy::new(2, inst.len())
                };
                let res = run_stream(&inst, &f, tau, &mut eng);
                assert!(
                    coverage::is_cover(&inst, &f, &res.selected),
                    "non-cover for tau={tau} plus={plus}: {:?}",
                    res.selected
                );
                assert!(res.max_delay <= tau.max(0));
            }
        }
    }

    #[test]
    fn window_greedy_prefers_overlapping_posts() {
        // Within one window the two-label post covers 4 occurrences; greedy
        // must pick it alone.
        let inst =
            Instance::from_values(vec![(0, vec![0]), (1, vec![0, 1]), (2, vec![1])], 2).unwrap();
        let f = FixedLambda(5);
        let mut eng = StreamGreedy::new(2, inst.len());
        let res = run_stream(&inst, &f, 5, &mut eng);
        assert_eq!(res.selected, vec![1]);
    }

    #[test]
    fn plus_defers_rest_of_window() {
        // Both variants still cover everything; the + variant may emit in
        // later rounds but never loses posts.
        let inst = two_label_instance();
        let f = FixedLambda(3);
        let mut eng = StreamGreedy::new_plus(2, inst.len());
        let res = run_stream(&inst, &f, 4, &mut eng);
        assert!(coverage::is_cover(&inst, &f, &res.selected));
    }

    #[test]
    fn arrivals_covered_by_past_emissions_are_dropped() {
        let inst = Instance::from_values(
            vec![(0, vec![0]), (1, vec![0]), (2, vec![0]), (3, vec![0])],
            1,
        )
        .unwrap();
        let f = FixedLambda(10);
        let mut eng = StreamGreedy::new(1, inst.len());
        let res = run_stream(&inst, &f, 1, &mut eng);
        assert!(coverage::is_cover(&inst, &f, &res.selected));
        assert_eq!(res.selected.len(), 1, "one emission covers the burst");
    }

    #[test]
    fn out_of_time_order_picks_still_cover_later_arrivals() {
        // Regression: inside one window greedy may pick a late post before
        // an early one; the emitted-post lists must stay time-sorted or the
        // arrival coverage check misses the late coverer and re-emits.
        // Window [0,100]: greedy picks p2@95 (gain 2) before p0/p1; the
        // arrival at t=110 is covered by p2 and must NOT be emitted.
        let inst = Instance::from_values(
            vec![(0, vec![0]), (5, vec![1]), (95, vec![0, 1]), (110, vec![0])],
            2,
        )
        .unwrap();
        let f = FixedLambda(30);
        let mut eng = StreamGreedy::new(2, inst.len());
        let res = run_stream(&inst, &f, 100, &mut eng);
        assert!(coverage::is_cover(&inst, &f, &res.selected));
        assert_eq!(
            res.selected,
            vec![0, 1, 2],
            "the t=110 arrival is covered by the t=95 emission"
        );
    }

    #[test]
    fn empty_stream() {
        let inst = Instance::from_values(Vec::<(i64, Vec<u16>)>::new(), 1).unwrap();
        let f = FixedLambda(1);
        let mut eng = StreamGreedy::new(1, 0);
        let res = run_stream(&inst, &f, 5, &mut eng);
        assert!(res.selected.is_empty());
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        let inst = two_label_instance();
        let f = FixedLambda(5);
        let tau = 4;
        let ctx = StreamContext::new(&inst, &f, tau);
        for plus in [false, true] {
            let mk = || {
                if plus {
                    StreamGreedy::new_plus(2, inst.len())
                } else {
                    StreamGreedy::new(2, inst.len())
                }
            };
            let mut base = mk();
            let full = run_stream(&inst, &f, tau, &mut base);
            for cut in 0..inst.len() {
                let mut eng = mk();
                let mut out = Vec::new();
                for p in 0..cut as u32 {
                    let t = inst.value(p);
                    eng.on_time(&ctx, t.saturating_sub(1), &mut out);
                    eng.on_arrival(&ctx, p, &mut out);
                }
                let snap = eng.snapshot().expect("greedy supports snapshots");
                let mut restored = mk();
                assert!(restored.restore(&ctx, &snap));
                for p in cut as u32..inst.len() as u32 {
                    let t = inst.value(p);
                    restored.on_time(&ctx, t.saturating_sub(1), &mut out);
                    restored.on_arrival(&ctx, p, &mut out);
                }
                restored.flush(&ctx, &mut out);
                assert_eq!(out, full.emissions, "plus={plus} cut={cut}");
            }
        }
    }
}
