//! Proof the oracle has teeth: mutate the coverage comparator from
//! `d <= lambda` to `d < lambda` behind the debug-only hook and the sweep
//! must fail — with a shrunk reproducer — via the verifier-differential
//! invariant (the library's `violations` now disagrees with the oracle's
//! independent model on every pair at distance exactly lambda).
//!
//! This test owns the process-global hook, so it lives alone in its own
//! integration-test binary (cargo gives each `tests/*.rs` file its own
//! process); nothing else can race it.

#![cfg(debug_assertions)]

use mqd_core::coverage::test_hooks;
use mqd_oracle::{run_oracle, OracleConfig, Profile};

/// RAII guard so a failing assertion cannot leave the mutation switched on
/// for some future test added to this binary.
struct Mutated;
impl Drop for Mutated {
    fn drop(&mut self) {
        test_hooks::set_strict_comparator(false);
    }
}

#[test]
fn flipped_comparator_is_caught_and_shrunk() {
    let dir = std::env::temp_dir().join(format!("mqd-oracle-mutation-{}", std::process::id()));
    let cfg = OracleConfig {
        seeds: 10,
        first_seed: 0,
        profile: Some(Profile::Uniform),
        report_dir: dir.clone(),
        write_reports: true,
    };

    // Sanity: the same sweep passes un-mutated.
    let mut log = Vec::new();
    let clean = run_oracle(&cfg, &mut log);
    assert!(
        clean.ok(),
        "sweep must pass before mutation:\n{}",
        String::from_utf8_lossy(&log)
    );

    let _guard = Mutated;
    test_hooks::set_strict_comparator(true);
    let mut log = Vec::new();
    let mutated = run_oracle(&cfg, &mut log);
    drop(_guard);

    assert!(
        !mutated.failures.is_empty(),
        "the mutated comparator went undetected over {} checks",
        mutated.checks
    );
    let f = &mutated.failures[0];
    assert_eq!(
        f.failure.invariant, "verifier-agreement",
        "expected the verifier differential to fire, got {}: {}",
        f.failure.invariant, f.failure.detail
    );
    // The shrunk repro exists and is tiny: the minimal disagreement is a
    // handful of posts, not the original instance.
    let path = f.repro_path.as_ref().expect("repro file written");
    assert!(path.exists(), "missing repro {}", path.display());
    assert!(
        f.shrunk_posts <= 4,
        "shrinker left {} posts in the repro",
        f.shrunk_posts
    );
    let _ = std::fs::remove_dir_all(&dir);
}
