//! A modest oracle sweep over every profile: the tier-1 guarantee that the
//! harness itself stays green. CI runs the full 200-seed matrix via
//! `mqdiv oracle`.

use mqd_oracle::{run_oracle, OracleConfig};

#[test]
fn all_profiles_pass_a_short_sweep() {
    let cfg = OracleConfig {
        seeds: 12,
        first_seed: 0,
        profile: None,
        write_reports: false,
        ..OracleConfig::default()
    };
    let mut log = Vec::new();
    let summary = run_oracle(&cfg, &mut log);
    assert!(
        summary.ok(),
        "oracle failures:\n{}",
        String::from_utf8_lossy(&log)
    );
    assert_eq!(summary.cases, 12 * 5);
    assert!(summary.checks > 1000, "only {} checks ran", summary.checks);
}
