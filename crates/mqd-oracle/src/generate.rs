//! Seeded instance generators: one family ("profile") per failure regime
//! the oracle hunts in.
//!
//! Every generated [`Case`] is fully described by `(profile, seed)`, so a
//! failure report containing those two values reproduces the exact input,
//! and the shrunk TSV is only a convenience on top.

use mqd_core::wire::fnv1a;
use mqd_core::Instance;
use mqd_datagen::{generate_burst_posts, Burst, BurstStreamConfig};
use mqd_rng::rngs::StdRng;
use mqd_rng::{RngExt, SeedableRng};

/// An instance family with a characteristic failure regime.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Profile {
    /// Uniform random values, at most 2 labels per post (`s <= 2`, so the
    /// full `|Scan| <= 2*|OPT|` form of Theorem 4 applies).
    Uniform,
    /// The datagen bursty workload: dense event clusters in a sparse
    /// background (Section 6's motivating density skew).
    Burst,
    /// Heavy label overlap (`s` up to 4): stresses the multi-label
    /// set-cover interactions and the `s`-factor bounds.
    Overlap,
    /// Adversarial boundaries: values near `i64::MIN`/`i64::MAX`, duplicate
    /// timestamps, `lambda = 0`, huge lambda, single-label floods.
    Boundary,
    /// The uniform-density grid on which Equation 2 provably degenerates to
    /// the fixed threshold: every per-pair variable lambda equals lambda0.
    Grid,
}

impl Profile {
    /// Every profile, in CI-matrix order.
    pub fn all() -> &'static [Profile] {
        &[
            Profile::Uniform,
            Profile::Burst,
            Profile::Overlap,
            Profile::Boundary,
            Profile::Grid,
        ]
    }

    /// CLI / report name.
    pub fn name(self) -> &'static str {
        match self {
            Profile::Uniform => "uniform",
            Profile::Burst => "burst",
            Profile::Overlap => "overlap",
            Profile::Boundary => "boundary",
            Profile::Grid => "grid",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(s: &str) -> Option<Profile> {
        Profile::all().iter().copied().find(|p| p.name() == s)
    }
}

/// One generated test input: posts plus the stream parameters the checks
/// run with. `items` is the canonical, TSV-writable form.
#[derive(Clone, Debug)]
pub struct Case {
    /// Which family produced this case.
    pub profile: Profile,
    /// The generation seed (`mqdiv oracle` reports it on failure).
    pub seed: u64,
    /// `(value, labels)` rows, in generation order.
    pub items: Vec<(i64, Vec<u16>)>,
    /// Declared label-universe size.
    pub num_labels: usize,
    /// Fixed diversity threshold for this case.
    pub lambda: i64,
    /// Streaming delay budget for this case.
    pub tau: i64,
}

impl Case {
    /// Builds the (sorted, deduplicated-label) instance.
    pub fn instance(&self) -> Instance {
        Instance::from_values(self.items.clone(), self.num_labels)
            .expect("generators only emit in-range labels")
    }

    /// Whether the case is small enough for the exact solvers.
    pub fn exact_sized(&self) -> bool {
        self.items.len() <= 16
    }
}

/// Decorrelates the user-facing seed across profiles so `--seeds N` walks a
/// different instance sequence in each family.
fn rng_for(profile: Profile, seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ fnv1a(profile.name().as_bytes()))
}

/// Generates the case for `(profile, seed)`.
pub fn generate(profile: Profile, seed: u64) -> Case {
    let mut rng = rng_for(profile, seed);
    let (items, num_labels, lambda) = match profile {
        Profile::Uniform => uniform(&mut rng),
        Profile::Burst => burst(seed, &mut rng),
        Profile::Overlap => overlap(&mut rng),
        Profile::Boundary => boundary(&mut rng),
        Profile::Grid => grid(&mut rng),
    };
    let tau = sample_tau(lambda, &mut rng);
    Case {
        profile,
        seed,
        items,
        num_labels,
        lambda,
        tau,
    }
}

/// Delay budgets worth exercising relative to lambda: instant, tighter than
/// lambda, equal (the StreamScan == Scan regime), and slack.
fn sample_tau(lambda: i64, rng: &mut StdRng) -> i64 {
    match rng.random_range(0..4u32) {
        0 => 0,
        1 => lambda / 2,
        2 => lambda,
        _ => lambda.saturating_mul(2).saturating_add(1),
    }
}

fn uniform(rng: &mut StdRng) -> (Vec<(i64, Vec<u16>)>, usize, i64) {
    // Alternate exact-sized and larger approx/streaming-sized cases.
    let n = if rng.random::<f64>() < 0.5 {
        rng.random_range(1..=14usize)
    } else {
        rng.random_range(40..=220usize)
    };
    let num_labels = rng.random_range(1..=3usize);
    let span = rng.random_range(50..=4000i64);
    let items = (0..n)
        .map(|_| {
            let v = rng.random_range(0..=span);
            let mut ls = vec![rng.random_range(0..num_labels) as u16];
            if num_labels > 1 && rng.random::<f64>() < 0.25 {
                ls.push(rng.random_range(0..num_labels) as u16);
            }
            (v, ls)
        })
        .collect();
    // lint:allow(overflow-arith): generator-bounded synthetic spans, far from i64 limits
    let lambda = rng.random_range(0..=span / 2 + 1);
    (items, num_labels, lambda)
}

fn burst(seed: u64, rng: &mut StdRng) -> (Vec<(i64, Vec<u16>)>, usize, i64) {
    let num_labels = rng.random_range(1..=3usize);
    let minute = 60_000i64;
    let cfg = BurstStreamConfig {
        num_labels,
        base_rate: 0.4 + rng.random::<f64>() * 1.2,
        duration_ms: rng.random_range(4..=10i64) * minute,
        bursts: vec![Burst {
            label: rng.random_range(0..num_labels) as u16,
            start_ms: rng.random_range(0..=2i64) * minute,
            duration_ms: rng.random_range(1..=3i64) * minute,
            intensity: 2.0 + rng.random::<f64>() * 8.0,
        }],
        seed,
    };
    let items: Vec<(i64, Vec<u16>)> = generate_burst_posts(&cfg)
        .iter()
        .map(|p| (p.value(), p.labels().iter().map(|a| a.0).collect()))
        .collect();
    // lint:allow(overflow-arith): generator-bounded synthetic spans, far from i64 limits
    let lambda = rng.random_range(0..=4 * minute);
    if items.is_empty() {
        // Rare empty stream at the lowest rates: degenerate but still a
        // legal case (everything must hold vacuously).
        return (items, num_labels, lambda);
    }
    (items, num_labels, lambda)
}

fn overlap(rng: &mut StdRng) -> (Vec<(i64, Vec<u16>)>, usize, i64) {
    let n = if rng.random::<f64>() < 0.5 {
        rng.random_range(1..=13usize)
    } else {
        rng.random_range(30..=150usize)
    };
    let num_labels = rng.random_range(2..=5usize);
    let span = rng.random_range(50..=2000i64);
    let items = (0..n)
        .map(|_| {
            let v = rng.random_range(0..=span);
            let k = rng.random_range(1..=num_labels.min(4));
            let ls: Vec<u16> = (0..k)
                .map(|_| rng.random_range(0..num_labels) as u16)
                .collect();
            (v, ls)
        })
        .collect();
    // lint:allow(overflow-arith): generator-bounded synthetic spans, far from i64 limits
    let lambda = rng.random_range(0..=span / 2 + 1);
    (items, num_labels, lambda)
}

fn boundary(rng: &mut StdRng) -> (Vec<(i64, Vec<u16>)>, usize, i64) {
    let num_labels = rng.random_range(1..=2usize);
    let lambda = match rng.random_range(0..4u32) {
        0 => 0,
        1 => 1,
        2 => rng.random_range(0..=1_000i64),
        _ => i64::MAX - rng.random_range(0..=2i64),
    };
    let n = rng.random_range(2..=12usize);
    let mut items = Vec::with_capacity(n);
    for _ in 0..n {
        let v = match rng.random_range(0..5u32) {
            // Near the bottom of the domain. i64::MIN itself is excluded:
            // |MIN| overflows even i64 negation in external consumers; the
            // instance contract is MIN+1 and up.
            0 => i64::MIN + 1 + rng.random_range(0..=3i64),
            // Near the top.
            1 => i64::MAX - rng.random_range(0..=3i64),
            // Duplicate-heavy midfield: ties on the diversity dimension.
            2 => rng.random_range(0..=2i64),
            // Around zero, signed.
            3 => rng.random_range(-5..=5i64),
            // Single-label flood at one value.
            _ => 7,
        };
        let ls = if rng.random::<f64>() < 0.8 {
            vec![0u16]
        } else {
            vec![rng.random_range(0..num_labels) as u16]
        };
        items.push((v, ls));
    }
    (items, num_labels, lambda)
}

/// The uniform-density family: `n` posts spaced exactly `2*n*k` apart, all
/// carrying all `l` labels, with `lambda0 = k*(n-1)`.
///
/// Every posting window `[t - lambda0, t + lambda0]` then contains exactly
/// one post (the spacing exceeds lambda0), and Equation 2's expected count
/// works out to exactly 1.0 — `span = (n-1)*2nk`, per-label rate
/// `n / span`, expectation `2*lambda0 * n / span = 1` — so the density
/// ratio is exactly 1, `e^0 = 1`, and every per-pair threshold rounds to
/// `lambda0` itself. On this family `VariableLambda::compute` must equal
/// `FixedLambda(lambda0)` pair-for-pair.
pub fn grid_case(n: usize, k: i64, num_labels: usize) -> (Vec<(i64, Vec<u16>)>, usize, i64) {
    assert!(n >= 2 && k >= 1 && num_labels >= 1);
    let all: Vec<u16> = (0..num_labels as u16).collect();
    let step = 2 * n as i64 * k;
    let items = (0..n).map(|i| (i as i64 * step, all.clone())).collect();
    (items, num_labels, k * (n as i64 - 1))
}

fn grid(rng: &mut StdRng) -> (Vec<(i64, Vec<u16>)>, usize, i64) {
    let n = rng.random_range(2..=20usize);
    let k = rng.random_range(1..=1000i64);
    let l = rng.random_range(1..=3usize);
    grid_case(n, k, l)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        for &p in Profile::all() {
            let a = generate(p, 12);
            let b = generate(p, 12);
            assert_eq!(a.items, b.items, "{}", p.name());
            assert_eq!(a.lambda, b.lambda);
            assert_eq!(a.tau, b.tau);
            let c = generate(p, 13);
            assert!(
                a.items != c.items || a.lambda != c.lambda || a.tau != c.tau,
                "{} seed 12 vs 13 collided",
                p.name()
            );
        }
    }

    #[test]
    fn profiles_round_trip_names() {
        for &p in Profile::all() {
            assert_eq!(Profile::from_name(p.name()), Some(p));
        }
        assert_eq!(Profile::from_name("nope"), None);
    }

    #[test]
    fn cases_build_instances() {
        for &p in Profile::all() {
            for seed in 0..10 {
                let c = generate(p, seed);
                let inst = c.instance();
                assert!(inst.len() <= c.items.len());
                assert!(c.lambda >= 0);
                assert!(c.tau >= 0);
            }
        }
    }
}
