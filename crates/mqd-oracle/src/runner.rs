//! The oracle driver: sweep `(profile, seed)` space, check every case,
//! shrink and persist failures.

use std::path::PathBuf;

use crate::generate::{generate, Profile};
use crate::invariants::{check_case_caught, Failure};
use crate::shrink::{shrink, write_repro};

/// What to sweep and where to put failure artifacts.
#[derive(Clone, Debug)]
pub struct OracleConfig {
    /// Seeds per profile (`--seeds`).
    pub seeds: u64,
    /// First seed (`--first-seed`), so a reported seed can be re-run alone.
    pub first_seed: u64,
    /// Profiles to sweep; `None` = all.
    pub profile: Option<Profile>,
    /// Where shrunk repros are written.
    pub report_dir: PathBuf,
    /// Whether to write repro files at all (tests turn this off).
    pub write_reports: bool,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            seeds: 50,
            first_seed: 0,
            profile: None,
            report_dir: PathBuf::from("reports/oracle"),
            write_reports: true,
        }
    }
}

/// One failed case, after shrinking.
#[derive(Clone, Debug)]
pub struct FailureReport {
    /// Profile the failing seed came from.
    pub profile: Profile,
    /// The failing seed.
    pub seed: u64,
    /// The violated invariant and its detail.
    pub failure: Failure,
    /// Post count of the shrunk reproducer.
    pub shrunk_posts: usize,
    /// Where the shrunk TSV was written (when reports are enabled).
    pub repro_path: Option<PathBuf>,
}

/// Sweep totals.
#[derive(Clone, Debug, Default)]
pub struct OracleSummary {
    /// Cases generated and checked.
    pub cases: u64,
    /// Individual invariant checks that passed.
    pub checks: u64,
    /// Failures, in discovery order.
    pub failures: Vec<FailureReport>,
}

impl OracleSummary {
    /// True when every case passed.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs the sweep. `log` receives one line per profile plus one per
/// failure (pass `std::io::sink()` for silence).
pub fn run_oracle(cfg: &OracleConfig, log: &mut dyn std::io::Write) -> OracleSummary {
    let profiles: Vec<Profile> = match cfg.profile {
        Some(p) => vec![p],
        None => Profile::all().to_vec(),
    };
    let mut summary = OracleSummary::default();
    for profile in profiles {
        let mut profile_checks = 0u64;
        let mut profile_failures = 0usize;
        for seed in cfg.first_seed..cfg.first_seed + cfg.seeds {
            let case = generate(profile, seed);
            summary.cases += 1;
            match check_case_caught(&case) {
                Ok(n) => {
                    summary.checks += n;
                    profile_checks += n;
                }
                Err(failure) => {
                    profile_failures += 1;
                    let shrunk = shrink(&case, &failure.invariant);
                    // Re-derive the (possibly sharper) detail from the
                    // shrunk case; fall back to the original failure.
                    let failure = match check_case_caught(&shrunk) {
                        Err(f) if f.invariant == failure.invariant => f,
                        _ => failure,
                    };
                    let repro_path = if cfg.write_reports {
                        match write_repro(&cfg.report_dir, &shrunk, &failure) {
                            Ok(p) => Some(p),
                            Err(e) => {
                                let _ = writeln!(log, "warning: cannot write repro: {e}");
                                None
                            }
                        }
                    } else {
                        None
                    };
                    let _ = writeln!(
                        log,
                        "FAIL {}/seed {}: {} — {} (shrunk to {} posts{})",
                        profile.name(),
                        seed,
                        failure.invariant,
                        failure.detail,
                        shrunk.items.len(),
                        repro_path
                            .as_deref()
                            .map(|p| format!(", repro {}", p.display()))
                            .unwrap_or_default(),
                    );
                    summary.failures.push(FailureReport {
                        profile,
                        seed,
                        failure,
                        shrunk_posts: shrunk.items.len(),
                        repro_path,
                    });
                }
            }
        }
        let _ = writeln!(
            log,
            "profile {:<9} {} seeds, {} checks, {} failure(s)",
            profile.name(),
            cfg.seeds,
            profile_checks,
            profile_failures
        );
    }
    summary
}
