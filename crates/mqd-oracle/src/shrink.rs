//! Greedy case minimization: when an invariant fails, shrink the instance
//! while the **same** invariant keeps failing, then write the minimal
//! reproducer to `reports/oracle/`.
//!
//! The strategy is classic ddmin-flavoured greedy:
//!
//! 1. remove chunks of posts (halves, quarters, ..., single posts),
//! 2. halve `lambda` and `tau` toward 0,
//! 3. pull values toward 0 (`v -> v / 2`), which turns `i64::MIN`-adjacent
//!    monsters into small, readable timestamps whenever smallness is not
//!    what triggers the bug.
//!
//! Each candidate is accepted only if [`check_case_caught`] still fails
//! with the original invariant name, so the written repro provably
//! reproduces the reported failure, not some other one uncovered along the
//! way.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::generate::Case;
use crate::invariants::{check_case_caught, Failure};

/// Keeps `case.num_labels` consistent after row removal (permutation
/// metamorphs index labels by `num_labels - 1`, so a stale universe size
/// would change which invariant fires).
fn renumber(case: &mut Case) {
    let max = case
        .items
        .iter()
        .flat_map(|(_, ls)| ls.iter().copied())
        .max();
    case.num_labels = max.map_or(0, |m| m as usize + 1);
}

fn still_fails(case: &Case, invariant: &str) -> bool {
    matches!(check_case_caught(case), Err(f) if f.invariant == invariant)
}

/// Shrinks `case` while `invariant` keeps failing. Bounded work: each pass
/// is linear in the case size and the loop stops at a fixed point.
pub fn shrink(case: &Case, invariant: &str) -> Case {
    let mut best = case.clone();

    // Pass 1: chunked row removal.
    let mut chunk = (best.items.len() / 2).max(1);
    while chunk >= 1 {
        let mut i = 0;
        while i < best.items.len() {
            let mut cand = best.clone();
            let end = (i + chunk).min(cand.items.len());
            cand.items.drain(i..end);
            renumber(&mut cand);
            if !cand.items.is_empty() && still_fails(&cand, invariant) {
                best = cand; // do not advance: the next chunk slid into i
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }

    // Pass 2: shrink the thresholds.
    for _ in 0..64 {
        let mut cand = best.clone();
        cand.lambda /= 2;
        cand.tau /= 2;
        if (cand.lambda, cand.tau) != (best.lambda, best.tau) && still_fails(&cand, invariant) {
            best = cand;
        } else {
            break;
        }
    }

    // Pass 3: pull values toward 0.
    for _ in 0..64 {
        let mut cand = best.clone();
        for (v, _) in &mut cand.items {
            *v /= 2;
        }
        if cand.items != best.items && still_fails(&cand, invariant) {
            best = cand;
        } else {
            break;
        }
    }

    best
}

/// Writes the shrunk reproducer: a labeled TSV (`id \t value \t labels`,
/// the `mqdiv` interchange format) plus a `.meta` sidecar with the seed,
/// profile, parameters, and failure text. Returns the TSV path.
pub fn write_repro(dir: &Path, case: &Case, failure: &Failure) -> std::io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let stem = format!(
        "{}-seed{}-{}",
        case.profile.name(),
        case.seed,
        failure.invariant
    );
    let tsv_path = dir.join(format!("{stem}.tsv"));
    let mut tsv = fs::File::create(&tsv_path)?;
    for (id, (v, ls)) in case.items.iter().enumerate() {
        let labels = ls
            .iter()
            .map(|l| l.to_string())
            .collect::<Vec<_>>()
            .join(",");
        writeln!(tsv, "{id}\t{v}\t{labels}")?;
    }
    let mut meta = fs::File::create(dir.join(format!("{stem}.meta")))?;
    writeln!(meta, "profile: {}", case.profile.name())?;
    writeln!(meta, "seed: {}", case.seed)?;
    writeln!(meta, "num_labels: {}", case.num_labels)?;
    writeln!(meta, "lambda: {}", case.lambda)?;
    writeln!(meta, "tau: {}", case.tau)?;
    writeln!(meta, "invariant: {}", failure.invariant)?;
    writeln!(meta, "detail: {}", failure.detail)?;
    writeln!(
        meta,
        "repro: mqdiv oracle --profile {} --seeds 1 --first-seed {}",
        case.profile.name(),
        case.seed
    )?;
    Ok(tsv_path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::Profile;

    #[test]
    fn renumber_tracks_max_label() {
        let mut c = Case {
            profile: Profile::Uniform,
            seed: 0,
            items: vec![(0, vec![0]), (5, vec![3])],
            num_labels: 9,
            lambda: 1,
            tau: 0,
        };
        renumber(&mut c);
        assert_eq!(c.num_labels, 4);
        c.items.pop();
        renumber(&mut c);
        assert_eq!(c.num_labels, 1);
    }
}
