//! Metamorphic relations: input transformations under which the optimal
//! cover size (and for some transforms, the exact solver output) is
//! provably invariant with a **fixed** lambda.
//!
//! | Transform | Why invariant | What is checked |
//! |-----------|---------------|-----------------|
//! | translate by `c` | coverage depends only on value differences | every solver's selection is bit-identical; `\|Brute\|` unchanged |
//! | reflect (`v -> -v`) | `\|.\|` is symmetric | `\|Brute\|` unchanged; outputs still cover |
//! | permute labels | labels are interchangeable names | `\|Brute\|` unchanged; GreedySC and Scan selections identical |
//! | duplicate a post | a clone is covered by whatever covers the original, and never needed over it | `\|Brute\|` unchanged |
//! | self-concat, gap `> 2*lambda` | the halves cannot interact | `\|Brute\|` doubles exactly |
//!
//! None of these hold for the variable lambda (duplication and
//! concatenation change densities, reflection changes window asymmetries),
//! which is itself covered by the grid profile's degeneration invariant.

use mqd_core::algorithms::{
    solve_brute, solve_greedy_sc_threads, solve_scan, solve_scan_plus, LabelOrder,
};
use mqd_core::FixedLambda;

use crate::generate::Case;
use crate::invariants::Failure;
use crate::reference::ref_violations;

/// The transform set, for reports.
pub const TRANSFORMS: &[&str] = &[
    "translate",
    "reflect",
    "permute-labels",
    "duplicate-post",
    "self-concat",
];

/// Translates every value by `c`, or `None` when that would leave the
/// supported domain (`i64::MIN` is reserved; see the instance contract).
pub fn translate(case: &Case, c: i64) -> Option<Case> {
    let mut out = case.clone();
    for (v, _) in &mut out.items {
        let shifted = *v as i128 + c as i128;
        if shifted <= i64::MIN as i128 || shifted > i64::MAX as i128 {
            return None;
        }
        *v = shifted as i64;
    }
    Some(out)
}

/// Mirrors every value. `i64::MIN` has no negation; generators never emit
/// it, but a shrunk case is re-checked here anyway.
pub fn reflect(case: &Case) -> Option<Case> {
    let mut out = case.clone();
    for (v, _) in &mut out.items {
        if *v == i64::MIN {
            return None;
        }
        *v = -*v;
    }
    Some(out)
}

/// Renames label `a` to `num_labels - 1 - a` (an involution, so any
/// permutation bug shows up without tracking the mapping).
pub fn permute_labels(case: &Case) -> Case {
    let mut out = case.clone();
    let last = out.num_labels.saturating_sub(1) as u16;
    for (_, ls) in &mut out.items {
        for l in ls {
            *l = last - *l;
        }
    }
    out
}

/// Appends an exact copy of the `idx`-th post.
pub fn duplicate_post(case: &Case, idx: usize) -> Case {
    let mut out = case.clone();
    out.items.push(out.items[idx].clone());
    out
}

/// Concatenates the case with a copy of itself shifted past `2*lambda`, so
/// the halves are independent sub-instances.
pub fn self_concat(case: &Case) -> Option<Case> {
    let min = case.items.iter().map(|(v, _)| *v).min()?;
    let max = case.items.iter().map(|(v, _)| *v).max()?;
    // Shift so the second copy starts 2*lambda + 1 past the first's end.
    let shift = (max as i128 - min as i128) + 2 * case.lambda as i128 + 1;
    let mut out = case.clone();
    for (v, ls) in case.items.iter() {
        let shifted = *v as i128 + shift;
        if shifted > i64::MAX as i128 {
            return None;
        }
        out.items.push((shifted as i64, ls.clone()));
    }
    Some(out)
}

fn brute_size(case: &Case) -> Result<usize, Failure> {
    let inst = case.instance();
    solve_brute(&inst, &FixedLambda(case.lambda), None)
        .map(|s| s.size())
        .map_err(|e| {
            Failure::new_pub(
                "meta-brute-runs",
                format!("solve_brute failed on transformed case: {e}"),
            )
        })
}

/// Checks that a transformed case's solver outputs still cover it.
fn outputs_cover(case: &Case, tag: &str, checks: &mut u64) -> Result<(), Failure> {
    let inst = case.instance();
    let fixed = FixedLambda(case.lambda);
    for sol in [
        solve_greedy_sc_threads(1, &inst, &fixed),
        solve_scan(&inst, &fixed),
        solve_scan_plus(&inst, &fixed, LabelOrder::Input),
    ] {
        *checks += 1;
        let v = ref_violations(&inst, &fixed, &sol.selected);
        if !v.is_empty() {
            return Err(Failure::new_pub(
                "meta-outputs-cover",
                format!(
                    "{tag}: {} output {:?} leaves {v:?} uncovered",
                    sol.algorithm, sol.selected
                ),
            ));
        }
    }
    Ok(())
}

/// Runs every metamorphic relation against an exact-sized case. Returns the
/// number of checks performed.
pub fn check(case: &Case) -> Result<u64, Failure> {
    if case.items.is_empty() || !case.exact_sized() {
        return Ok(0);
    }
    let mut checks = 0u64;
    let inst = case.instance();
    let fixed = FixedLambda(case.lambda);
    let base_brute = brute_size(case)?;
    let base_greedy = solve_greedy_sc_threads(1, &inst, &fixed);
    let base_scan = solve_scan(&inst, &fixed);
    let base_plus = solve_scan_plus(&inst, &fixed, LabelOrder::Input);

    // Translation: indices are unchanged, so selections must be identical.
    for c in [-7i64, 13, 1 << 40] {
        let Some(t) = translate(case, c) else {
            continue;
        };
        let ti = t.instance();
        for (who, base) in [
            ("GreedySC", &base_greedy),
            ("Scan", &base_scan),
            ("Scan+", &base_plus),
        ] {
            let got = match who {
                "GreedySC" => solve_greedy_sc_threads(1, &ti, &fixed),
                "Scan" => solve_scan(&ti, &fixed),
                _ => solve_scan_plus(&ti, &fixed, LabelOrder::Input),
            };
            checks += 1;
            if got.selected != base.selected {
                return Err(Failure::new_pub(
                    "meta-translate-selections",
                    format!(
                        "translating by {c} changed {who}: {:?} -> {:?}",
                        base.selected, got.selected
                    ),
                ));
            }
        }
        checks += 1;
        let tb = brute_size(&t)?;
        if tb != base_brute {
            return Err(Failure::new_pub(
                "meta-translate-opt",
                format!("translating by {c} changed |Brute|: {base_brute} -> {tb}"),
            ));
        }
    }

    // Reflection.
    if let Some(r) = reflect(case) {
        checks += 1;
        let rb = brute_size(&r)?;
        if rb != base_brute {
            return Err(Failure::new_pub(
                "meta-reflect-opt",
                format!("reflection changed |Brute|: {base_brute} -> {rb}"),
            ));
        }
        outputs_cover(&r, "reflect", &mut checks)?;
    }

    // Label permutation.
    let p = permute_labels(case);
    {
        let pi = p.instance();
        checks += 1;
        let pb = brute_size(&p)?;
        if pb != base_brute {
            return Err(Failure::new_pub(
                "meta-permute-opt",
                format!("label permutation changed |Brute|: {base_brute} -> {pb}"),
            ));
        }
        // Greedy gains and tie-breaks see only pair structure; Scan unions
        // per-label optima. Both must select the same posts.
        for (who, base, got) in [
            (
                "GreedySC",
                &base_greedy.selected,
                solve_greedy_sc_threads(1, &pi, &fixed).selected,
            ),
            (
                "Scan",
                &base_scan.selected,
                solve_scan(&pi, &fixed).selected,
            ),
        ] {
            checks += 1;
            if &got != base {
                return Err(Failure::new_pub(
                    "meta-permute-selections",
                    format!("label permutation changed {who}: {base:?} -> {got:?}"),
                ));
            }
        }
    }

    // Post duplication: a clone changes nothing about the optimal size.
    let idx = (case.seed as usize) % case.items.len();
    let d = duplicate_post(case, idx);
    checks += 1;
    let db = brute_size(&d)?;
    if db != base_brute {
        return Err(Failure::new_pub(
            "meta-duplicate-opt",
            format!("duplicating post {idx} changed |Brute|: {base_brute} -> {db}"),
        ));
    }

    // Self-concatenation with a dead gap: the optimum doubles exactly.
    if case.items.len() * 2 <= 16 {
        if let Some(cc) = self_concat(case) {
            checks += 1;
            let cb = brute_size(&cc)?;
            if cb != 2 * base_brute {
                return Err(Failure::new_pub(
                    "meta-concat-opt",
                    format!("self-concat past 2*lambda: |Brute| = {cb} != 2 * {base_brute}"),
                ));
            }
            outputs_cover(&cc, "self-concat", &mut checks)?;
        }
    }

    Ok(checks)
}
