//! The oracle's independent model of Definitions 1–2: a deliberately naive
//! re-implementation of the coverage semantics, sharing **no code** with
//! `mqd_core::coverage`.
//!
//! Everything here is quadratic, windowless, and computed in `i128`. That
//! is the point: the production verifier prunes candidates with
//! `max_lambda` windows and saturating endpoint arithmetic, so a bug in
//! that machinery (or a mutated comparator) shows up as a disagreement
//! with this model rather than as two implementations failing identically.

use mqd_core::{Instance, LabelId, LambdaProvider};

/// Whether `coverer` lambda-covers the occurrence of label `a` in
/// `covered`, straight from Definition 1: both posts carry `a` and
/// `|F(P_i) - F(P_j)| <= lambda_a(P_j)`, evaluated in `i128`.
pub fn ref_covers<L: LambdaProvider + ?Sized>(
    inst: &Instance,
    lp: &L,
    coverer: u32,
    covered: u32,
    a: LabelId,
) -> bool {
    let carries = |p: u32| inst.labels(p).contains(&a);
    if !carries(coverer) || !carries(covered) {
        return false;
    }
    let d = (inst.value(coverer) as i128 - inst.value(covered) as i128).abs();
    d <= lp.lambda(inst, coverer, a) as i128
}

/// Every uncovered `(post, label)` occurrence under `selected`, by brute
/// force over all candidate coverers (no windows, no pruning). Ordered
/// label-major then posting order — the same order `coverage::violations`
/// reports, so the two are directly comparable.
pub fn ref_violations<L: LambdaProvider + ?Sized>(
    inst: &Instance,
    lp: &L,
    selected: &[u32],
) -> Vec<(u32, LabelId)> {
    let mut sel: Vec<u32> = selected.to_vec();
    sel.sort_unstable();
    sel.dedup();
    let mut out = Vec::new();
    for a_idx in 0..inst.num_labels() {
        let a = LabelId(a_idx as u16);
        for &i in inst.postings(a) {
            if !sel.iter().any(|&z| ref_covers(inst, lp, z, i, a)) {
                out.push((i, a));
            }
        }
    }
    out
}

/// Whether `selected` is a lambda-cover under the reference model.
pub fn ref_is_cover<L: LambdaProvider + ?Sized>(inst: &Instance, lp: &L, selected: &[u32]) -> bool {
    ref_violations(inst, lp, selected).is_empty()
}

/// The exact minimum number of posts needed to cover every occurrence of
/// label `a` **in isolation** (the single-label subproblem Scan solves per
/// label). Each candidate `z ∈ LP(a)` covers the value interval
/// `[t_z - lambda_a(z), t_z + lambda_a(z)]`; covering all points of
/// `LP(a)` with fewest intervals is the classic greedy: repeatedly take
/// the leftmost uncovered point and, among intervals containing it, the
/// one reaching furthest right. All interval arithmetic in `i128`.
///
/// Two independent theorem bounds fall out of these per-label optima:
/// `|OPT| >= max_a opt_a` (a global cover restricted to `a` covers `a`)
/// and `|OPT| <= sum_a opt_a` (the union of per-label optima is a cover).
pub fn ref_label_optimum<L: LambdaProvider + ?Sized>(inst: &Instance, lp: &L, a: LabelId) -> usize {
    let points: Vec<i128> = inst
        .postings(a)
        .iter()
        .map(|&i| inst.value(i) as i128)
        .collect();
    // Candidate intervals, sorted by left endpoint.
    let mut ivals: Vec<(i128, i128)> = inst
        .postings(a)
        .iter()
        .filter_map(|&z| {
            let lam = lp.lambda(inst, z, a) as i128;
            if lam < 0 {
                return None; // sentinel: never covers
            }
            let t = inst.value(z) as i128;
            Some((t - lam, t + lam))
        })
        .collect();
    ivals.sort_unstable();

    let mut picks = 0usize;
    let mut idx = 0usize; // next interval whose left end we have not passed
    let mut best_reach = i128::MIN;
    // All points <= this are covered; i64 values always exceed i128::MIN,
    // so the first point is never "already covered".
    let mut covered_to = i128::MIN;
    for &p in &points {
        if p <= covered_to {
            continue;
        }
        // Every interval starting at or before p is a candidate; keep the
        // furthest reach seen so far (reaches only grow relevant as p
        // advances because intervals are sorted by left end).
        while idx < ivals.len() && ivals[idx].0 <= p {
            best_reach = best_reach.max(ivals[idx].1);
            idx += 1;
        }
        // Every point is itself the center of an interval (a post covers
        // itself when lambda >= 0), so best_reach >= p always holds here
        // unless every interval is the -1 sentinel — impossible for posts
        // in LP(a). Guard anyway so a broken provider surfaces as a count
        // mismatch, not a panic.
        if best_reach < p {
            picks += 1; // uncoverable point: count it and move on
            covered_to = p;
            continue;
        }
        picks += 1;
        covered_to = best_reach;
    }
    picks
}

/// Per-label optima for every label.
pub fn ref_label_optima<L: LambdaProvider + ?Sized>(inst: &Instance, lp: &L) -> Vec<usize> {
    (0..inst.num_labels() as u16)
        .map(|a| ref_label_optimum(inst, lp, LabelId(a)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqd_core::FixedLambda;

    fn figure2() -> Instance {
        Instance::from_values(
            vec![(0, vec![0]), (10, vec![0]), (20, vec![0, 1]), (30, vec![1])],
            2,
        )
        .unwrap()
    }

    #[test]
    fn matches_paper_example() {
        let inst = figure2();
        let f = FixedLambda(10);
        assert!(ref_is_cover(&inst, &f, &[1, 3]));
        assert_eq!(ref_violations(&inst, &f, &[1]).len(), 2);
        // One pick covers all a-occurrences (P2 at t=10 reaches 0..=20);
        // one pick covers c.
        assert_eq!(ref_label_optimum(&inst, &f, LabelId(0)), 1);
        assert_eq!(ref_label_optimum(&inst, &f, LabelId(1)), 1);
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let inst =
            Instance::from_values(vec![(i64::MIN + 1, vec![0]), (i64::MAX, vec![0])], 1).unwrap();
        let f = FixedLambda(i64::MAX);
        // The true gap exceeds i64::MAX, so even lambda = i64::MAX cannot
        // bridge it.
        assert!(!ref_is_cover(&inst, &f, &[0]));
        assert!(ref_is_cover(&inst, &f, &[0, 1]));
        assert_eq!(ref_label_optimum(&inst, &f, LabelId(0)), 2);
    }

    #[test]
    fn label_optimum_zero_lambda_counts_distinct_values() {
        let inst = Instance::from_values(
            vec![(5, vec![0]), (5, vec![0]), (6, vec![0]), (9, vec![0])],
            1,
        )
        .unwrap();
        assert_eq!(ref_label_optimum(&inst, &FixedLambda(0), LabelId(0)), 3);
    }
}
