//! Differential + metamorphic correctness oracle for the MQDP solvers.
//!
//! The repo ships five offline solvers, a streaming family, a batched
//! multi-user solver, and a checkpointing supervisor — all claiming the
//! same coverage semantics (Definitions 1–2 of the EDBT 2014 paper) and
//! the theorem bounds of Sections 4–6. This crate machine-checks those
//! claims against each other and against an independent model:
//!
//! * [`generate`] — seeded instance families (profiles), including
//!   adversarial boundary cases;
//! * [`reference`] — a naive, windowless, `i128` re-implementation of the
//!   coverage semantics that shares no code with `mqd_core::coverage`;
//! * [`invariants`] — the executable theorems (see the table there);
//! * [`metamorphic`] — input transformations with provably invariant
//!   optima;
//! * [`shrink`] — greedy minimization of failing cases into `.tsv` repros;
//! * [`runner`] — the `(profile, seed)` sweep behind `mqdiv oracle`.
//!
//! The harness's teeth are proven by a mutation smoke test: flipping the
//! coverage comparator (`<=` to `<`) behind the debug-only hook
//! `mqd_core::coverage::test_hooks` must make the sweep fail with a
//! shrunk reproducer.

#![warn(missing_docs)]

pub mod generate;
pub mod invariants;
pub mod metamorphic;
pub mod reference;
pub mod runner;
pub mod shrink;

pub use generate::{generate, Case, Profile};
pub use invariants::{check_case, check_case_caught, Failure};
pub use runner::{run_oracle, FailureReport, OracleConfig, OracleSummary};
