//! The executable theorems: every invariant the paper (and this repo's
//! design docs) promise, checked against one generated [`Case`].
//!
//! | # | Invariant | Source |
//! |---|-----------|--------|
//! | 1 | library `violations` == reference model, on every selection | Def. 2 |
//! | 2 | every solver output is a cover (reference-verified) | Def. 2 |
//! | 3 | all GreedySC variants are byte-identical | PR 1 contract |
//! | 4 | `\|OPT\| == \|Brute\|` | Thm. 2 (OPT exact) |
//! | 5 | `max_a opt_a <= \|Brute\| <= sum_a opt_a` | set-cover structure |
//! | 6 | `\|Scan\| <= s * \|OPT\|`; `\|Scan\|, \|Scan+\| <= sum_a opt_a` | Thm. 4 |
//! | 7 | `\|GreedySC\| <= (ln m + 1) * \|OPT\|` | Thm. 3 |
//! | 8 | streaming emission delay `<= tau`; output is a cover | Problem 2 |
//! | 9 | `StreamScan(tau >= lambda)` == offline Scan | §5.1 |
//! | 10 | batch multi-user == sequential; all-labels user == GreedySC | PR 1 |
//! | 11 | checkpoint kill/restore == uninterrupted run | PR 2 |
//! | 12 | variable lambda == fixed lambda on the uniform-density grid | Eq. 2 |
//! | 13 | loopback-served `QUERY` answers == offline solver, byte-identical | PR 4 |
//! | 15 | repaired / stale-served cached covers == cold solve at their watermark generation | PR 6 |
//! | 16 | router-fronted 2-shard cluster == single node, byte-identical (QUERY mix, STATS core, relayed SUBSCRIBE) | PR 8 |
//!
//! (#14 stays unassigned: it was reserved for the cluster-agreement check,
//! which landed as #16 once the scale-out design added the STATS and
//! SUBSCRIBE legs.)
//!
//! Checks 1 and 5–6 are the differential core: they compare the library
//! against [`crate::reference`], an independent quadratic model, so a
//! shared bug cannot self-certify.

use mqd_core::algorithms::{
    solve_brute, solve_greedy_sc, solve_greedy_sc_naive, solve_greedy_sc_scan_max,
    solve_greedy_sc_threads, solve_opt, solve_scan, solve_scan_plus, LabelOrder, OptConfig,
};
use mqd_core::record::Record;
use mqd_core::{coverage, FixedLambda, Instance, LambdaProvider, MqdError, VariableLambda};
use mqd_rng::rngs::StdRng;
use mqd_rng::{RngExt, SeedableRng};
use mqd_stream::{
    encode_checkpoint, resume_supervised, run_stream, solve_batch_users_threads, BatchUser,
    FaultPlan, InstantScan, ShardEngineKind, StreamEngine, StreamGreedy, StreamScan, SupervisedRun,
    SupervisorConfig,
};

use crate::generate::{Case, Profile};
use crate::reference::{ref_label_optima, ref_violations};

/// A violated invariant, with enough context to reproduce and triage.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Stable invariant name (`verifier-agreement`, `opt-equals-brute`, ...).
    pub invariant: String,
    /// Human-readable specifics (sizes, selections, the disagreeing pair).
    pub detail: String,
}

impl Failure {
    /// Builds a failure record.
    pub fn new_pub(invariant: &str, detail: String) -> Self {
        Failure {
            invariant: invariant.to_string(),
            detail,
        }
    }

    fn new(invariant: &str, detail: String) -> Self {
        Failure::new_pub(invariant, detail)
    }
}

/// Runs every applicable invariant against the case. Returns the number of
/// individual checks performed, or the first failure.
pub fn check_case(case: &Case) -> Result<u64, Failure> {
    let mut k = Checker { checks: 0 };
    k.run(case)?;
    Ok(k.checks)
}

/// [`check_case`] with panics converted into a `no-panic` failure, so a
/// debug-overflow or solver panic is reported (and shrunk) like any other
/// invariant violation.
pub fn check_case_caught(case: &Case) -> Result<u64, Failure> {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check_case(case)));
    match result {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic payload>");
            Err(Failure::new("no-panic", format!("panicked: {msg}")))
        }
    }
}

struct Checker {
    checks: u64,
}

impl Checker {
    fn ensure(
        &mut self,
        cond: bool,
        invariant: &str,
        detail: impl FnOnce() -> String,
    ) -> Result<(), Failure> {
        self.checks += 1;
        if cond {
            Ok(())
        } else {
            Err(Failure::new(invariant, detail()))
        }
    }

    fn run(&mut self, case: &Case) -> Result<(), Failure> {
        let inst = case.instance();
        let fixed = FixedLambda(case.lambda);

        self.offline(case, &inst, &fixed)?;
        self.variable(case, &inst)?;
        self.streaming(case, &inst, &fixed)?;
        self.batch(case, &inst)?;
        self.checkpoint(case, &inst)?;
        self.serving(case)?;
        self.repairing(case)?;
        self.clustered(case)?;
        self.checks += crate::metamorphic::check(case)?;
        Ok(())
    }

    /// Invariant 1: the production verifier and the oracle's independent
    /// model must name exactly the same uncovered occurrences.
    fn verifier_agreement<L: LambdaProvider + Sync + ?Sized>(
        &mut self,
        inst: &Instance,
        lp: &L,
        sel: &[u32],
        ctx: &str,
    ) -> Result<(), Failure> {
        let lib: Vec<(u32, u16)> = coverage::violations(inst, lp, sel)
            .iter()
            .map(|v| (v.post, v.label.0))
            .collect();
        let model: Vec<(u32, u16)> = ref_violations(inst, lp, sel)
            .iter()
            .map(|&(p, a)| (p, a.0))
            .collect();
        self.ensure(lib == model, "verifier-agreement", || {
            format!(
                "{ctx}: library violations {lib:?} != reference model {model:?} \
                 for selection {sel:?}"
            )
        })
    }

    /// Invariant 2: a solver output must be a cover under the reference.
    fn is_ref_cover<L: LambdaProvider + ?Sized>(
        &mut self,
        inst: &Instance,
        lp: &L,
        sel: &[u32],
        who: &str,
    ) -> Result<(), Failure> {
        let v = ref_violations(inst, lp, sel);
        self.ensure(v.is_empty(), "solver-output-covers", || {
            format!("{who} output {sel:?} leaves uncovered occurrences {v:?}")
        })
    }

    fn offline(
        &mut self,
        case: &Case,
        inst: &Instance,
        fixed: &FixedLambda,
    ) -> Result<(), Failure> {
        let optima = ref_label_optima(inst, fixed);
        let sum_opt: usize = optima.iter().sum();
        let max_opt: usize = optima.iter().copied().max().unwrap_or(0);
        let s = inst.max_labels_per_post().max(1);

        // Greedy family: the lazy heap, the scan-max variant, the naive
        // reference, and every thread count are one algorithm.
        let greedy = solve_greedy_sc_threads(1, inst, fixed);
        for (name, other) in [
            ("greedy-threads-4", solve_greedy_sc_threads(4, inst, fixed)),
            ("greedy-scan-max", solve_greedy_sc_scan_max(inst, fixed)),
            ("greedy-naive", solve_greedy_sc_naive(inst, fixed)),
        ] {
            self.ensure(
                other.selected == greedy.selected,
                "greedy-variants-agree",
                || {
                    format!(
                        "{name} selected {:?} but reference greedy selected {:?}",
                        other.selected, greedy.selected
                    )
                },
            )?;
        }

        let scan = solve_scan(inst, fixed);
        let orders = [
            LabelOrder::Input,
            LabelOrder::DensestFirst,
            LabelOrder::SparsestFirst,
        ];
        let pluses: Vec<_> = orders
            .iter()
            .map(|&o| solve_scan_plus(inst, fixed, o))
            .collect();

        let brute = if case.exact_sized() {
            match solve_brute(inst, fixed, None) {
                Ok(sol) => Some(sol),
                Err(e) => {
                    return Err(Failure::new(
                        "brute-runs-on-small-instances",
                        format!("solve_brute failed on {} posts: {e}", inst.len()),
                    ))
                }
            }
        } else {
            None
        };
        let opt = if inst.len() <= 64 {
            match solve_opt(inst, case.lambda, &OptConfig::default()) {
                Ok(sol) => Some(sol),
                Err(MqdError::OptBudgetExceeded { .. }) => None, // declared out of scope
                Err(e) => {
                    return Err(Failure::new(
                        "opt-runs-or-declines",
                        format!("solve_opt failed unexpectedly: {e}"),
                    ))
                }
            }
        } else {
            None
        };

        // Invariants 1 + 2 on every produced solution.
        let mut outputs: Vec<(&str, &[u32])> =
            vec![("GreedySC", &greedy.selected), ("Scan", &scan.selected)];
        for p in &pluses {
            outputs.push(("Scan+", &p.selected));
        }
        if let Some(b) = &brute {
            outputs.push(("Brute", &b.selected));
        }
        if let Some(o) = &opt {
            outputs.push(("OPT", &o.selected));
        }
        for (who, sel) in &outputs {
            self.is_ref_cover(inst, fixed, sel, who)?;
            self.verifier_agreement(inst, fixed, sel, who)?;
        }

        // Invariant 1 on non-solutions: empty, full, prefixes, and random
        // subsets. These hit marginal pairs (distance exactly lambda) that
        // solver outputs alone might not.
        let all: Vec<u32> = (0..inst.len() as u32).collect();
        self.verifier_agreement(inst, fixed, &[], "empty-selection")?;
        self.verifier_agreement(inst, fixed, &all, "full-selection")?;
        let mut rng = StdRng::seed_from_u64(case.seed ^ 0x0000_ac1e_5eed);
        for round in 0..3 {
            let sel: Vec<u32> = all
                .iter()
                .copied()
                .filter(|_| rng.random::<f64>() < 0.35)
                .collect();
            self.verifier_agreement(inst, fixed, &sel, &format!("random-subset-{round}"))?;
        }

        // Invariant 4.
        if let (Some(b), Some(o)) = (&brute, &opt) {
            self.ensure(o.size() == b.size(), "opt-equals-brute", || {
                format!(
                    "|OPT| = {} != |Brute| = {} (OPT {:?}, Brute {:?})",
                    o.size(),
                    b.size(),
                    o.selected,
                    b.selected
                )
            })?;
        }

        // Invariant 5: the reference per-label optima sandwich the true
        // optimum.
        if let Some(b) = &brute {
            self.ensure(
                max_opt <= b.size() && b.size() <= sum_opt,
                "brute-within-label-optima",
                || {
                    format!(
                        "|Brute| = {} outside [max_a opt_a, sum_a opt_a] = [{max_opt}, {sum_opt}] \
                         (per-label optima {optima:?})",
                        b.size()
                    )
                },
            )?;
        }

        // Invariant 6.
        self.ensure(scan.size() <= sum_opt, "scan-within-label-optima", || {
            format!(
                "|Scan| = {} > sum of per-label optima {sum_opt} ({optima:?})",
                scan.size()
            )
        })?;
        // Scan+ is NOT always <= Scan: skipping already-covered labels can
        // commit it to posts a fresh per-label pass would avoid. The oracle
        // itself found the counterexample (overlap profile, seed 171, shrunk
        // to 4 posts: values 446{0,2}, 529{4,3,0,2}, 742{0,3,1}, 871{3},
        // lambda 219 — Scan covers with {529, 742}, Scan+ under DensestFirst
        // takes {529, 742, 871}). What IS provable: each label Scan+
        // processes adds at most the per-label optimum, because the
        // per-label scan is optimal on the residual uncovered points.
        for (p, o) in pluses.iter().zip(&orders) {
            self.ensure(p.size() <= sum_opt, "scan-plus-within-label-optima", || {
                format!(
                    "|Scan+ ({o:?})| = {} > sum of per-label optima {sum_opt} ({optima:?})",
                    p.size()
                )
            })?;
        }
        if let Some(b) = &brute {
            self.ensure(scan.size() <= s * b.size(), "scan-s-approximation", || {
                format!(
                    "|Scan| = {} > s * |OPT| = {s} * {} (Theorem 4)",
                    scan.size(),
                    b.size()
                )
            })?;
            // Invariant 7.
            let m = inst.num_pairs().max(1) as f64;
            let bound = (m.ln() + 1.0) * b.size() as f64;
            self.ensure(
                greedy.size() as f64 <= bound + 1e-9,
                "greedy-ln-approximation",
                || {
                    format!(
                        "|GreedySC| = {} > (ln {m} + 1) * |OPT| = {bound:.3} (Theorem 3)",
                        greedy.size()
                    )
                },
            )?;
        }
        Ok(())
    }

    /// The variable-lambda regime: directional coverage, same invariants
    /// where they apply, plus the grid-profile degeneration (invariant 12).
    fn variable(&mut self, case: &Case, inst: &Instance) -> Result<(), Failure> {
        let var = VariableLambda::compute(inst, case.lambda);
        let optima = ref_label_optima(inst, &var);
        let sum_opt: usize = optima.iter().sum();

        let greedy = solve_greedy_sc_threads(1, inst, &var);
        let scan = solve_scan(inst, &var);
        let plus = solve_scan_plus(inst, &var, LabelOrder::Input);
        for (who, sel) in [
            ("GreedySC/var", &greedy.selected),
            ("Scan/var", &scan.selected),
            ("Scan+/var", &plus.selected),
        ] {
            self.is_ref_cover(inst, &var, sel, who)?;
            self.verifier_agreement(inst, &var, sel, who)?;
        }
        self.ensure(scan.size() <= sum_opt, "scan-within-label-optima", || {
            format!(
                "variable lambda: |Scan| = {} > sum of per-label optima {sum_opt}",
                scan.size()
            )
        })?;
        self.ensure(
            plus.size() <= sum_opt,
            "scan-plus-within-label-optima",
            || {
                format!(
                    "variable lambda: |Scan+| = {} > sum of per-label optima {sum_opt}",
                    plus.size()
                )
            },
        )?;

        if case.profile == Profile::Grid {
            // Invariant 12: on the uniform-density grid Equation 2 yields
            // exactly lambda0 for every pair...
            let bad: Vec<(usize, i64)> = var
                .per_pair()
                .iter()
                .enumerate()
                .filter(|&(_, &l)| l != case.lambda)
                .map(|(i, &l)| (i, l))
                .collect();
            self.ensure(bad.is_empty(), "grid-lambda-degenerates", || {
                format!(
                    "uniform-density grid: per-pair lambdas differ from lambda0 = {} at {bad:?}",
                    case.lambda
                )
            })?;
            // ... and every solver must therefore behave identically under
            // both providers.
            let fixed = FixedLambda(case.lambda);
            let pairs: [(&str, Vec<u32>, Vec<u32>); 3] = [
                (
                    "GreedySC",
                    solve_greedy_sc_threads(1, inst, &fixed).selected,
                    greedy.selected.clone(),
                ),
                (
                    "Scan",
                    solve_scan(inst, &fixed).selected,
                    scan.selected.clone(),
                ),
                (
                    "Scan+",
                    solve_scan_plus(inst, &fixed, LabelOrder::Input).selected,
                    plus.selected.clone(),
                ),
            ];
            for (who, f_sel, v_sel) in &pairs {
                self.ensure(f_sel == v_sel, "grid-fixed-equals-variable", || {
                    format!("{who}: fixed selected {f_sel:?} but variable selected {v_sel:?}")
                })?;
            }
        }
        Ok(())
    }

    fn streaming(
        &mut self,
        case: &Case,
        inst: &Instance,
        fixed: &FixedLambda,
    ) -> Result<(), Failure> {
        if inst.is_empty() {
            return Ok(());
        }
        let nl = inst.num_labels();
        let cap = inst.len();
        type Build = fn(usize, usize) -> Box<dyn StreamEngine>;
        let engines: [(&str, Build); 5] = [
            ("StreamScan", |nl, cap| Box::new(StreamScan::new(nl, cap))),
            ("StreamScan+", |nl, cap| {
                Box::new(StreamScan::new_plus(nl, cap))
            }),
            ("StreamGreedy", |nl, cap| {
                Box::new(StreamGreedy::new(nl, cap))
            }),
            ("StreamGreedy+", |nl, cap| {
                Box::new(StreamGreedy::new_plus(nl, cap))
            }),
            ("InstantScan", |nl, _| Box::new(InstantScan::new(nl))),
        ];
        for (name, build) in engines {
            // InstantScan is the tau = 0 scheme by construction.
            let tau = if name == "InstantScan" { 0 } else { case.tau };
            let mut engine = build(nl, cap);
            let res = run_stream(inst, fixed, tau, engine.as_mut());
            // Invariant 8a: every emission within the delay budget, in
            // i128 so the check itself cannot overflow.
            let late: Vec<(u32, i64)> = res
                .emissions
                .iter()
                .filter(|e| e.emit_time as i128 - inst.value(e.post) as i128 > tau as i128)
                .map(|e| (e.post, e.emit_time))
                .collect();
            self.ensure(late.is_empty(), "stream-delay-within-tau", || {
                format!("{name}: emissions past tau = {tau}: {late:?}")
            })?;
            // Invariant 8b: the emitted sub-stream is a cover.
            self.is_ref_cover(inst, fixed, &res.selected, name)?;
            self.verifier_agreement(inst, fixed, &res.selected, name)?;
        }

        // Invariant 9: with tau >= lambda, StreamScan collapses to offline
        // Scan exactly.
        let tau = case.tau.max(case.lambda);
        let mut engine = StreamScan::new(nl, cap);
        let res = run_stream(inst, fixed, tau, &mut engine);
        let offline = solve_scan(inst, fixed);
        self.ensure(
            res.selected == offline.selected,
            "stream-scan-equals-offline",
            || {
                format!(
                    "StreamScan(tau = {tau} >= lambda = {}) selected {:?} but offline Scan \
                     selected {:?}",
                    case.lambda, res.selected, offline.selected
                )
            },
        )?;
        Ok(())
    }

    /// Invariant 10: the batched multi-user solver is the sequential
    /// per-user loop, and an all-labels user is plain GreedySC.
    fn batch(&mut self, case: &Case, inst: &Instance) -> Result<(), Failure> {
        if inst.is_empty() || inst.num_labels() == 0 {
            return Ok(());
        }
        let all_labels: Vec<u16> = (0..inst.num_labels() as u16).collect();
        let mut users = vec![BatchUser {
            labels: all_labels,
            lambda: case.lambda,
        }];
        let mut rng = StdRng::seed_from_u64(case.seed ^ 0xba7c4);
        for _ in 0..2 {
            let labels: Vec<u16> = (0..inst.num_labels() as u16)
                .filter(|_| rng.random::<f64>() < 0.6)
                .collect();
            if !labels.is_empty() {
                users.push(BatchUser {
                    labels,
                    lambda: case.lambda,
                });
            }
        }
        let seq = solve_batch_users_threads(1, inst, &users);
        for threads in [2, 4] {
            let par = solve_batch_users_threads(threads, inst, &users);
            self.ensure(par == seq, "batch-equals-sequential", || {
                format!("batch digests differ at {threads} threads: {par:?} vs {seq:?}")
            })?;
        }
        let direct = solve_greedy_sc_threads(1, inst, &FixedLambda(case.lambda));
        self.ensure(
            seq[0] == direct.selected,
            "batch-all-labels-is-greedy",
            || {
                format!(
                    "all-labels user digest {:?} != GreedySC {:?}",
                    seq[0], direct.selected
                )
            },
        )?;
        Ok(())
    }

    /// Invariant 11: killing a supervised run at an arbitrary arrival and
    /// resuming from its checkpoint reproduces the uninterrupted run
    /// byte-for-byte (emissions, flags, and final selection).
    fn checkpoint(&mut self, case: &Case, inst: &Instance) -> Result<(), Failure> {
        // Boundary values stress the solver layer; the supervised runner is
        // exercised on the realistic profiles (and has its own chaos suite).
        if inst.is_empty() || inst.len() > 300 || case.profile == Profile::Boundary {
            return Ok(());
        }
        let kinds = [
            ShardEngineKind::Scan,
            ShardEngineKind::ScanPlus,
            ShardEngineKind::Greedy,
            ShardEngineKind::GreedyPlus,
        ];
        let kind = kinds[(case.seed % 4) as usize];
        let shards = 1 + (case.seed % 3) as usize;
        let plan = FaultPlan::none();
        let cfg = SupervisorConfig::default();
        let lambda = case.lambda;
        let tau = case.tau;

        let mut straight = SupervisedRun::new(inst, lambda, tau, shards, kind, &plan, cfg);
        straight
            .run_all()
            .map_err(|e| Failure::new("checkpoint-roundtrip", format!("straight run: {e}")))?;
        let want = straight
            .finish()
            .map_err(|e| Failure::new("checkpoint-roundtrip", format!("straight finish: {e}")))?;

        // Kill mid-stream (position derived from the seed), checkpoint,
        // resume, drain.
        let cut = (case.seed % inst.len() as u64) as u32;
        let mut run = SupervisedRun::new(inst, lambda, tau, shards, kind, &plan, cfg);
        while run.position() < cut {
            run.step()
                .map_err(|e| Failure::new("checkpoint-roundtrip", format!("pre-cut step: {e}")))?;
        }
        let bytes = encode_checkpoint(&mut run);
        drop(run); // the "kill"
        let mut resumed = resume_supervised(inst, lambda, tau, shards, kind, &plan, cfg, &bytes)
            .map_err(|e| Failure::new("checkpoint-roundtrip", format!("resume: {e}")))?;
        resumed
            .run_all()
            .map_err(|e| Failure::new("checkpoint-roundtrip", format!("resumed run: {e}")))?;
        let got = resumed
            .finish()
            .map_err(|e| Failure::new("checkpoint-roundtrip", format!("resumed finish: {e}")))?;

        let flat = |r: &mqd_stream::SupervisedRunResult| -> Vec<(u32, i64, bool)> {
            r.emissions
                .iter()
                .map(|e| (e.post, e.emit_time, e.degraded))
                .collect()
        };
        self.ensure(
            flat(&got) == flat(&want) && got.result.selected == want.result.selected,
            "checkpoint-roundtrip",
            || {
                format!(
                    "kill at arrival {cut} + resume diverged: resumed emissions {:?} vs \
                     uninterrupted {:?}",
                    flat(&got),
                    flat(&want)
                )
            },
        )?;
        Ok(())
    }

    /// Invariant 13: a loopback server must answer every `QUERY` with bytes
    /// identical to the offline solver on the equivalent slice. The
    /// reference rebuilds the canonical slicing semantics by hand (it does
    /// NOT call into `mqd-store`), so a slicing bug cannot self-certify.
    fn serving(&mut self, case: &Case) -> Result<(), Failure> {
        use mqd_server::{Client, Server, ServerConfig};

        let fail = |detail: String| Failure::new("server-agreement", detail);

        // The store's ingest contract: non-decreasing values, >= 1 label.
        // Ids are the generation indexes, so the reference can reproduce
        // the slice's (value, id) ordering exactly.
        let mut rows: Vec<Record> = case
            .items
            .iter()
            .enumerate()
            .filter(|(_, (_, labels))| !labels.is_empty())
            .map(|(i, (value, labels))| Record {
                id: i as u64,
                value: *value,
                labels: labels.clone(),
            })
            .collect();
        rows.sort_by_key(|r| (r.value, r.id));
        if rows.is_empty() || rows.len() > 400 {
            return Ok(());
        }

        let server = Server::bind(&ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            max_queue: 16,
            ..ServerConfig::default()
        })
        .map_err(|e| fail(format!("bind: {e}")))?;
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run());
        let outcome = self.serving_session(case, &rows, addr, &fail);
        // Always drain so the server thread exits, even on failure.
        if let Ok(mut c) = Client::connect(addr) {
            let _ = c.request("DRAIN");
        }
        let _ = handle.join();
        outcome?;
        Ok(())
    }

    /// The client side of invariant 13: ingest, query every solver over a
    /// deterministic mix of label subsets / ranges / lambda modes, and
    /// compare each payload byte-for-byte with [`Self::served_reference`].
    fn serving_session(
        &mut self,
        case: &Case,
        rows: &[Record],
        addr: std::net::SocketAddr,
        fail: &impl Fn(String) -> Failure,
    ) -> Result<(), Failure> {
        use mqd_server::{format_query, Client};

        let mut client = Client::connect(addr).map_err(|e| fail(format!("connect: {e}")))?;
        let resp = client
            .ingest_batch(rows)
            .map_err(|e| fail(format!("ingest: {e}")))?;
        self.ensure(resp.is_ok(), "server-agreement", || {
            format!("ingest of {} rows rejected: {}", rows.len(), resp.status)
        })?;

        let specs = Self::query_mix(case, rows);

        for spec in &specs {
            let want = Self::served_reference(rows, spec).map_err(|e| {
                fail(format!(
                    "offline reference failed on {}: {e}",
                    format_query(spec)
                ))
            })?;
            let resp = client
                .request(&format_query(spec))
                .map_err(|e| fail(format!("query {}: {e}", format_query(spec))))?;
            self.ensure(resp.is_ok(), "server-agreement", || {
                format!("{} rejected: {}", format_query(spec), resp.status)
            })?;
            self.ensure(resp.lines == want, "server-agreement", || {
                format!(
                    "served answer differs from offline solver on {}:\n  served  {:?}\n  offline {:?}",
                    format_query(spec),
                    resp.lines,
                    want
                )
            })?;
        }
        Ok(())
    }

    /// The deterministic query mix invariants 13 and 16 both sweep: for
    /// each list algorithm a full-range/all-labels fixed-lambda query, a
    /// seeded subrange over a seeded label subset, and a proportional
    /// (variable-lambda) full-range query; OPT on exact-sized cases; and
    /// the first spec re-issued last so the second answer exercises the
    /// cover cache.
    fn query_mix(case: &Case, rows: &[Record]) -> Vec<mqd_store::QuerySpec> {
        use mqd_store::{Algorithm, QuerySpec};

        let num_labels = case.num_labels.max(1) as u16;
        let all: Vec<u16> = (0..num_labels).collect();
        let mut rng = StdRng::seed_from_u64(case.seed ^ 0x5e2ea6e);
        let lo = rows.first().map(|r| r.value).unwrap_or(0);
        let hi = rows.last().map(|r| r.value).unwrap_or(0);

        let mut specs: Vec<QuerySpec> = Vec::new();
        for alg in [Algorithm::GreedySc, Algorithm::Scan, Algorithm::ScanPlus] {
            // Full range, all labels, fixed lambda.
            specs.push(QuerySpec {
                labels: all.clone(),
                lambda: case.lambda,
                proportional: false,
                algorithm: alg,
                from: i64::MIN,
                to: i64::MAX,
            });
            // A seeded subrange over a seeded label subset. The span is
            // computed in i128: boundary cases use the full i64 range.
            let span = (hi as i128 - lo as i128 + 1) as u128;
            let pick = |rng: &mut StdRng| -> i64 {
                (lo as i128 + (rng.random::<u64>() as u128 % span) as i128) as i64
            };
            let a = pick(&mut rng);
            let b = pick(&mut rng);
            let mut labels: Vec<u16> = (0..num_labels)
                .filter(|_| rng.random::<f64>() < 0.7)
                .collect();
            if labels.is_empty() {
                labels.push((rng.random::<u64>() % num_labels as u64) as u16);
            }
            specs.push(QuerySpec {
                labels,
                lambda: case.lambda,
                proportional: false,
                algorithm: alg,
                from: a.min(b),
                to: a.max(b),
            });
            // Variable (density-proportional) lambda, full range.
            specs.push(QuerySpec {
                labels: all.clone(),
                lambda: case.lambda,
                proportional: true,
                algorithm: alg,
                from: i64::MIN,
                to: i64::MAX,
            });
        }
        if case.exact_sized() {
            specs.push(QuerySpec {
                labels: all.clone(),
                lambda: case.lambda,
                proportional: false,
                algorithm: Algorithm::Opt,
                from: i64::MIN,
                to: i64::MAX,
            });
        }
        // Re-issue the first spec at the end: the second answer comes from
        // the cover cache and must still be byte-identical.
        specs.push(specs[0].clone());
        specs
    }

    /// Independent re-derivation of the served answer: canonical slice
    /// semantics (sorted-deduped query labels -> dense local ids, external
    /// ids preserved, labels intersected) plus the documented solver
    /// dispatch, rendered through the shared TSV writer.
    fn served_reference(
        rows: &[Record],
        spec: &mqd_store::QuerySpec,
    ) -> Result<Vec<String>, MqdError> {
        use mqd_core::record::format_tsv;
        use mqd_core::{LabelId, Post, PostId};
        use mqd_store::Algorithm;

        let mut qlabels = spec.labels.clone();
        qlabels.sort_unstable();
        qlabels.dedup();
        let mut posts = Vec::new();
        for r in rows {
            if r.value < spec.from || r.value > spec.to {
                continue;
            }
            let locals: Vec<LabelId> = r
                .labels
                .iter()
                .filter_map(|l| qlabels.binary_search(l).ok().map(|i| LabelId(i as u16)))
                .collect();
            if locals.is_empty() {
                continue;
            }
            posts.push(Post::new(PostId(r.id), r.value, locals));
        }
        let inst = Instance::from_posts(posts, qlabels.len())?;
        let mut solution = match (spec.algorithm, spec.proportional) {
            (Algorithm::Opt, _) => solve_opt(&inst, spec.lambda, &OptConfig::default())?,
            (Algorithm::GreedySc, false) => solve_greedy_sc(&inst, &FixedLambda(spec.lambda)),
            (Algorithm::Scan, false) => solve_scan(&inst, &FixedLambda(spec.lambda)),
            (Algorithm::ScanPlus, false) => {
                solve_scan_plus(&inst, &FixedLambda(spec.lambda), LabelOrder::Input)
            }
            (alg, true) => {
                let v = VariableLambda::compute(&inst, spec.lambda);
                match alg {
                    Algorithm::GreedySc => solve_greedy_sc(&inst, &v),
                    Algorithm::Scan => solve_scan(&inst, &v),
                    Algorithm::ScanPlus => solve_scan_plus(&inst, &v, LabelOrder::Input),
                    Algorithm::Opt => unreachable!("matched above"),
                }
            }
        };
        solution.selected.sort_unstable();
        solution.selected.dedup();
        Ok(solution
            .selected
            .iter()
            .map(|&z| {
                format_tsv(&Record {
                    id: inst.post(z).id().0,
                    value: inst.value(z),
                    labels: inst
                        .labels(z)
                        .iter()
                        .map(|&LabelId(l)| qlabels[l as usize])
                        .collect(),
                })
            })
            .collect())
    }

    /// Invariant 15: incremental cache maintenance agrees with cold
    /// solving. Prime a [`mqd_store::CoverCache`] against a prefix of the
    /// case, seal the suffix append-by-append through `apply_delta`, then
    /// require:
    ///
    /// * fixed-lambda Scan entries stayed *fresh* the whole way (the
    ///   in-place repair path answered them, not the fallback) and are
    ///   byte-identical to a cold full solve at the final generation;
    /// * entries served stale are byte-identical to a cold solve of the
    ///   store *at their watermark generation*;
    /// * a simulated background refresh converges every stale entry to
    ///   fresh;
    /// * with a zero repair-debt bound even a repairable entry takes the
    ///   stale-then-refresh fallback, and its watermark stays exact.
    fn repairing(&mut self, case: &Case) -> Result<(), Failure> {
        use mqd_core::record::format_tsv;
        use mqd_store::{
            repairable, run_query, run_query_with_repair, Algorithm, CoverCache, Lookup, QuerySpec,
            Store,
        };

        let inv = "repair-agreement";
        let fail = |detail: String| Failure::new(inv, detail);
        let tsv = |records: &[Record]| -> Vec<String> { records.iter().map(format_tsv).collect() };

        // Same row construction as invariant 13: ids are generation
        // indexes, rows sorted into ingest (value, id) order.
        let mut rows: Vec<Record> = case
            .items
            .iter()
            .enumerate()
            .filter(|(_, (_, labels))| !labels.is_empty())
            .map(|(i, (value, labels))| Record {
                id: i as u64,
                value: *value,
                labels: labels.clone(),
            })
            .collect();
        rows.sort_by_key(|r| (r.value, r.id));
        if rows.len() < 2 || rows.len() > 400 {
            return Ok(());
        }
        let split = rows.len() / 2;
        // Rebuilds the store as it stood at generation `g` (one append
        // per generation, starting from empty).
        let store_at = |g: usize| -> Result<Store, Failure> {
            let mut s = Store::new();
            for r in rows.iter().take(g) {
                s.append(r.clone())
                    .map_err(|e| fail(format!("append to generation {g}: {e}")))?;
            }
            Ok(s)
        };

        let num_labels = case.num_labels.max(1) as u16;
        let all: Vec<u16> = (0..num_labels).collect();
        let lo = rows.first().map(|r| r.value).unwrap_or(0);
        let hi = rows.last().map(|r| r.value).unwrap_or(0);
        // A deterministic strict subrange (middle half, i128-safe).
        let span = hi as i128 - lo as i128;
        let mid_from = (lo as i128 + span / 4) as i64;
        let mid_to = (hi as i128 - span / 4) as i64;

        let mut specs: Vec<QuerySpec> = Vec::new();
        for alg in [Algorithm::GreedySc, Algorithm::Scan, Algorithm::ScanPlus] {
            specs.push(QuerySpec {
                labels: all.clone(),
                lambda: case.lambda,
                proportional: false,
                algorithm: alg,
                from: i64::MIN,
                to: i64::MAX,
            });
        }
        specs.push(QuerySpec {
            labels: all.clone(),
            lambda: case.lambda,
            proportional: false,
            algorithm: Algorithm::Scan,
            from: mid_from.min(mid_to),
            to: mid_from.max(mid_to),
        });
        specs.push(QuerySpec {
            labels: all.clone(),
            lambda: case.lambda,
            proportional: true,
            algorithm: Algorithm::Scan,
            from: i64::MIN,
            to: i64::MAX,
        });

        let mut store = store_at(split)?;
        let mut cache = CoverCache::new();
        for spec in &specs {
            let (records, repair) = run_query_with_repair(&store, spec)
                .map_err(|e| fail(format!("prime solve: {e}")))?;
            cache.insert_fresh(spec, records, store.generation(), repair);
        }
        for r in rows.iter().skip(split) {
            store
                .append(r.clone())
                .map_err(|e| fail(format!("suffix append: {e}")))?;
            // Newly-dirty specs are background work in the server; here
            // the refresh is simulated after the loop instead.
            let _ = cache.apply_delta(std::slice::from_ref(r), store.generation());
        }

        let generation = store.generation();
        for spec in &specs {
            match cache.lookup(spec, generation) {
                Lookup::Fresh(records) => {
                    let cold =
                        run_query(&store, spec).map_err(|e| fail(format!("cold solve: {e}")))?;
                    self.ensure(tsv(&records) == tsv(&cold), inv, || {
                        format!(
                            "repaired cover differs from cold solve at generation \
                             {generation} for {spec:?}:\n  repaired {:?}\n  cold {:?}",
                            tsv(&records),
                            tsv(&cold)
                        )
                    })?;
                }
                Lookup::Stale {
                    records,
                    generation: watermark,
                    ..
                } => {
                    // Within the default debt bound a fixed-lambda Scan
                    // entry must never fall back to staleness.
                    self.ensure(!repairable(spec), inv, || {
                        format!(
                            "repairable spec went stale (watermark {watermark}) after \
                             {} appends within the debt bound: {spec:?}",
                            rows.len() - split
                        )
                    })?;
                    let prefix = store_at(watermark as usize)?;
                    let cold = run_query(&prefix, spec)
                        .map_err(|e| fail(format!("watermark solve: {e}")))?;
                    self.ensure(tsv(&records) == tsv(&cold), inv, || {
                        format!(
                            "stale cover differs from cold solve at its watermark \
                             {watermark} for {spec:?}:\n  stale {:?}\n  cold {:?}",
                            tsv(&records),
                            tsv(&cold)
                        )
                    })?;
                    // Simulate the background refresher and require
                    // convergence to a fresh, cold-identical answer.
                    let (renewed, repair) = run_query_with_repair(&store, spec)
                        .map_err(|e| fail(format!("refresh solve: {e}")))?;
                    let still_stale = cache.install_refreshed(spec, renewed, generation, repair);
                    self.ensure(!still_stale, inv, || {
                        format!("refresh at the latest generation left {spec:?} stale")
                    })?;
                    let Lookup::Fresh(records) = cache.lookup(spec, generation) else {
                        return Err(fail(format!("refreshed {spec:?} did not serve fresh")));
                    };
                    let cold =
                        run_query(&store, spec).map_err(|e| fail(format!("cold solve: {e}")))?;
                    self.ensure(tsv(&records) == tsv(&cold), inv, || {
                        format!(
                            "refreshed cover differs from cold solve for {spec:?}:\n  \
                             refreshed {:?}\n  cold {:?}",
                            tsv(&records),
                            tsv(&cold)
                        )
                    })?;
                }
                Lookup::Miss => {
                    return Err(fail(format!(
                        "entry for {spec:?} vanished (lag {} far below the bound)",
                        rows.len() - split
                    )));
                }
            }
        }

        // Debt-bound fallback: with a zero bound even the repairable Scan
        // entry must go stale on its first in-footprint append — and its
        // watermark must stay exact.
        let scan_full = QuerySpec {
            labels: all.clone(),
            lambda: case.lambda,
            proportional: false,
            algorithm: Algorithm::Scan,
            from: i64::MIN,
            to: i64::MAX,
        };
        let mut store = store_at(split)?;
        let mut strict = CoverCache::new();
        strict.set_debt_bound(0);
        let (records, repair) = run_query_with_repair(&store, &scan_full)
            .map_err(|e| fail(format!("strict prime solve: {e}")))?;
        strict.insert_fresh(&scan_full, records, store.generation(), repair);
        for r in rows.iter().skip(split) {
            store
                .append(r.clone())
                .map_err(|e| fail(format!("strict suffix append: {e}")))?;
            let _ = strict.apply_delta(std::slice::from_ref(r), store.generation());
        }
        match strict.lookup(&scan_full, store.generation()) {
            Lookup::Stale {
                records,
                generation: watermark,
                ..
            } => {
                self.ensure(watermark == split as u64, inv, || {
                    format!(
                        "zero debt bound: expected staleness from the first suffix \
                         append (watermark {split}), got watermark {watermark}"
                    )
                })?;
                let prefix = store_at(watermark as usize)?;
                let cold = run_query(&prefix, &scan_full)
                    .map_err(|e| fail(format!("strict watermark solve: {e}")))?;
                self.ensure(tsv(&records) == tsv(&cold), inv, || {
                    format!(
                        "zero debt bound: stale cover differs from cold solve at \
                         watermark {watermark}:\n  stale {:?}\n  cold {:?}",
                        tsv(&records),
                        tsv(&cold)
                    )
                })?;
            }
            other => {
                return Err(fail(format!(
                    "zero debt bound: expected the Scan entry to go stale, got {other:?}"
                )));
            }
        }
        Ok(())
    }

    /// Invariant 16 (`cluster-agreement`): a 2-shard cluster behind the
    /// router answers every query in the invariant-13 mix — all list
    /// algorithms, OPT on exact-sized cases, and PROP — byte-identically
    /// to a single node fed the same ingest, and its STATS core fields
    /// (`rows`, `labels`, `generation`, `min_value`, `max_value`) match
    /// the single node's. A single-shard `SUBSCRIBE` relayed through the
    /// router must also reproduce the single node's emission stream.
    fn clustered(&mut self, case: &Case) -> Result<(), Failure> {
        use mqd_core::wire::ShardIdentity;
        use mqd_router::{Router, RouterConfig};
        use mqd_server::{Client, Server, ServerConfig};

        let inv = "cluster-agreement";
        let fail = |detail: String| Failure::new(inv, detail);

        // Same row construction as invariant 13 (ids are generation
        // indexes, ingest order is (value, id)).
        let mut rows: Vec<Record> = case
            .items
            .iter()
            .enumerate()
            .filter(|(_, (_, labels))| !labels.is_empty())
            .map(|(i, (value, labels))| Record {
                id: i as u64,
                value: *value,
                labels: labels.clone(),
            })
            .collect();
        rows.sort_by_key(|r| (r.value, r.id));
        if rows.is_empty() || rows.len() > 400 {
            return Ok(());
        }

        let bind_backend = |shard: Option<ShardIdentity>| -> Result<Server, Failure> {
            Server::bind(&ServerConfig {
                addr: "127.0.0.1:0".into(),
                threads: 2,
                max_queue: 16,
                shard,
                ..ServerConfig::default()
            })
            .map_err(|e| fail(format!("bind backend: {e}")))
        };
        const SHARDS: u32 = 2;
        let b0 = bind_backend(Some(ShardIdentity {
            shard_id: 0,
            shard_count: SHARDS,
        }))?;
        let b1 = bind_backend(Some(ShardIdentity {
            shard_id: 1,
            shard_count: SHARDS,
        }))?;
        let single = bind_backend(None)?;
        let (a0, a1, a_single) = (b0.local_addr(), b1.local_addr(), single.local_addr());
        let router = Router::bind(&RouterConfig {
            addr: "127.0.0.1:0".into(),
            backends: vec![a0.to_string(), a1.to_string()],
            shards: SHARDS,
            threads: 2,
            max_queue: 16,
            ..RouterConfig::default()
        })
        .map_err(|e| fail(format!("bind router: {e}")))?;
        let a_router = router.local_addr();
        let handles = [
            std::thread::spawn(move || b0.run()),
            std::thread::spawn(move || b1.run()),
            std::thread::spawn(move || single.run()),
        ];
        let rh = std::thread::spawn(move || router.run());

        let outcome = self.clustered_session(case, &rows, a_router, a_single, &fail);
        // Drain everything, failure or not: the router's DRAIN fans out to
        // the backends before the router itself shuts down.
        if let Ok(mut c) = Client::connect(a_router) {
            let _ = c.request("DRAIN");
        }
        if let Ok(mut c) = Client::connect(a_single) {
            let _ = c.request("DRAIN");
        }
        for h in handles {
            let _ = h.join();
        }
        let _ = rh.join();
        outcome?;
        Ok(())
    }

    /// The client side of invariant 16: mirrored ingest, the shared query
    /// mix compared byte-for-byte, STATS core fields, and a single-shard
    /// SUBSCRIBE relay.
    fn clustered_session(
        &mut self,
        case: &Case,
        rows: &[Record],
        a_router: std::net::SocketAddr,
        a_single: std::net::SocketAddr,
        fail: &impl Fn(String) -> Failure,
    ) -> Result<(), Failure> {
        use mqd_core::wire::shard_of_label;
        use mqd_server::{format_query, Client};

        let mut via_router =
            Client::connect(a_router).map_err(|e| fail(format!("connect router: {e}")))?;
        let mut via_single =
            Client::connect(a_single).map_err(|e| fail(format!("connect single: {e}")))?;

        let ra = via_router
            .ingest_batch(rows)
            .map_err(|e| fail(format!("cluster ingest: {e}")))?;
        let rb = via_single
            .ingest_batch(rows)
            .map_err(|e| fail(format!("single ingest: {e}")))?;
        self.ensure(
            ra.is_ok() && ra.status == rb.status,
            "cluster-agreement",
            || {
                format!(
                    "ingest acks differ: cluster '{}' vs single '{}'",
                    ra.status, rb.status
                )
            },
        )?;

        for spec in &Self::query_mix(case, rows) {
            let q = format_query(spec);
            let a = via_router
                .request(&q)
                .map_err(|e| fail(format!("cluster {q}: {e}")))?;
            let b = via_single
                .request(&q)
                .map_err(|e| fail(format!("single {q}: {e}")))?;
            self.ensure(a.is_ok(), "cluster-agreement", || {
                format!("cluster rejected {q}: {}", a.status)
            })?;
            self.ensure(a.lines == b.lines, "cluster-agreement", || {
                format!(
                    "cluster answer differs from single node on {q}:\n  cluster {:?}\n  single  {:?}",
                    a.lines, b.lines
                )
            })?;
        }

        // STATS core fields: the router's exact ledger vs the single
        // node's store counters.
        let sa = via_router
            .request("STATS")
            .map_err(|e| fail(format!("cluster STATS: {e}")))?;
        let sb = via_single
            .request("STATS")
            .map_err(|e| fail(format!("single STATS: {e}")))?;
        let field = |status: &str, key: &str| -> Option<String> {
            let needle = format!("\"{key}\":");
            let at = status.find(&needle)? + needle.len();
            let digits: String = status
                .get(at..)?
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '-')
                .collect();
            (!digits.is_empty()).then_some(digits)
        };
        for key in ["rows", "labels", "generation", "min_value", "max_value"] {
            self.ensure(
                field(&sa.status, key) == field(&sb.status, key),
                "cluster-agreement",
                || {
                    format!(
                        "STATS {key} differs: cluster {} vs single {}",
                        sa.status, sb.status
                    )
                },
            )?;
        }

        // A SUBSCRIBE whose labels live on one shard must relay the single
        // node's exact emission stream (header fields aside — the router
        // forwards the backend header verbatim, so compare lines only).
        let num_labels = case.num_labels.max(1) as u16;
        let shard0: Vec<String> = (0..num_labels)
            .filter(|&l| shard_of_label(l, 2) == 0)
            .map(|l| l.to_string())
            .collect();
        if !shard0.is_empty() {
            let sub = format!(
                "SUBSCRIBE {} {} {} greedy",
                shard0.join(","),
                case.lambda,
                case.lambda.max(1),
            );
            let a = via_router
                .request(&sub)
                .map_err(|e| fail(format!("cluster {sub}: {e}")))?;
            let b = via_single
                .request(&sub)
                .map_err(|e| fail(format!("single {sub}: {e}")))?;
            self.ensure(a.is_ok(), "cluster-agreement", || {
                format!("cluster rejected {sub}: {}", a.status)
            })?;
            self.ensure(a.lines == b.lines, "cluster-agreement", || {
                format!(
                    "relayed subscribe differs on {sub}:\n  cluster {:?}\n  single  {:?}",
                    a.lines, b.lines
                )
            })?;
        }
        Ok(())
    }
}
