//! Byte-deterministic merge rules for scatter-gathered shard responses.
//!
//! Two facts make the merges here exact rather than approximate:
//!
//! 1. Backends render rows in *slice order* — ascending `(value, external
//!    id)` — and render each row's labels intersected with the request's
//!    label set. A row replicated on several shards therefore renders to
//!    byte-identical TSV on each of them.
//! 2. A row's external id is unique, so "same id" means "same row", and a
//!    dedup-by-id after sorting by `(value, id)` reconstructs exactly the
//!    single-node row sequence.

use mqd_core::record::{format_tsv, parse_tsv_line, Record};
use mqd_core::MqdError;
use mqd_store::{run_query, QuerySpec, Store};

fn perr(msg: impl Into<String>) -> MqdError {
    MqdError::Protocol { msg: msg.into() }
}

/// Parses one shard payload line back into a [`Record`], rejecting blank
/// or comment lines (a backend never emits them; seeing one means the
/// payload is not a row stream).
fn parse_row(line: &str, line_no: usize) -> Result<Record, MqdError> {
    parse_tsv_line(line, line_no)?.ok_or_else(|| {
        perr(format!(
            "shard payload line {line_no} is not a row: {line:?}"
        ))
    })
}

/// Merges per-shard row payloads (COVER answers or SLICE exports) into the
/// single-node order: ascending `(value, id)`, one row per id. The first
/// rendered copy of a duplicated row is kept — all copies are
/// byte-identical (see the module docs), so the choice cannot matter.
pub fn merge_rows(parts: &[Vec<String>]) -> Result<Vec<String>, MqdError> {
    let mut tagged: Vec<((i64, u64), String)> = Vec::new();
    for part in parts {
        for (i, line) in part.iter().enumerate() {
            let rec = parse_row(line, i + 1)?;
            tagged.push(((rec.value, rec.id), line.clone()));
        }
    }
    tagged.sort_by_key(|t| t.0);
    // Duplicates of one row share both value and id, so after the sort all
    // copies are adjacent and the consecutive dedup removes every extra.
    tagged.dedup_by(|a, b| a.0 == b.0);
    Ok(tagged.into_iter().map(|(_, line)| line).collect())
}

/// Rebuilds the global slice from merged shard `SLICE` rows and solves the
/// query locally — the router-side path for algorithms whose objective is
/// global (`Scan+`, `GreedySC`, `OPT`, and anything `PROP`) and therefore
/// cannot be decomposed per shard.
///
/// The merged rows arrive in `(value, id)` order (monotone values, the
/// store's append contract) and already carry labels intersected with the
/// query set, so the mini-store's slice is structurally identical to the
/// single node's and the shared [`run_query`] definition returns the same
/// bytes.
pub fn solve_merged(rows: &[String], spec: &QuerySpec) -> Result<Vec<String>, MqdError> {
    let mut store = Store::new();
    for (i, line) in rows.iter().enumerate() {
        store.append(parse_row(line, i + 1)?)?;
    }
    let answer = run_query(&store, spec)?;
    Ok(answer.iter().map(format_tsv).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqd_core::wire::shard_of_label;
    use mqd_store::Algorithm;

    fn spec(labels: &[u16], lambda: i64, algorithm: Algorithm, proportional: bool) -> QuerySpec {
        QuerySpec {
            labels: labels.to_vec(),
            lambda,
            proportional,
            algorithm,
            from: i64::MIN,
            to: i64::MAX,
        }
    }

    /// A small corpus with rows spanning both shards of a 2-shard map.
    fn corpus() -> Vec<Record> {
        let mut rows = Vec::new();
        for i in 0..40u64 {
            let labels = match i % 4 {
                0 => vec![0],
                1 => vec![1],
                2 => vec![0, 1],
                _ => vec![2, 3],
            };
            rows.push(Record {
                id: i + 1,
                value: (i as i64 / 2) * 7,
                labels,
            });
        }
        rows
    }

    /// Renders what each shard backend would return for a SLICE: the rows
    /// it holds (any owned label), sliced by the full query label set.
    fn shard_slices(rows: &[Record], query: &[u16], shard_count: u32) -> Vec<Vec<String>> {
        let mut parts = Vec::new();
        for shard in 0..shard_count {
            let mut store = Store::new();
            for r in rows {
                if r.labels
                    .iter()
                    .any(|&l| shard_of_label(l, shard_count) == shard)
                {
                    store.append(r.clone()).unwrap();
                }
            }
            let slice = store.slice(query, i64::MIN, i64::MAX);
            parts.push(
                (0..slice.instance.len() as u32)
                    .map(|i| format_tsv(&slice.record_for(i)))
                    .collect(),
            );
        }
        parts
    }

    #[test]
    fn merged_slices_reconstruct_the_single_node_slice() {
        let rows = corpus();
        let query = vec![0, 1, 2];
        let mut single = Store::new();
        for r in &rows {
            single.append(r.clone()).unwrap();
        }
        let slice = single.slice(&query, i64::MIN, i64::MAX);
        let want: Vec<String> = (0..slice.instance.len() as u32)
            .map(|i| format_tsv(&slice.record_for(i)))
            .collect();

        let parts = shard_slices(&rows, &query, 2);
        assert_eq!(merge_rows(&parts).unwrap(), want);
    }

    #[test]
    fn local_solve_over_merged_slices_matches_the_single_node_answer() {
        let rows = corpus();
        let query = vec![0, 1, 2, 3];
        let mut single = Store::new();
        for r in &rows {
            single.append(r.clone()).unwrap();
        }
        let parts = shard_slices(&rows, &query, 2);
        let merged = merge_rows(&parts).unwrap();
        for (algorithm, prop) in [
            (Algorithm::ScanPlus, false),
            (Algorithm::GreedySc, false),
            (Algorithm::Opt, false),
            (Algorithm::Scan, true),
            (Algorithm::GreedySc, true),
        ] {
            let s = spec(&query, 21, algorithm, prop);
            let want: Vec<String> = run_query(&single, &s)
                .unwrap()
                .iter()
                .map(format_tsv)
                .collect();
            assert_eq!(
                solve_merged(&merged, &s).unwrap(),
                want,
                "{algorithm:?} prop={prop}"
            );
        }
    }

    #[test]
    fn garbage_payload_lines_are_typed_errors() {
        let bad = vec![vec!["# not a row".to_string()]];
        assert!(matches!(merge_rows(&bad), Err(MqdError::Protocol { .. })));
        assert!(solve_merged(
            &["1\t2".to_string()],
            &spec(&[0], 5, Algorithm::Scan, false)
        )
        .is_err());
    }
}
