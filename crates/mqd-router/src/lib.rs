//! Label-sharded scatter-gather router for the MQDP serving protocol.
//!
//! A single `mqd-server` holds the whole corpus; this crate scales the
//! serving layer *out* while keeping the serving contract — byte-identical
//! answers — intact. The router is a second std-only TCP process that
//! speaks the same line/JSON protocol to clients and partitions the corpus
//! across N shard backends by label: label `l` belongs to shard
//! [`mqd_core::wire::shard_of_label`]`(l, N)`, and backend `j` of the
//! ordered backend list serves shard `j mod N` (so `backends / N` replicas
//! per shard).
//!
//! * **Ingest** fans each row to every replica of every shard owning one
//!   of the row's labels, preserving arrival order, so each backend holds
//!   exactly the sub-corpus its labels select. The row keeps its *full*
//!   label set — answer rendering intersects labels with the query set,
//!   so shard-local rendering stays byte-identical to a single node.
//! * **`QUERY`** scatter-gathers: a query whose labels live on one shard
//!   forwards verbatim; a multi-shard fixed-λ Scan decomposes into
//!   per-shard `COVER` halves whose union *is* the single-node answer
//!   (per-label greedy covers are independent); everything else (`Scan+`,
//!   `GreedySC`, `OPT`, `PROP` — global objectives) gathers the raw shard
//!   slices via `SLICE`, reconstructs the global slice by a deterministic
//!   dedup-by-id merge, and solves locally through the same
//!   [`mqd_store::run_query`] definition the backends use.
//! * **`SUBSCRIBE`** relays from the owning shard and *fails over*: when
//!   a backend dies mid-stream the router reconnects to the next replica
//!   and resumes with `AFTER <already relayed>` — the emission sequence is
//!   a pure function of (instance, parameters), so the client sees zero
//!   duplicated and zero missing emissions, and `DONE` totals are
//!   unchanged (they are skip-independent by the PR 7 contract).
//! * **`STATS`** reports router-exact corpus counters (the core fields the
//!   oracle's `cluster-agreement` invariant byte-compares against a single
//!   node) plus per-shard generation watermarks and per-backend liveness.
//!
//! Every `QUERY` response is stamped with the vector of per-shard
//! generation watermarks the router has routed, so a client can tell
//! exactly which ingest prefix an answer reflects.

#![warn(missing_docs)]

mod backend;
mod merge;
mod router;

pub use backend::{BackendPool, Topology};
pub use merge::{merge_rows, solve_merged};
pub use router::{Router, RouterConfig};
