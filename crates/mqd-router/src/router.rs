//! The router runtime: frontend acceptor/worker pool, per-verb routing,
//! scatter-gather execution, and the `SUBSCRIBE` failover relay.

use std::collections::BTreeSet;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use mqd_core::record::{decode_records, Record};
use mqd_core::MqdError;
use mqd_server::lineio::{idle_ticks_for, BodyEvent, LineEvent, LineReader, READ_TICK};
use mqd_server::protocol::{
    parse_request, write_err, write_ok, write_overloaded, Request, SubscribeSpec, MAX_BATCH_ROWS,
    MAX_LINE_BYTES, TERMINATOR,
};
use mqd_server::{format_query, Client, Response};
use mqd_store::{repairable, QuerySpec};
use mqd_stream::ShardEngineKind;

use crate::backend::{BackendPool, Topology};
use crate::merge::{merge_rows, solve_merged};

fn perr(msg: impl Into<String>) -> MqdError {
    MqdError::Protocol { msg: msg.into() }
}

/// Router settings, as exposed by `mqdiv route`.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Listen address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Ordered backend addresses; backend `j` serves shard
    /// `j mod shards`, so the list length must be a multiple of `shards`.
    pub backends: Vec<String>,
    /// Number of label shards the cluster is partitioned into.
    pub shards: u32,
    /// Worker threads; 0 sizes off [`mqd_par::configured_threads`],
    /// floored at 4 (same reasoning as the server: handlers block on
    /// backend I/O, not CPU).
    pub threads: usize,
    /// Admission queue depth, as on the server.
    pub max_queue: usize,
    /// Per-request idle budget for frontend connections, as on the server
    /// ([`ServerConfig::idle_timeout`](mqd_server::ServerConfig)): stalled
    /// request lines and bodies get a typed `-ERR Timeout` instead of
    /// parking a worker. `None` (the default) waits forever.
    pub idle_timeout: Option<Duration>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            backends: Vec::new(),
            shards: 1,
            threads: 0,
            max_queue: 64,
            idle_timeout: None,
        }
    }
}

#[derive(Default)]
struct Served {
    connections: AtomicU64,
    queries: AtomicU64,
    ingested_rows: AtomicU64,
    subscribes: AtomicU64,
    errors: AtomicU64,
    overloads: AtomicU64,
    timeouts: AtomicU64,
}

/// The router's exact corpus ledger. The router is the cluster's single
/// ingest door, so counting at the door reproduces the single-node STATS
/// core fields (`rows`, `labels`, `generation`, `min_value`, `max_value`)
/// without a scatter — and `watermarks[s]` is the generation backend
/// replicas of shard `s` must have reached once they have applied every
/// routed row, which is what `QUERY` responses stamp as the vector
/// watermark.
struct Ledger {
    rows: u64,
    labels: BTreeSet<u16>,
    min_value: Option<i64>,
    max_value: Option<i64>,
    watermarks: Vec<u64>,
}

impl Ledger {
    fn apply(&mut self, rows: &[Record], per_shard: &[u64]) {
        self.rows += rows.len() as u64;
        for row in rows {
            self.labels.extend(row.labels.iter().copied());
            self.min_value = Some(self.min_value.map_or(row.value, |m| m.min(row.value)));
            self.max_value = Some(self.max_value.map_or(row.value, |m| m.max(row.value)));
        }
        for (w, add) in self.watermarks.iter_mut().zip(per_shard) {
            *w += add;
        }
    }
}

struct RouterState {
    topo: Topology,
    ledger: Mutex<Ledger>,
    served: Served,
    draining: AtomicBool,
    addr: SocketAddr,
    threads: usize,
    /// Idle budget in `READ_TICK`s for every frontend connection's reads.
    idle_ticks: Option<u32>,
}

/// A bound, ready-to-run router. [`Router::run`] blocks until a `DRAIN`
/// request shuts it down (after forwarding the drain to every backend).
pub struct Router {
    listener: TcpListener,
    state: Arc<RouterState>,
    max_queue: usize,
}

impl Router {
    /// Validates the topology and binds the frontend socket. Backends are
    /// dialed lazily per connection, so `bind` succeeds even while the
    /// backends are still starting.
    pub fn bind(cfg: &RouterConfig) -> Result<Self, MqdError> {
        let topo = Topology::new(cfg.backends.clone(), cfg.shards)?;
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let threads = if cfg.threads == 0 {
            mqd_par::configured_threads().max(4)
        } else {
            cfg.threads
        };
        let shard_count = topo.shard_count() as usize;
        Ok(Router {
            listener,
            state: Arc::new(RouterState {
                topo,
                ledger: Mutex::new(Ledger {
                    rows: 0,
                    labels: BTreeSet::new(),
                    min_value: None,
                    max_value: None,
                    watermarks: vec![0; shard_count],
                }),
                served: Served::default(),
                draining: AtomicBool::new(false),
                addr,
                threads,
                idle_ticks: idle_ticks_for(cfg.idle_timeout),
            }),
            max_queue: cfg.max_queue.max(1),
        })
    }

    /// The bound frontend address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Serves until drained — the same acceptor/bounded-queue/worker-pool
    /// shape as `mqd-server`, minus the store.
    pub fn run(self) -> Result<(), MqdError> {
        let (tx, rx) = sync_channel::<TcpStream>(self.max_queue);
        let rx = Arc::new(Mutex::new(rx));
        let state = self.state;
        std::thread::scope(|s| {
            for _ in 0..state.threads {
                let rx = Arc::clone(&rx);
                let st = Arc::clone(&state);
                s.spawn(move || worker_loop(&rx, &st));
            }
            for conn in self.listener.incoming() {
                if state.draining.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(conn) = conn else { continue };
                state.served.connections.fetch_add(1, Ordering::Relaxed);
                match tx.try_send(conn) {
                    Ok(()) => {}
                    Err(TrySendError::Full(conn)) => {
                        state.served.overloads.fetch_add(1, Ordering::Relaxed);
                        let mut w = BufWriter::new(conn);
                        let _ = write_overloaded(&mut w, "router at capacity, retry later");
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            drop(tx);
        });
        Ok(())
    }
}

fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, state: &RouterState) {
    loop {
        let conn = {
            // A poisoned receiver mutex means a sibling worker panicked
            // mid-recv; the pool is already compromised, so this worker
            // retires instead of panicking too.
            let Ok(guard) = rx.lock() else { return };
            // lint:allow(blocking-call,guard-held-blocking): bounded by the acceptor — dropping the sender disconnects recv with Err; the lock exists only to serialize waiters on this recv
            guard.recv()
        };
        match conn {
            Ok(c) => {
                let _ = handle_conn(c, state);
            }
            Err(_) => return, // acceptor dropped the sender: drain complete
        }
    }
}

enum Flow {
    Continue,
    Close,
}

fn handle_conn(conn: TcpStream, state: &RouterState) -> std::io::Result<()> {
    conn.set_read_timeout(Some(READ_TICK))?;
    let _ = conn.set_nodelay(true);
    let write_half = conn.try_clone()?;
    let mut reader = LineReader::new(BufReader::new(conn));
    reader.set_idle_ticks(state.idle_ticks);
    let mut w = BufWriter::new(write_half);
    let mut pool = BackendPool::new(&state.topo);

    loop {
        let line = match reader.next_line(&state.draining)? {
            LineEvent::Line(line) => line,
            LineEvent::Eof | LineEvent::Drained => return Ok(()),
            LineEvent::IdleTimeout => {
                state.served.timeouts.fetch_add(1, Ordering::Relaxed);
                let _ = write_err(
                    &mut w,
                    &MqdError::Timeout {
                        msg: "request line stalled; closing idle connection".into(),
                    },
                );
                return Ok(());
            }
            LineEvent::Oversized => {
                state.served.errors.fetch_add(1, Ordering::Relaxed);
                let _ = write_err(
                    &mut w,
                    &perr(format!("request line exceeds {MAX_LINE_BYTES} bytes")),
                );
                reader.drain_peer();
                return Ok(());
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let req = match parse_request(&line) {
            Ok(r) => r,
            Err(e) => {
                state.served.errors.fetch_add(1, Ordering::Relaxed);
                write_err(&mut w, &e)?;
                continue;
            }
        };

        // Framed bodies are consumed before dispatch so the stream stays
        // line-synced even for requests the router then rejects (HELLO is
        // a backend-only verb, but its body still has to leave the pipe).
        let body = match req {
            Request::IngestBatch { bytes } | Request::Hello { bytes } => {
                match reader.read_exact_body(bytes, &state.draining)? {
                    BodyEvent::Body(body) => Some(body),
                    BodyEvent::Truncated(got) => {
                        state.served.errors.fetch_add(1, Ordering::Relaxed);
                        let _ = write_err(
                            &mut w,
                            &perr(format!("truncated body: got {got} of {bytes} bytes")),
                        );
                        reader.drain_peer();
                        return Ok(());
                    }
                    BodyEvent::IdleTimeout(got) => {
                        state.served.timeouts.fetch_add(1, Ordering::Relaxed);
                        let _ = write_err(
                            &mut w,
                            &MqdError::Timeout {
                                msg: format!("body stalled at {got} of {bytes} bytes"),
                            },
                        );
                        return Ok(());
                    }
                }
            }
            _ => None,
        };

        let outcome = catch_unwind(AssertUnwindSafe(|| {
            execute(state, &mut pool, &req, body.as_deref(), &mut w)
        }));
        match outcome {
            Ok(Ok(Flow::Continue)) => {}
            Ok(Ok(Flow::Close)) => return Ok(()),
            Ok(Err(io)) => return Err(io),
            Err(_) => {
                state.served.errors.fetch_add(1, Ordering::Relaxed);
                let _ = write_err(&mut w, &perr("internal error (request handler panicked)"));
                reader.drain_peer();
                return Ok(());
            }
        }
    }
}

/// Relays a complete backend response frame to the client verbatim.
fn relay(w: &mut impl Write, resp: &Response) -> std::io::Result<()> {
    writeln!(w, "{}", resp.status)?;
    for line in &resp.lines {
        writeln!(w, "{line}")?;
    }
    writeln!(w, "{TERMINATOR}")?;
    w.flush()
}

fn execute(
    state: &RouterState,
    pool: &mut BackendPool,
    req: &Request,
    body: Option<&[u8]>,
    w: &mut impl Write,
) -> std::io::Result<Flow> {
    match req {
        Request::Ping => {
            write_ok(w, r#"{"pong":true}"#, &[])?;
            Ok(Flow::Continue)
        }
        Request::Stats => {
            match cluster_stats(state, pool) {
                Ok(json) => write_ok(w, &json, &[])?,
                Err(e) => {
                    state.served.errors.fetch_add(1, Ordering::Relaxed);
                    write_err(w, &e)?;
                }
            }
            Ok(Flow::Continue)
        }
        Request::Ingest(row) => {
            route_ingest(state, pool, std::slice::from_ref(row), w)?;
            Ok(Flow::Continue)
        }
        Request::IngestBatch { .. } => {
            let Some(body) = body else {
                state.served.errors.fetch_add(1, Ordering::Relaxed);
                write_err(w, &perr("batch body missing for INGESTB"))?;
                return Ok(Flow::Continue);
            };
            match decode_batch(body) {
                Ok(rows) => route_ingest(state, pool, &rows, w)?,
                Err(e) => {
                    state.served.errors.fetch_add(1, Ordering::Relaxed);
                    write_err(w, &e)?;
                }
            }
            Ok(Flow::Continue)
        }
        Request::Query(spec) => {
            state.served.queries.fetch_add(1, Ordering::Relaxed);
            route_query(state, pool, spec, w)?;
            Ok(Flow::Continue)
        }
        Request::QueryCover { .. } | Request::Slice { .. } | Request::Hello { .. } => {
            // Backend-internal verbs: accepting them at the frontend would
            // let a client bypass the shard map the router exists to
            // enforce.
            state.served.errors.fetch_add(1, Ordering::Relaxed);
            write_err(
                w,
                &perr("COVER/SLICE/HELLO are backend verbs; the router serves client verbs only"),
            )?;
            Ok(Flow::Continue)
        }
        Request::Subscribe(spec) => {
            state.served.subscribes.fetch_add(1, Ordering::Relaxed);
            route_subscribe(state, pool, spec, w)?;
            Ok(Flow::Continue)
        }
        Request::Drain => {
            // Drain the backends first (best-effort: a dead backend is
            // already drained for our purposes), then the router itself.
            for idx in 0..state.topo.backends().len() {
                let _ = pool.session(idx).and_then(|c| c.request("DRAIN"));
                pool.drop_session(idx);
            }
            state.draining.store(true, Ordering::SeqCst);
            write_ok(w, r#"{"draining":true}"#, &[])?;
            // Kick the acceptor out of its blocking accept.
            let _ = TcpStream::connect_timeout(&state.addr, Duration::from_millis(500));
            Ok(Flow::Close)
        }
        Request::Quit => {
            write_ok(w, r#"{"bye":true}"#, &[])?;
            Ok(Flow::Close)
        }
    }
}

fn decode_batch(body: &[u8]) -> Result<Vec<Record>, MqdError> {
    let rows = decode_records(body)?;
    if rows.len() > MAX_BATCH_ROWS {
        return Err(perr(format!(
            "batch of {} rows exceeds limit {MAX_BATCH_ROWS}",
            rows.len()
        )));
    }
    Ok(rows)
}

/// Fans `rows` to every replica of every owning shard (order preserved —
/// each backend sees the monotone subsequence of the feed its labels
/// select) and answers with the single-node ingest acknowledgement shape,
/// `generation` being the router's global row count.
fn route_ingest(
    state: &RouterState,
    pool: &mut BackendPool,
    rows: &[Record],
    w: &mut impl Write,
) -> std::io::Result<()> {
    let shard_count = state.topo.shard_count() as usize;
    let mut per_shard: Vec<Vec<Record>> = vec![Vec::new(); shard_count];
    for row in rows {
        for shard in state.topo.owning_shards(&row.labels) {
            per_shard[shard as usize].push(row.clone());
        }
    }
    for (shard, part) in per_shard.iter().enumerate() {
        if part.is_empty() {
            continue;
        }
        let sent = pool.fan_write(shard as u32, &mut |c| c.ingest_batch(part));
        match sent {
            Ok(resp) if resp.is_ok() => {}
            Ok(resp) => {
                // A typed backend rejection (non-monotone row, …): relay
                // it verbatim. Shards already written keep their prefix —
                // the same stream-prefix semantics a single node has for a
                // mid-batch failure.
                state.served.errors.fetch_add(1, Ordering::Relaxed);
                return relay(w, &resp);
            }
            Err(e) => {
                state.served.errors.fetch_add(1, Ordering::Relaxed);
                return write_err(w, &e);
            }
        }
    }
    let per_shard_counts: Vec<u64> = per_shard.iter().map(|p| p.len() as u64).collect();
    let generation = match lock_ledger(state) {
        Ok(mut ledger) => {
            ledger.apply(rows, &per_shard_counts);
            ledger.rows
        }
        Err(e) => {
            state.served.errors.fetch_add(1, Ordering::Relaxed);
            return write_err(w, &e);
        }
    };
    state
        .served
        .ingested_rows
        .fetch_add(rows.len() as u64, Ordering::Relaxed);
    write_ok(
        w,
        &format!(r#"{{"ingested":{},"generation":{generation}}}"#, rows.len()),
        &[],
    )
}

fn lock_ledger(state: &RouterState) -> Result<std::sync::MutexGuard<'_, Ledger>, MqdError> {
    state
        .ledger
        .lock()
        .map_err(|_| MqdError::Poisoned { what: "ledger" })
}

/// The vector watermark stamped into query responses: per shard, the
/// generation its replicas reach once every routed row is applied.
fn watermarks(state: &RouterState) -> Result<Vec<u64>, MqdError> {
    Ok(lock_ledger(state)?.watermarks.clone())
}

/// Scatter-gathers one `QUERY`:
///
/// * all labels on one shard — forward verbatim, relay the rows;
/// * multi-shard fixed-λ Scan — per-shard `COVER` halves, merged;
/// * anything else multi-shard — per-shard `SLICE`, dedup-merge, solve
///   locally over the reconstructed slice.
fn route_query(
    state: &RouterState,
    pool: &mut BackendPool,
    spec: &QuerySpec,
    w: &mut impl Write,
) -> std::io::Result<()> {
    let owning = state.topo.owning_shards(&spec.labels);
    let gathered: Result<Result<Vec<String>, Response>, MqdError> = (|| {
        if owning.len() <= 1 {
            let shard = owning.first().copied().unwrap_or(0);
            let resp = pool.shard_request(shard, &format_query(spec))?;
            if !resp.is_ok() {
                return Ok(Err(resp));
            }
            return Ok(Ok(resp.lines));
        }
        if repairable(spec) {
            // Fixed-λ Scan: per-label greedy covers are independent, so
            // each shard solves exactly the labels it owns (against the
            // full query's slice) and the union is the global answer.
            let mut parts = Vec::with_capacity(owning.len());
            for &shard in &owning {
                let owned: BTreeSet<u16> = spec
                    .labels
                    .iter()
                    .copied()
                    .filter(|&l| state.topo.owning_shards(&[l]) == [shard])
                    .collect();
                let cover: Vec<String> = owned.iter().map(|l| l.to_string()).collect();
                let line = format!("{} COVER {}", format_query(spec), cover.join(","));
                let resp = pool.shard_request(shard, &line)?;
                if !resp.is_ok() {
                    return Ok(Err(resp));
                }
                parts.push(resp.lines);
            }
            return Ok(Ok(merge_rows(&parts)?));
        }
        // Global objective: gather the raw shard slices, reconstruct the
        // single-node slice, and solve through the shared definition.
        let mut parts = Vec::with_capacity(owning.len());
        for &shard in &owning {
            let resp = pool.shard_request(shard, &slice_line(&spec.labels, spec.from, spec.to))?;
            if !resp.is_ok() {
                return Ok(Err(resp));
            }
            parts.push(resp.lines);
        }
        let merged = merge_rows(&parts)?;
        Ok(Ok(solve_merged(&merged, spec)?))
    })();
    match gathered {
        Ok(Ok(rows)) => {
            let stamped = match watermarks(state) {
                Ok(gens) => gens,
                Err(e) => {
                    state.served.errors.fetch_add(1, Ordering::Relaxed);
                    return write_err(w, &e);
                }
            };
            let gens: Vec<String> = stamped.iter().map(|g| g.to_string()).collect();
            let json = format!(
                r#"{{"algorithm":"{}","count":{},"generations":[{}]}}"#,
                spec.algorithm.as_str(),
                rows.len(),
                gens.join(","),
            );
            write_ok(w, &json, &rows)
        }
        Ok(Err(resp)) => {
            state.served.errors.fetch_add(1, Ordering::Relaxed);
            relay(w, &resp)
        }
        Err(e) => {
            state.served.errors.fetch_add(1, Ordering::Relaxed);
            write_err(w, &e)
        }
    }
}

fn slice_line(labels: &[u16], from: i64, to: i64) -> String {
    let l: Vec<String> = labels.iter().map(|x| x.to_string()).collect();
    let mut line = format!("SLICE {}", l.join(","));
    if from != i64::MIN {
        line.push_str(&format!(" FROM {from}"));
    }
    if to != i64::MAX {
        line.push_str(&format!(" TO {to}"));
    }
    line
}

fn engine_str(k: ShardEngineKind) -> &'static str {
    match k {
        ShardEngineKind::Scan => "scan",
        ShardEngineKind::ScanPlus => "scanplus",
        ShardEngineKind::Greedy => "greedy",
        ShardEngineKind::GreedyPlus => "greedyplus",
    }
}

/// Rebuilds the wire form of a `SUBSCRIBE` with the skip count replaced —
/// the router's failover reissues the session with `AFTER` advanced by the
/// emissions it already relayed.
fn subscribe_line(spec: &SubscribeSpec, after: u64) -> String {
    let labels: Vec<String> = spec.labels.iter().map(|l| l.to_string()).collect();
    let mut line = format!(
        "SUBSCRIBE {} {} {} {}",
        labels.join(","),
        spec.lambda,
        spec.tau,
        engine_str(spec.engine),
    );
    if spec.from != i64::MIN {
        line.push_str(&format!(" FROM {}", spec.from));
    }
    if spec.to != i64::MAX {
        line.push_str(&format!(" TO {}", spec.to));
    }
    if spec.shards != 1 {
        line.push_str(&format!(" SHARDS {}", spec.shards));
    }
    if let Some(name) = &spec.name {
        line.push_str(&format!(" NAME {name}"));
    }
    if after != 0 {
        line.push_str(&format!(" AFTER {after}"));
    }
    line
}

enum StreamEnd {
    /// The response frame completed (terminator relayed or synthesized).
    Complete,
    /// The backend died mid-stream; fail over to the next replica.
    Died,
}

/// Relays one `SUBSCRIBE` attempt against an already-pinned session.
/// `relayed` counts the EMIT lines actually forwarded across *all*
/// attempts — the reissue skip count — and `header_sent` suppresses the
/// duplicate `+OK` header a failover replica would otherwise inject.
fn relay_stream(
    client: &mut Client,
    line: &str,
    relayed: &mut u64,
    header_sent: &mut bool,
    w: &mut impl Write,
) -> std::io::Result<StreamEnd> {
    if client.send_line(line).is_err() {
        return Ok(StreamEnd::Died);
    }
    let header = match client.next_line() {
        Ok(Some(h)) => h,
        _ => return Ok(StreamEnd::Died),
    };
    if !header.starts_with("+OK") {
        // A typed pre-stream rejection (bad parameters, checkpoint
        // mismatch). Deterministic across replicas, so relay rather than
        // fail over — except mid-failover, where the header is already
        // out and the rejection must travel inside the payload framing.
        if *header_sent {
            writeln!(w, "ABORT Protocol failover rejected: {header}")?;
            writeln!(w, "{TERMINATOR}")?;
            w.flush()?;
            return Ok(StreamEnd::Complete);
        }
        writeln!(w, "{header}")?;
        loop {
            match client.next_line() {
                Ok(Some(l)) => {
                    let done = l == TERMINATOR;
                    writeln!(w, "{l}")?;
                    if done {
                        break;
                    }
                }
                _ => {
                    writeln!(w, "{TERMINATOR}")?;
                    break;
                }
            }
        }
        w.flush()?;
        return Ok(StreamEnd::Complete);
    }
    if !*header_sent {
        writeln!(w, "{header}")?;
        w.flush()?;
        *header_sent = true;
    }
    // DONE/ABORT already relayed: the stream's substance is complete, so a
    // death before the trailing terminator only needs the frame closed —
    // failing over would replay a finished session and duplicate its DONE.
    let mut finished = false;
    loop {
        match client.next_line() {
            Ok(Some(l)) if l == TERMINATOR => {
                writeln!(w, "{TERMINATOR}")?;
                w.flush()?;
                return Ok(StreamEnd::Complete);
            }
            Ok(Some(l)) => {
                if l.starts_with("EMIT ") {
                    *relayed += 1;
                } else if l.starts_with("DONE") || l.starts_with("ABORT") {
                    finished = true;
                }
                writeln!(w, "{l}")?;
                w.flush()?;
            }
            _ => {
                if finished {
                    writeln!(w, "{TERMINATOR}")?;
                    w.flush()?;
                    return Ok(StreamEnd::Complete);
                }
                return Ok(StreamEnd::Died);
            }
        }
    }
}

/// Routes a `SUBSCRIBE` to its owning shard and relays the stream with
/// replica failover. The resumability contract that makes this exact: the
/// emission sequence is a pure function of (instance, parameters), every
/// replica of the shard holds the same instance, and `AFTER n` skips
/// exactly `n` leading emissions without changing the `DONE` totals — so
/// reissuing on a fresh replica with `AFTER (client's skip + relayed)`
/// continues the stream with zero duplicated and zero missing emissions.
fn route_subscribe(
    state: &RouterState,
    pool: &mut BackendPool,
    spec: &SubscribeSpec,
    w: &mut impl Write,
) -> std::io::Result<()> {
    let owning = state.topo.owning_shards(&spec.labels);
    let Some((&shard, rest)) = owning.split_first() else {
        state.served.errors.fetch_add(1, Ordering::Relaxed);
        return write_err(w, &perr("SUBSCRIBE needs at least one label"));
    };
    if !rest.is_empty() {
        state.served.errors.fetch_add(1, Ordering::Relaxed);
        return write_err(
            w,
            &perr(format!(
                "SUBSCRIBE labels span shards {owning:?}; a session streams from one shard \
                 (split the subscription per shard)"
            )),
        );
    }
    let mut relayed: u64 = 0;
    let mut header_sent = false;
    for idx in state.topo.replicas(shard) {
        let line = subscribe_line(spec, spec.after + relayed);
        let end = match pool.session(idx) {
            Ok(client) => relay_stream(client, &line, &mut relayed, &mut header_sent, w)?,
            Err(_) => StreamEnd::Died,
        };
        match end {
            StreamEnd::Complete => return Ok(()),
            StreamEnd::Died => pool.drop_session(idx),
        }
    }
    state.served.errors.fetch_add(1, Ordering::Relaxed);
    let reason = format!(
        "shard {shard}/{} has no live backend",
        state.topo.shard_count()
    );
    if header_sent {
        writeln!(w, "ABORT Protocol {reason}")?;
        writeln!(w, "{TERMINATOR}")?;
        w.flush()
    } else {
        write_err(w, &perr(reason))
    }
}

/// Extracts a top-level `"key":<uint>` field from a response status line.
fn json_u64(status: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = status.find(&needle)? + needle.len();
    let digits: String = status
        .get(at..)?
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Renders the router `STATS`: the single-node core fields from the
/// ledger (`segments` is a per-backend physical detail, reported as 0),
/// the cluster map with per-backend liveness probes, and the router's own
/// serving counters.
fn cluster_stats(state: &RouterState, pool: &mut BackendPool) -> Result<String, MqdError> {
    let (rows, label_count, min_value, max_value, marks) = {
        let ledger = lock_ledger(state)?;
        (
            ledger.rows,
            ledger.labels.len(),
            ledger.min_value,
            ledger.max_value,
            ledger.watermarks.clone(),
        )
    };
    let opt_i64 = |v: Option<i64>| v.map_or("null".to_string(), |x| x.to_string());
    let mut backends = String::new();
    for idx in 0..state.topo.backends().len() {
        let shard = state.topo.identity_of(idx).shard_id;
        let generation = pool
            .session(idx)
            .and_then(|c| c.request("STATS"))
            .ok()
            .filter(Response::is_ok)
            .and_then(|r| json_u64(&r.status, "generation"));
        if generation.is_none() {
            pool.drop_session(idx);
        }
        if !backends.is_empty() {
            backends.push(',');
        }
        backends.push_str(&format!(
            r#"{{"shard":{shard},"alive":{},"generation":{}}}"#,
            generation.is_some(),
            generation.map_or("null".to_string(), |g| g.to_string()),
        ));
    }
    let marks: Vec<String> = marks.iter().map(|m| m.to_string()).collect();
    let s = &state.served;
    Ok(format!(
        concat!(
            r#"{{"rows":{},"segments":0,"labels":{},"generation":{},"#,
            r#""min_value":{},"max_value":{},"#,
            r#""cluster":{{"shards":{},"backends":[{}],"watermarks":[{}]}},"#,
            r#""served":{{"connections":{},"queries":{},"ingested_rows":{},"subscribes":{},"errors":{},"overloads":{},"timeouts":{}}},"#,
            r#""threads":{},"draining":{}}}"#
        ),
        rows,
        label_count,
        rows,
        opt_i64(min_value),
        opt_i64(max_value),
        state.topo.shard_count(),
        backends,
        marks.join(","),
        s.connections.load(Ordering::Relaxed),
        s.queries.load(Ordering::Relaxed),
        s.ingested_rows.load(Ordering::Relaxed),
        s.subscribes.load(Ordering::Relaxed),
        s.errors.load(Ordering::Relaxed),
        s.overloads.load(Ordering::Relaxed),
        s.timeouts.load(Ordering::Relaxed),
        state.threads,
        state.draining.load(Ordering::SeqCst),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqd_core::wire::ShardIdentity;
    use mqd_server::{Server, ServerConfig};

    fn start_backend(shard: Option<ShardIdentity>) -> (SocketAddr, std::thread::JoinHandle<()>) {
        let server = Server::bind(&ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            max_queue: 16,
            shard,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run().unwrap());
        (addr, handle)
    }

    fn start_router(
        backends: Vec<String>,
        shards: u32,
    ) -> (SocketAddr, std::thread::JoinHandle<()>) {
        let router = Router::bind(&RouterConfig {
            addr: "127.0.0.1:0".into(),
            backends,
            shards,
            threads: 2,
            max_queue: 16,
            ..RouterConfig::default()
        })
        .unwrap();
        let addr = router.local_addr();
        let handle = std::thread::spawn(move || router.run().unwrap());
        (addr, handle)
    }

    fn feed() -> Vec<(u64, i64, &'static str)> {
        let mut rows = Vec::new();
        for i in 0..60u64 {
            let labels = ["0", "1", "0,1", "2,3", "1,2", "3"][(i % 6) as usize];
            rows.push((i + 1, (i as i64 / 3) * 5, labels));
        }
        rows
    }

    #[test]
    fn two_shard_cluster_matches_a_single_node() {
        let (b0, h0) = start_backend(Some(ShardIdentity {
            shard_id: 0,
            shard_count: 2,
        }));
        let (b1, h1) = start_backend(Some(ShardIdentity {
            shard_id: 1,
            shard_count: 2,
        }));
        let (single, hs) = start_backend(None);
        let (router, hr) = start_router(vec![b0.to_string(), b1.to_string()], 2);

        let mut via_router = Client::connect(router).unwrap();
        let mut via_single = Client::connect(single).unwrap();
        for (id, value, labels) in feed() {
            let line = format!("INGEST {id} {value} {labels}");
            let a = via_router.request(&line).unwrap();
            let b = via_single.request(&line).unwrap();
            assert!(a.is_ok(), "{}", a.status);
            // The ingest ack is byte-identical to the single node's.
            assert_eq!(a.status, b.status);
        }

        for q in [
            "QUERY 0,1,2,3 10 scan",               // multi-shard COVER merge
            "QUERY 0,1,2,3 10 scanplus",           // multi-shard SLICE + local solve
            "QUERY 0,1,2,3 15 greedysc",           //
            "QUERY 0,1,2,3 15 opt FROM 10 TO 80",  //
            "QUERY 0,1,2,3 40 scan PROP",          // proportional goes the SLICE path
            "QUERY 0,2 10 scan",                   // single-shard forward
            "QUERY 1 0 greedysc",                  //
            "QUERY 0,1 25 scanplus FROM 20 TO 60", //
        ] {
            let a = via_router.request(q).unwrap();
            let b = via_single.request(q).unwrap();
            assert!(a.is_ok(), "{q}: {}", a.status);
            assert_eq!(a.lines, b.lines, "{q}");
            // The router stamps the per-shard vector watermark instead of
            // the single generation.
            assert!(a.status.contains(r#""generations":["#), "{}", a.status);
        }

        // SUBSCRIBE through the router: single-shard label sets relay the
        // stream; spanning sets are a typed error.
        let sub = "SUBSCRIBE 0,2 10 20 greedy";
        let a = via_router.request(sub).unwrap();
        let b = via_single.request(sub).unwrap();
        assert!(a.is_ok(), "{}", a.status);
        assert_eq!(a.lines, b.lines);
        let spanning = via_router.request("SUBSCRIBE 0,1 10 20 greedy").unwrap();
        assert!(
            spanning.status.starts_with("-ERR Protocol "),
            "{}",
            spanning.status
        );
        assert!(spanning.status.contains("span"), "{}", spanning.status);

        // STATS core fields match the single node; cluster section reports
        // both backends alive at their watermarks.
        let a = via_router.request("STATS").unwrap();
        let b = via_single.request("STATS").unwrap();
        for key in ["rows", "labels", "generation"] {
            assert_eq!(
                json_u64(&a.status, key),
                json_u64(&b.status, key),
                "{key}: {} vs {}",
                a.status,
                b.status
            );
        }
        assert!(a.status.contains(r#""min_value":0"#), "{}", a.status);
        assert!(a.status.contains(r#""alive":true"#), "{}", a.status);

        // Backend verbs are rejected at the frontend.
        for bad in ["QUERY 0 5 scan COVER 0", "SLICE 0", "HELLO 7"] {
            if bad.starts_with("HELLO") {
                let r = via_router.request_raw(b"HELLO 7\n0123456").unwrap();
                assert!(r.status.starts_with("-ERR Protocol "), "{}", r.status);
            } else {
                let r = via_router.request(bad).unwrap();
                assert!(r.status.starts_with("-ERR Protocol "), "{}", r.status);
            }
        }

        // DRAIN through the router shuts down the whole cluster.
        assert!(via_router.request("DRAIN").unwrap().is_ok());
        assert!(via_single.request("DRAIN").unwrap().is_ok());
        for h in [h0, h1, hs, hr] {
            h.join().unwrap();
        }
    }

    #[test]
    fn replicated_shard_fails_over_between_backends() {
        // Shard 0 twice (replicas), one-shard map: both backends hold the
        // full corpus, and DRAIN-ing one mid-session must not lose QUERYs.
        let (b0, h0) = start_backend(Some(ShardIdentity {
            shard_id: 0,
            shard_count: 1,
        }));
        let (b1, h1) = start_backend(Some(ShardIdentity {
            shard_id: 0,
            shard_count: 1,
        }));
        let (router, hr) = start_router(vec![b0.to_string(), b1.to_string()], 1);
        let mut c = Client::connect(router).unwrap();
        for (id, value, labels) in feed() {
            assert!(c
                .request(&format!("INGEST {id} {value} {labels}"))
                .unwrap()
                .is_ok());
        }
        let before = c.request("QUERY 0,1,2,3 10 scan").unwrap();
        assert!(before.is_ok(), "{}", before.status);

        // Kill the primary replica directly (behind the router's back).
        let mut direct = Client::connect(b0).unwrap();
        assert!(direct.request("DRAIN").unwrap().is_ok());
        h0.join().unwrap();

        // The router's next query fails over to the second replica and
        // returns the same rows.
        let after = c.request("QUERY 0,1,2,3 10 scan").unwrap();
        assert!(after.is_ok(), "{}", after.status);
        assert_eq!(after.lines, before.lines);
        let stats = c.request("STATS").unwrap();
        assert!(
            stats.status.contains(r#""alive":false"#),
            "{}",
            stats.status
        );
        assert!(stats.status.contains(r#""alive":true"#), "{}", stats.status);

        assert!(c.request("DRAIN").unwrap().is_ok());
        h1.join().unwrap();
        hr.join().unwrap();
    }

    #[test]
    fn bad_topologies_fail_at_bind() {
        for (n, shards) in [(0usize, 1u32), (3, 2), (1, 2), (2, 0)] {
            let cfg = RouterConfig {
                backends: (0..n).map(|i| format!("127.0.0.1:{}", 20000 + i)).collect(),
                shards,
                ..RouterConfig::default()
            };
            assert!(
                Router::bind(&cfg).is_err(),
                "{n} backends / {shards} shards"
            );
        }
    }

    #[test]
    fn subscribe_lines_round_trip_through_the_parser() {
        let spec = SubscribeSpec {
            labels: vec![0, 2],
            lambda: 10,
            tau: 20,
            engine: ShardEngineKind::GreedyPlus,
            from: -5,
            to: 99,
            shards: 3,
            name: Some("feed-1".into()),
            after: 0,
        };
        let line = subscribe_line(&spec, 7);
        let Ok(Request::Subscribe(parsed)) = parse_request(&line) else {
            panic!("unparseable relay line: {line}");
        };
        assert_eq!(parsed.labels, spec.labels);
        assert_eq!((parsed.lambda, parsed.tau), (10, 20));
        assert_eq!(parsed.engine, ShardEngineKind::GreedyPlus);
        assert_eq!((parsed.from, parsed.to, parsed.shards), (-5, 99, 3));
        assert_eq!(parsed.name.as_deref(), Some("feed-1"));
        assert_eq!(parsed.after, 7);
        // Defaults stay off the wire.
        let plain = SubscribeSpec {
            labels: vec![1],
            lambda: 5,
            tau: 0,
            engine: ShardEngineKind::Scan,
            from: i64::MIN,
            to: i64::MAX,
            shards: 1,
            name: None,
            after: 0,
        };
        assert_eq!(subscribe_line(&plain, 0), "SUBSCRIBE 1 5 0 scan");
    }

    #[test]
    fn json_u64_reads_top_level_fields() {
        let s = r#"+OK {"rows":42,"generation":17,"draining":false}"#;
        assert_eq!(json_u64(s, "rows"), Some(42));
        assert_eq!(json_u64(s, "generation"), Some(17));
        assert_eq!(json_u64(s, "missing"), None);
    }
}
