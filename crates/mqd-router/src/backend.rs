//! Cluster topology and per-connection backend sessions.
//!
//! The shard map is positional: backend `j` of the ordered backend list
//! serves shard `j mod shard_count`, so the replicas of shard `s` are the
//! backends at `s, s + N, s + 2N, ...`. The router pins the map into every
//! backend session with the binary `HELLO` handshake
//! ([`mqd_core::wire::encode_hello`]) before the first request — a backend
//! configured for a different map rejects the session, so a misconfigured
//! cluster fails loudly at connect time rather than splitting the label
//! space two different ways.
//!
//! Sessions are lazy and owned by one router connection at a time (the
//! request/response framing on a backend socket cannot be shared), and a
//! session that fails at the transport level is dropped and re-dialed on
//! the next use — which is exactly the failover path the chaos tests
//! exercise by killing backends mid-stream.

use std::collections::BTreeSet;

use mqd_core::wire::{shard_of_label, ShardIdentity, MAX_SHARD_COUNT};
use mqd_core::MqdError;
use mqd_server::{Client, Response};

fn perr(msg: impl Into<String>) -> MqdError {
    MqdError::Protocol { msg: msg.into() }
}

/// The validated cluster shape: the ordered backend addresses and the
/// shard count they are partitioned into.
#[derive(Clone, Debug)]
pub struct Topology {
    backends: Vec<String>,
    shard_count: u32,
}

impl Topology {
    /// Validates the shape: at least one backend, a shard count within the
    /// wire-format bound, and a backend list that divides evenly into
    /// `shard_count` replica groups (every shard must have the same number
    /// of replicas, or the positional map would leave shards short).
    pub fn new(backends: Vec<String>, shard_count: u32) -> Result<Self, MqdError> {
        if backends.is_empty() {
            return Err(perr("a router needs at least one backend"));
        }
        if shard_count == 0 || shard_count > MAX_SHARD_COUNT {
            return Err(perr(format!(
                "shard count {shard_count} outside 1..={MAX_SHARD_COUNT}"
            )));
        }
        if backends.len() < shard_count as usize
            || !backends.len().is_multiple_of(shard_count as usize)
        {
            return Err(perr(format!(
                "{} backends cannot serve {shard_count} shards evenly (need a multiple of \
                 {shard_count})",
                backends.len()
            )));
        }
        Ok(Topology {
            backends,
            shard_count,
        })
    }

    /// Number of shards the label space is split into.
    pub fn shard_count(&self) -> u32 {
        self.shard_count
    }

    /// The ordered backend addresses.
    pub fn backends(&self) -> &[String] {
        &self.backends
    }

    /// The shard map coordinates backend `idx` serves.
    pub fn identity_of(&self, idx: usize) -> ShardIdentity {
        ShardIdentity {
            shard_id: idx as u32 % self.shard_count,
            shard_count: self.shard_count,
        }
    }

    /// Backend indices serving `shard`, in failover order.
    pub fn replicas(&self, shard: u32) -> Vec<usize> {
        (shard as usize..self.backends.len())
            .step_by(self.shard_count as usize)
            .collect()
    }

    /// The sorted set of shards owning at least one of `labels`.
    pub fn owning_shards(&self, labels: &[u16]) -> Vec<u32> {
        let set: BTreeSet<u32> = labels
            .iter()
            .map(|&l| shard_of_label(l, self.shard_count))
            .collect();
        set.into_iter().collect()
    }
}

/// Lazy backend sessions for one router connection.
pub struct BackendPool<'a> {
    topo: &'a Topology,
    conns: Vec<Option<Client>>,
}

impl<'a> BackendPool<'a> {
    /// An empty pool over `topo`; sessions dial on first use.
    pub fn new(topo: &'a Topology) -> Self {
        BackendPool {
            conns: (0..topo.backends().len()).map(|_| None).collect(),
            topo,
        }
    }

    /// The pool's topology.
    pub fn topology(&self) -> &Topology {
        self.topo
    }

    /// The live session for backend `idx`, dialing and `HELLO`-pinning the
    /// shard map on first use. A backend that rejects the handshake is a
    /// configuration error, surfaced typed.
    pub fn session(&mut self, idx: usize) -> Result<&mut Client, MqdError> {
        let Some(slot) = self.conns.get_mut(idx) else {
            return Err(perr(format!("backend index {idx} out of range")));
        };
        if slot.is_none() {
            let addr = &self.topo.backends()[idx];
            let mut client = Client::connect(addr.as_str())?;
            let verdict = client.hello(&self.topo.identity_of(idx))?;
            if !verdict.is_ok() {
                return Err(perr(format!(
                    "backend {addr} rejected the shard map: {}",
                    verdict.status
                )));
            }
            *slot = Some(client);
        }
        match slot.as_mut() {
            Some(c) => Ok(c),
            // Unreachable by construction (filled just above); kept typed
            // so a future refactor cannot turn it into a worker panic.
            None => Err(perr(format!("backend {idx} session unavailable"))),
        }
    }

    /// Drops backend `idx`'s session so the next use re-dials.
    pub fn drop_session(&mut self, idx: usize) {
        if let Some(slot) = self.conns.get_mut(idx) {
            *slot = None;
        }
    }

    /// One request/response against the first live replica of `shard`.
    /// Transport failures drop the session and fall through to the next
    /// replica; a response — `+OK` or a typed backend rejection alike — is
    /// returned as-is for the caller to relay.
    pub fn shard_request(&mut self, shard: u32, line: &str) -> Result<Response, MqdError> {
        let mut last: Option<MqdError> = None;
        for idx in self.topo.replicas(shard) {
            match self.session(idx).and_then(|c| c.request(line)) {
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    self.drop_session(idx);
                    last = Some(e);
                }
            }
        }
        Err(no_live_backend(shard, self.topo.shard_count(), last))
    }

    /// Fans one write to *every* replica of `shard` (replicated ingest).
    /// Transport failures are tolerated while at least one replica acks —
    /// a dead replica rebuilds from its peers, not from this request — but
    /// a typed backend rejection is returned immediately: it means the
    /// write itself is wrong (non-monotone, unowned labels) and acking it
    /// anywhere would let the cluster diverge from the single-node story.
    pub fn fan_write(
        &mut self,
        shard: u32,
        send: &mut dyn FnMut(&mut Client) -> Result<Response, MqdError>,
    ) -> Result<Response, MqdError> {
        let mut acked: Option<Response> = None;
        let mut last: Option<MqdError> = None;
        for idx in self.topo.replicas(shard) {
            match self.session(idx).and_then(&mut *send) {
                Ok(resp) if resp.is_ok() => acked = Some(resp),
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    self.drop_session(idx);
                    last = Some(e);
                }
            }
        }
        match acked {
            Some(resp) => Ok(resp),
            None => Err(no_live_backend(shard, self.topo.shard_count(), last)),
        }
    }
}

fn no_live_backend(shard: u32, shard_count: u32, last: Option<MqdError>) -> MqdError {
    let detail = match last {
        Some(e) => format!(": {e}"),
        None => String::new(),
    };
    perr(format!(
        "shard {shard}/{shard_count} has no live backend{detail}"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_validates_shape() {
        let addrs = |n: usize| (0..n).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect();
        assert!(Topology::new(Vec::new(), 1).is_err());
        assert!(Topology::new(addrs(2), 0).is_err());
        assert!(Topology::new(addrs(2), 65).is_err());
        assert!(Topology::new(addrs(3), 2).is_err()); // uneven replicas
        assert!(Topology::new(addrs(1), 2).is_err()); // fewer backends than shards
        assert!(Topology::new(addrs(4), 2).is_ok());
    }

    #[test]
    fn replicas_follow_the_positional_map() {
        let addrs = (0..6).map(|i| format!("b{i}")).collect();
        let topo = Topology::new(addrs, 2).unwrap();
        assert_eq!(topo.replicas(0), vec![0, 2, 4]);
        assert_eq!(topo.replicas(1), vec![1, 3, 5]);
        assert_eq!(topo.identity_of(3).shard_id, 1);
        assert_eq!(topo.identity_of(3).shard_count, 2);
    }

    #[test]
    fn owning_shards_are_sorted_and_deduped() {
        let topo = Topology::new(vec!["a".into(), "b".into()], 2).unwrap();
        assert_eq!(topo.owning_shards(&[3, 0, 2, 1, 4]), vec![0, 1]);
        assert_eq!(topo.owning_shards(&[2, 4, 0]), vec![0]);
        assert_eq!(topo.owning_shards(&[5]), vec![1]);
    }
}
