//! Zero-dependency seeded pseudo-randomness for the whole workspace.
//!
//! The build environment has no registry access, so the external `rand`
//! crate is replaced by this tiny module: a [SplitMix64] seeder expanding a
//! `u64` seed into generator state, and a [PCG32] (XSH-RR 64/32) core —
//! both are well-studied, pass practical statistical test batteries far
//! beyond what the synthetic workloads here need, and are a few lines each.
//!
//! The API deliberately mirrors the subset of `rand` the repo used
//! (`StdRng::seed_from_u64`, `rng.random::<f64>()`, `rng.random_range(..)`),
//! so call sites only swap the `use` line. Streams are stable across
//! platforms and releases: the generated corpora are part of the
//! experiment definitions, so the sequence produced for a given seed is a
//! compatibility contract (documented in DESIGN.md).
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c
//! [PCG32]: https://www.pcg-random.org/download.html

#![warn(missing_docs)]

/// Expands a `u64` seed into a stream of well-mixed `u64`s (SplitMix64).
/// Used for seeding [`StdRng`] and anywhere a quick one-shot mix is needed.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a SplitMix64 stream from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// A 32-bit-output PCG (XSH-RR 64/32) generator: 64-bit LCG state with an
/// output permutation. Small, fast, and statistically solid.
#[derive(Clone, Debug)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl Pcg32 {
    /// Creates a generator from raw state and stream-selector values.
    pub fn new(state: u64, stream: u64) -> Self {
        let inc = (stream << 1) | 1;
        let mut rng = Pcg32 { state: 0, inc };
        rng.state = rng.state.wrapping_add(state);
        rng.step();
        rng
    }

    #[inline]
    fn step(&mut self) -> u64 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        old
    }

    /// Next 32-bit output.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.step();
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }
}

/// The core generator trait (the `rand::Rng` stand-in).
pub trait Rng {
    /// Next 32 bits of output.
    fn next_u32(&mut self) -> u32;

    /// Next 64 bits of output.
    fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }
}

/// Seeding constructor trait (the `rand::SeedableRng` stand-in).
pub trait SeedableRng: Sized {
    /// Builds a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The workspace's default generator: PCG32 seeded via SplitMix64.
#[derive(Clone, Debug)]
pub struct StdRng(Pcg32);

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut mix = SplitMix64::new(seed);
        let state = mix.next_u64();
        let stream = mix.next_u64();
        StdRng(Pcg32::new(state, stream))
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
}

/// `rand::rngs` module-path compatibility: `use mqd_rng::rngs::StdRng`.
pub mod rngs {
    pub use super::StdRng;
}

/// Types samplable uniformly over their whole domain via `random::<T>()`.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Integer types usable with `random_range`.
pub trait UniformInt: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)`; `lo < hi` must hold.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// The successor value (for inclusive ranges); saturates at the max.
    fn successor(self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl UniformInt for $t {
            #[inline]
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo < hi, "random_range needs a non-empty range");
                // Unbiased via 128-bit multiply-shift (Lemire); span fits u64
                // for every supported type.
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                let mut m = (rng.next_u64() as u128) * (span as u128);
                let mut lowbits = m as u64;
                if lowbits < span {
                    let threshold = span.wrapping_neg() % span;
                    while lowbits < threshold {
                        m = (rng.next_u64() as u128) * (span as u128);
                        lowbits = m as u64;
                    }
                }
                let offset = (m >> 64) as u64;
                ((lo as $u).wrapping_add(offset as $u)) as $t
            }
            #[inline]
            fn successor(self) -> Self {
                self.saturating_add(1)
            }
        }
    )*};
}

impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
);

/// Ranges accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(rng, lo, hi.successor())
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods (the `rand::RngExt` stand-in), blanket
/// implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Uniform draw over the type's natural domain (`[0, 1)` for floats).
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from a range (`lo..hi` or `lo..=hi`).
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 1234567 from the reference splitmix64.c.
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(first, sm2.next_u64());
        assert_ne!(first, sm.next_u64());
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_well_spread() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.random_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit");
        for _ in 0..1_000 {
            let v = rng.random_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let w = rng.random_range(2..=5usize);
            assert!((2..=5).contains(&w));
        }
        // Single-value inclusive range.
        assert_eq!(rng.random_range(3..=3u32), 3);
    }

    #[test]
    fn range_uniformity_chi_square_sane() {
        let mut rng = StdRng::seed_from_u64(11);
        let buckets = 16usize;
        let n = 160_000;
        let mut counts = vec![0u64; buckets];
        for _ in 0..n {
            counts[rng.random_range(0..buckets)] += 1;
        }
        let expect = (n / buckets) as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| (c as f64 - expect).powi(2) / expect)
            .sum();
        // 15 dof; p=0.001 critical value ~ 37.7.
        assert!(chi2 < 37.7, "chi2 {chi2}");
    }

    #[test]
    fn works_through_dyn_and_generic_bounds() {
        fn generic<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let v = generic(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn u64_range_near_max() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let v = rng.random_range(u64::MAX - 3..u64::MAX);
            assert!((u64::MAX - 3..u64::MAX).contains(&v));
        }
    }
}
