//! Arrival-rate shapes for composing load scenarios.
//!
//! A [`RateShape`] maps elapsed run time to an instantaneous request rate
//! multiplier, letting a scenario compose any datagen stream with a
//! traffic envelope: flat baseline, a diurnal tide, or a breaking-news
//! flash crowd. Shapes use only IEEE-exact arithmetic (+, −, ×, ÷) — no
//! transcendental calls — so a schedule derived from a shape is
//! bit-identical across platforms, which the load harness's byte-stable
//! report contract depends on.

/// A deterministic rate envelope over a run of `duration_us`.
#[derive(Clone, PartialEq, Debug)]
pub enum RateShape {
    /// Flat: multiplier 1 for the whole run.
    Constant,
    /// A smooth tide with one trough→peak→trough cycle per `period_us`:
    /// the multiplier swings between `1 - amplitude` and `1 + amplitude`
    /// on the parabola `8x(1-x) - 1` (a sine-like hump without libm).
    Diurnal {
        /// Cycle length in microseconds.
        period_us: u64,
        /// Swing around the baseline, clamped to `[0, 1)`.
        amplitude: f64,
    },
    /// Breaking news: baseline until `start_us`, an instant spike to
    /// `peak` (e.g. 100×) held for `hold_us`, then rational decay
    /// `peak / (1 + k·t)` back toward baseline (arithmetic-only stand-in
    /// for exponential decay), reaching ~1 after `decay_us`.
    FlashCrowd {
        /// Spike onset, microseconds from run start.
        start_us: u64,
        /// Peak multiplier at onset.
        peak: f64,
        /// How long the peak holds before decaying.
        hold_us: u64,
        /// Decay horizon: the multiplier is back within ~2× baseline here.
        decay_us: u64,
    },
}

impl RateShape {
    /// The rate multiplier at elapsed time `t_us` (≥ 0; a constant shape
    /// everywhere, and every shape is ≥ a small positive floor so
    /// inter-arrival gaps stay finite).
    pub fn multiplier_at(&self, t_us: u64) -> f64 {
        let m = match *self {
            RateShape::Constant => 1.0,
            RateShape::Diurnal {
                period_us,
                amplitude,
            } => {
                let period = period_us.max(1);
                let x = (t_us % period) as f64 / period as f64;
                let tide = 8.0 * x * (1.0 - x) - 1.0; // -1 at edges, +1 mid
                let amp = amplitude.clamp(0.0, 0.99);
                1.0 + amp * tide
            }
            RateShape::FlashCrowd {
                start_us,
                peak,
                hold_us,
                decay_us,
            } => {
                if t_us < start_us {
                    1.0
                } else {
                    let since = t_us - start_us;
                    let peak = peak.max(1.0);
                    if since <= hold_us {
                        peak
                    } else {
                        // peak/(1+k·t) with k chosen so the multiplier is
                        // ~2 at the decay horizon.
                        let t = (since - hold_us) as f64;
                        let horizon = decay_us.max(1) as f64;
                        let k = (peak / 2.0 - 1.0).max(0.0) / horizon;
                        (peak / (1.0 + k * t)).max(1.0)
                    }
                }
            }
        };
        m.max(0.01)
    }

    /// Peak multiplier over the whole run (for report headers).
    pub fn peak_multiplier(&self) -> f64 {
        match *self {
            RateShape::Constant => 1.0,
            RateShape::Diurnal { amplitude, .. } => 1.0 + amplitude.clamp(0.0, 0.99),
            RateShape::FlashCrowd { peak, .. } => peak.max(1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_flat() {
        let s = RateShape::Constant;
        assert_eq!(s.multiplier_at(0), 1.0);
        assert_eq!(s.multiplier_at(1_000_000), 1.0);
        assert_eq!(s.peak_multiplier(), 1.0);
    }

    #[test]
    fn diurnal_tide_peaks_mid_cycle() {
        let s = RateShape::Diurnal {
            period_us: 1_000_000,
            amplitude: 0.5,
        };
        let trough = s.multiplier_at(0);
        let peak = s.multiplier_at(500_000);
        assert!((trough - 0.5).abs() < 1e-9, "trough = {trough}");
        assert!((peak - 1.5).abs() < 1e-9, "peak = {peak}");
        // Smooth: quarter-cycle sits strictly between trough and peak.
        let quarter = s.multiplier_at(250_000);
        assert!(trough < quarter && quarter < peak);
        // Periodic.
        assert!((s.multiplier_at(1_500_000) - peak).abs() < 1e-9);
    }

    #[test]
    fn flash_crowd_spikes_then_decays() {
        let s = RateShape::FlashCrowd {
            start_us: 100_000,
            peak: 100.0,
            hold_us: 50_000,
            decay_us: 400_000,
        };
        assert_eq!(s.multiplier_at(0), 1.0);
        assert_eq!(s.multiplier_at(99_999), 1.0);
        assert_eq!(s.multiplier_at(100_000), 100.0);
        assert_eq!(s.multiplier_at(150_000), 100.0); // still holding
        let mid = s.multiplier_at(350_000);
        assert!(mid < 100.0 && mid > 1.0, "decaying, got {mid}");
        let late = s.multiplier_at(550_000);
        assert!(late <= 2.0 + 1e-9, "back near baseline, got {late}");
        assert!(
            s.multiplier_at(350_000) > s.multiplier_at(450_000),
            "monotone decay"
        );
    }

    #[test]
    fn multiplier_never_hits_zero() {
        let s = RateShape::Diurnal {
            period_us: 100,
            amplitude: 5.0, // out-of-range amplitude is clamped
        };
        for t in 0..200 {
            assert!(s.multiplier_at(t) > 0.0);
        }
    }
}
