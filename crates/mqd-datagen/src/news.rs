//! Synthetic news-article corpus — the substitute for the paper's crawl of
//! 1M+ RSS articles (CNN, BBC, NY Times, ... — Section 7.1). Articles are
//! bags of words drawn from one broad topic's keyword pool mixed with
//! generic filler, which is exactly the structure LDA needs to recover the
//! topics that become queries.

use mqd_rng::rngs::StdRng;
use mqd_rng::{RngExt, SeedableRng};

use crate::broad::{BROAD_TOPICS, COMMON_WORDS};

/// News corpus parameters.
#[derive(Clone, Copy, Debug)]
pub struct NewsConfig {
    /// Number of articles.
    pub articles: usize,
    /// Minimum tokens per article.
    pub min_tokens: usize,
    /// Maximum tokens per article.
    pub max_tokens: usize,
    /// Fraction of tokens drawn from the article's broad-topic pool (the
    /// rest is generic filler).
    pub topical_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NewsConfig {
    fn default() -> Self {
        NewsConfig {
            articles: 400,
            min_tokens: 60,
            max_tokens: 160,
            topical_fraction: 0.8,
            seed: 1,
        }
    }
}

/// A generated article with its ground-truth broad topic (useful for
/// checking the LDA pipeline).
#[derive(Clone, Debug)]
pub struct NewsArticle {
    /// Article text (space-separated tokens).
    pub text: String,
    /// Index into [`BROAD_TOPICS`].
    pub broad_topic: usize,
}

/// Generates a seeded corpus.
pub fn generate_news(cfg: &NewsConfig) -> Vec<NewsArticle> {
    assert!(cfg.min_tokens <= cfg.max_tokens && cfg.max_tokens > 0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    (0..cfg.articles)
        .map(|_| {
            let broad = rng.random_range(0..BROAD_TOPICS.len());
            let pool = BROAD_TOPICS[broad].keywords;
            let len = rng.random_range(cfg.min_tokens..=cfg.max_tokens);
            let mut words = Vec::with_capacity(len);
            for _ in 0..len {
                if rng.random::<f64>() < cfg.topical_fraction {
                    words.push(pool[rng.random_range(0..pool.len())]);
                } else {
                    words.push(COMMON_WORDS[rng.random_range(0..COMMON_WORDS.len())]);
                }
            }
            NewsArticle {
                text: words.join(" "),
                broad_topic: broad,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_requested_shape() {
        let cfg = NewsConfig {
            articles: 50,
            ..NewsConfig::default()
        };
        let corpus = generate_news(&cfg);
        assert_eq!(corpus.len(), 50);
        for a in &corpus {
            let n = a.text.split(' ').count();
            assert!((cfg.min_tokens..=cfg.max_tokens).contains(&n));
            assert!(a.broad_topic < BROAD_TOPICS.len());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = NewsConfig::default();
        let a = generate_news(&cfg);
        let b = generate_news(&cfg);
        assert_eq!(a[0].text, b[0].text);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn articles_are_topical() {
        let cfg = NewsConfig {
            articles: 100,
            topical_fraction: 0.9,
            ..NewsConfig::default()
        };
        for a in generate_news(&cfg) {
            let pool = BROAD_TOPICS[a.broad_topic].keywords;
            let topical = a.text.split(' ').filter(|w| pool.contains(w)).count() as f64;
            let total = a.text.split(' ').count() as f64;
            assert!(topical / total > 0.7, "article drifted off topic");
        }
    }

    #[test]
    fn all_broad_topics_appear() {
        let corpus = generate_news(&NewsConfig {
            articles: 300,
            ..NewsConfig::default()
        });
        let mut seen = [false; 10];
        for a in &corpus {
            seen[a.broad_topic] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
