//! Zipfian popularity sampling for heavy-tailed user populations.
//!
//! Microblogging query traffic is not uniform: a few subscriptions are
//! requested constantly while a long tail is touched rarely ("Topic-focused
//! Dynamic Information Filtering in Social Media" models exactly this).
//! [`ZipfSampler`] draws indices `0..n` with `P(k) ∝ 1/(k+1)^s` — index 0
//! is the hottest — via inverse-CDF lookup over a precomputed table, so a
//! draw is one uniform sample plus a binary search, fully deterministic
//! under `mqd-rng`.
//!
//! The sampler lives here rather than in the load harness so any workload
//! composer (benches, oracle profiles, future scenario packs) can reuse it.

use mqd_rng::{Rng, RngExt};

/// Inverse-CDF sampler for a zipfian distribution over `0..n`.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    /// Cumulative probability at each index; last entry is 1.0.
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the table for `n` items with exponent `s` (`s = 0` is
    /// uniform; `s ≈ 1` is the classic web/social skew). `n` is clamped to
    /// at least 1 and `s` to non-negative.
    pub fn new(n: usize, s: f64) -> Self {
        let n = n.max(1);
        let s = if s.is_finite() && s > 0.0 { s } else { 0.0 };
        let mut weights = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for k in 0..n {
            // (k+1)^-s via exp/ln-free powi when s is integral keeps this
            // portable, but f64 powf is fine for a table built once: the
            // table itself (not the libm call) is what downstream
            // determinism hashes over within a run, and the same host
            // rebuilds the same table for the same inputs.
            let w = 1.0 / ((k + 1) as f64).powf(s);
            total += w;
            weights.push(w);
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for w in weights {
            acc += w / total;
            cdf.push(acc);
        }
        if let Some(last) = cdf.last_mut() {
            *last = 1.0; // close rounding drift so sample() can't fall off
        }
        ZipfSampler { cdf }
    }

    /// Number of items in the population.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the population is empty (never true: `new` clamps to 1).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one index in `0..len()`; smaller indices are hotter.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        // First index whose cumulative mass reaches u.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).unwrap_or(std::cmp::Ordering::Less))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of index `k` (0 outside the population) — test and
    /// reporting hook.
    pub fn mass(&self, k: usize) -> f64 {
        let hi = match self.cdf.get(k) {
            Some(&c) => c,
            None => return 0.0,
        };
        let lo = if k == 0 {
            0.0
        } else {
            self.cdf.get(k - 1).copied().unwrap_or(0.0)
        };
        hi - lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqd_rng::{SeedableRng, StdRng};

    #[test]
    fn exponent_zero_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        for k in 0..10 {
            assert!((z.mass(k) - 0.1).abs() < 1e-12, "mass({k}) = {}", z.mass(k));
        }
    }

    #[test]
    fn distribution_shape_matches_zipf_law() {
        // With s = 1 the head must dominate: empirical frequencies track
        // the analytic masses and rank-1 is ~2x rank-2, ~3x rank-3.
        let n = 64;
        let z = ZipfSampler::new(n, 1.0);
        let mut rng = StdRng::seed_from_u64(20130612);
        let draws = 200_000usize;
        let mut counts = vec![0u64; n];
        for _ in 0..draws {
            counts[z.sample(&mut rng)] += 1;
        }
        for k in [0usize, 1, 2, 7, 31] {
            let emp = counts[k] as f64 / draws as f64;
            let want = z.mass(k);
            assert!(
                (emp - want).abs() < 0.01,
                "rank {k}: empirical {emp:.4} vs analytic {want:.4}"
            );
        }
        let r0 = counts[0] as f64;
        assert!((r0 / counts[1] as f64 - 2.0).abs() < 0.2, "rank0/rank1");
        assert!((r0 / counts[2] as f64 - 3.0).abs() < 0.3, "rank0/rank2");
        // The head is heavy: top 8 of 64 items carry over half the mass.
        let head: u64 = counts[..8].iter().sum();
        assert!(head as f64 / draws as f64 > 0.5);
    }

    #[test]
    fn higher_exponent_is_more_skewed() {
        let mild = ZipfSampler::new(100, 0.8);
        let steep = ZipfSampler::new(100, 1.5);
        assert!(steep.mass(0) > mild.mass(0));
        assert!(steep.mass(99) < mild.mass(99));
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let z = ZipfSampler::new(32, 1.1);
        let draw = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..100).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn degenerate_inputs_are_clamped() {
        let z = ZipfSampler::new(0, f64::NAN);
        assert_eq!(z.len(), 1);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.mass(5), 0.0);
    }
}
