//! The ten broad topics of Section 7.1 ("each user is interested in a broad
//! topic like politics or sports, and specifies queries inside this broad
//! topic"), with keyword pools used to synthesize both the news corpus and
//! the tweet stream.

/// A broad topic: a name and its characteristic keyword pool.
#[derive(Clone, Copy, Debug)]
pub struct BroadTopic {
    /// Human-readable name.
    pub name: &'static str,
    /// Characteristic vocabulary.
    pub keywords: &'static [&'static str],
}

/// Words common to every broad topic (generic news filler).
pub const COMMON_WORDS: &[&str] = &[
    "news", "report", "today", "breaking", "update", "live", "story", "week", "year", "people",
    "city", "country", "world", "official", "statement", "press", "public", "time", "new",
    "plan", "group", "state", "national", "announced", "according", "reuters", "sources",
];

/// The ten broad topics.
pub const BROAD_TOPICS: &[BroadTopic] = &[
    BroadTopic {
        name: "politics",
        keywords: &[
            "obama", "president", "barack", "michelle", "inauguration", "house", "white",
            "administration", "congress", "presidential", "republicans", "democrats", "senate",
            "election", "vote", "poll", "party", "political", "race", "candidate", "campaign",
            "electoral", "coalition", "governor", "legislation", "bill", "veto", "lobbying",
        ],
    },
    BroadTopic {
        name: "sports",
        keywords: &[
            "woods", "tiger", "golf", "masters", "championship", "mcilroy", "garcia", "pga",
            "augusta", "rory", "mickelson", "nfl", "super", "bowl", "draft", "ravens",
            "football", "baltimore", "patriots", "jets", "quarterback", "giants", "eagles",
            "league", "season", "playoff", "coach", "touchdown", "basketball", "tennis",
        ],
    },
    BroadTopic {
        name: "economy",
        keywords: &[
            "economy", "economic", "unemployment", "jobs", "growth", "inflation", "recession",
            "budget", "deficit", "debt", "taxes", "fiscal", "stimulus", "federal", "reserve",
            "interest", "rates", "gdp", "trade", "exports", "manufacturing", "consumer",
            "spending", "wages", "labor", "treasury", "austerity", "bailout",
        ],
    },
    BroadTopic {
        name: "markets",
        keywords: &[
            "goog", "msft", "nasdaq", "dow", "stocks", "shares", "investors", "market",
            "trading", "earnings", "dividend", "ipo", "portfolio", "hedge", "fund", "wall",
            "street", "bonds", "futures", "commodities", "oil", "gold", "rally", "selloff",
            "valuation", "quarterly", "forecast", "analyst",
        ],
    },
    BroadTopic {
        name: "technology",
        keywords: &[
            "apple", "google", "microsoft", "iphone", "android", "software", "startup",
            "silicon", "valley", "internet", "mobile", "app", "cloud", "data", "privacy",
            "hackers", "security", "social", "twitter", "facebook", "tablet", "laptop",
            "chip", "processor", "innovation", "patent", "gadget", "device",
        ],
    },
    BroadTopic {
        name: "world",
        keywords: &[
            "syria", "china", "russia", "europe", "united", "nations", "diplomatic", "embassy",
            "treaty", "sanctions", "conflict", "refugees", "border", "minister", "foreign",
            "summit", "peace", "talks", "military", "troops", "rebels", "regime", "protests",
            "uprising", "ceasefire", "alliance", "korea", "iran",
        ],
    },
    BroadTopic {
        name: "health",
        keywords: &[
            "health", "hospital", "doctors", "patients", "disease", "virus", "vaccine",
            "medical", "medicine", "cancer", "treatment", "drug", "fda", "epidemic", "flu",
            "obesity", "diet", "fitness", "mental", "insurance", "medicare", "medicaid",
            "clinical", "trial", "surgery", "diagnosis", "outbreak", "wellness",
        ],
    },
    BroadTopic {
        name: "entertainment",
        keywords: &[
            "movie", "film", "hollywood", "oscars", "actor", "actress", "director", "premiere",
            "album", "music", "concert", "tour", "grammy", "singer", "band", "celebrity",
            "festival", "box", "office", "sequel", "trailer", "netflix", "television",
            "episode", "drama", "comedy", "awards", "studio",
        ],
    },
    BroadTopic {
        name: "science",
        keywords: &[
            "nasa", "space", "mars", "rover", "telescope", "asteroid", "launch", "satellite",
            "orbit", "astronauts", "physics", "particle", "quantum", "climate", "warming",
            "carbon", "emissions", "energy", "solar", "renewable", "research", "scientists",
            "discovery", "species", "genome", "evolution", "laboratory", "experiment",
        ],
    },
    BroadTopic {
        name: "crime",
        keywords: &[
            "police", "arrest", "suspect", "investigation", "shooting", "trial", "court",
            "judge", "jury", "verdict", "sentence", "prison", "fraud", "robbery", "murder",
            "victim", "witness", "detective", "charges", "prosecutor", "defense", "appeal",
            "bail", "custody", "evidence", "forensic", "felony", "homicide",
        ],
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ten_broad_topics_with_rich_pools() {
        assert_eq!(BROAD_TOPICS.len(), 10);
        for bt in BROAD_TOPICS {
            assert!(bt.keywords.len() >= 25, "{} pool too small", bt.name);
        }
    }

    #[test]
    fn keywords_survive_tokenization() {
        // Every pool word must be a single token that the tokenizer keeps,
        // otherwise matching would silently fail.
        for bt in BROAD_TOPICS {
            for kw in bt.keywords {
                let toks = mqd_text::tokenize(kw);
                assert_eq!(toks, vec![kw.to_string()], "{kw} mangled");
            }
        }
    }

    #[test]
    fn pools_are_mostly_disjoint() {
        let mut seen: HashSet<&str> = HashSet::new();
        let mut dups = 0;
        for bt in BROAD_TOPICS {
            for kw in bt.keywords {
                if !seen.insert(kw) {
                    dups += 1;
                }
            }
        }
        assert!(dups <= 3, "{dups} duplicate keywords across pools");
    }
}
