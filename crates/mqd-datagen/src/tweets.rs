//! Synthetic tweet streams — the substitute for the paper's 1% Twitter
//! Streaming API sample (4.3M tweets over 24 hours of 2013-06-12).
//!
//! Two generators:
//!
//! * [`generate_labeled_posts`] — emits `(timestamp, label set)` posts
//!   directly, calibrated by matching rate per label and a controllable
//!   *overlap rate* (mean labels per post — the x-axis of Figures 6 and
//!   11). This is what every algorithm benchmark consumes: the algorithms
//!   only ever see timestamps and label sets, so this exercises identical
//!   code paths to a real matched stream.
//! * [`generate_tweets`] — emits full tweet *texts* (topical keywords,
//!   filler, sentiment words, and a configurable retweet fraction for the
//!   SimHash stage), used by the end-to-end pipeline examples and tests.

use mqd_rng::rngs::StdRng;
use mqd_rng::{RngExt, SeedableRng};

use mqd_core::{LabelId, Post, PostId};

use crate::broad::{BROAD_TOPICS, COMMON_WORDS};
use crate::poisson::sample_poisson;

/// One minute in milliseconds.
pub const MINUTE_MS: i64 = 60_000;
/// One hour in milliseconds.
pub const HOUR_MS: i64 = 3_600_000;
/// One day in milliseconds.
pub const DAY_MS: i64 = 86_400_000;

/// Parameters for the labeled post stream.
#[derive(Clone, Copy, Debug)]
pub struct LabeledStreamConfig {
    /// Number of labels `|L|` (the user's subscription size).
    pub num_labels: usize,
    /// Matching posts per label per minute. Table 2 of the paper measures
    /// ~59–68 for real Twitter data, so 62.0 is the calibrated default.
    pub per_label_per_minute: f64,
    /// Mean labels per post (the paper's *post overlap rate*), `>= 1`.
    pub overlap: f64,
    /// Stream start timestamp (ms).
    pub start_ms: i64,
    /// Stream duration (ms).
    pub duration_ms: i64,
    /// Zipf exponent skewing label popularity (0 = uniform).
    pub label_skew: f64,
    /// Relative amplitude of a 24h sinusoidal rate modulation (0 = flat).
    pub diurnal_amplitude: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LabeledStreamConfig {
    fn default() -> Self {
        LabeledStreamConfig {
            num_labels: 2,
            per_label_per_minute: 62.0,
            overlap: 1.15,
            start_ms: 0,
            duration_ms: 10 * MINUTE_MS,
            label_skew: 0.0,
            diurnal_amplitude: 0.0,
            seed: 7,
        }
    }
}

/// Generates a labeled post stream; posts are sorted by timestamp and ids
/// follow arrival order.
pub fn generate_labeled_posts(cfg: &LabeledStreamConfig) -> Vec<Post> {
    assert!(cfg.num_labels > 0, "need at least one label");
    assert!(cfg.overlap >= 1.0, "overlap is a mean label count, >= 1");
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Zipf-ish label weights for popularity skew.
    let weights: Vec<f64> = (0..cfg.num_labels)
        .map(|i| 1.0 / ((i + 1) as f64).powf(cfg.label_skew))
        .collect();

    let base_rate = cfg.num_labels as f64 * cfg.per_label_per_minute / cfg.overlap;
    let minutes = (cfg.duration_ms + MINUTE_MS - 1) / MINUTE_MS;
    let mut posts = Vec::new();
    let mut id = 0u64;
    for m in 0..minutes {
        let minute_start = cfg.start_ms + m * MINUTE_MS;
        let phase = 2.0 * std::f64::consts::PI * (minute_start % DAY_MS) as f64 / DAY_MS as f64;
        let rate = base_rate * (1.0 + cfg.diurnal_amplitude * phase.sin()).max(0.0);
        let count = sample_poisson(&mut rng, rate);
        for _ in 0..count {
            let offset = rng.random_range(0..MINUTE_MS);
            let ts = (minute_start + offset).min(cfg.start_ms + cfg.duration_ms - 1);
            let extra = sample_poisson(&mut rng, cfg.overlap - 1.0) as usize;
            let k = (1 + extra).min(cfg.num_labels);
            let labels = sample_distinct_weighted(&mut rng, &weights, k);
            posts.push(Post::new(
                PostId(id),
                ts,
                labels.into_iter().map(|l| LabelId(l as u16)).collect(),
            ));
            id += 1;
        }
    }
    posts.sort_by_key(|p| (p.value(), p.id()));
    posts
}

/// Weighted sampling of `k` distinct indices from `weights`.
fn sample_distinct_weighted(rng: &mut StdRng, weights: &[f64], k: usize) -> Vec<usize> {
    let mut remaining: Vec<(usize, f64)> = weights.iter().copied().enumerate().collect();
    let mut chosen = Vec::with_capacity(k);
    for _ in 0..k.min(weights.len()) {
        let total: f64 = remaining.iter().map(|&(_, w)| w).sum();
        let mut r = rng.random::<f64>() * total;
        let mut pick = remaining.len() - 1;
        for (pos, &(_, w)) in remaining.iter().enumerate() {
            if r < w {
                pick = pos;
                break;
            }
            r -= w;
        }
        chosen.push(remaining.swap_remove(pick).0);
    }
    chosen
}

/// Parameters for the full-text tweet stream.
#[derive(Clone, Copy, Debug)]
pub struct TweetStreamConfig {
    /// Total tweets per minute (the 1% Twitter sample averaged ~3000/min;
    /// scale to taste).
    pub tweets_per_minute: f64,
    /// Fraction of tweets drawn from a broad-topic pool (the rest is
    /// non-matching chatter).
    pub topical_fraction: f64,
    /// Fraction of tweets that are near-duplicates (retweets) of a recent
    /// tweet — exercises the SimHash stage of Figure 1.
    pub retweet_fraction: f64,
    /// Relative amplitude of the 24h rate modulation.
    pub diurnal_amplitude: f64,
    /// Stream start (ms).
    pub start_ms: i64,
    /// Stream duration (ms).
    pub duration_ms: i64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TweetStreamConfig {
    fn default() -> Self {
        TweetStreamConfig {
            tweets_per_minute: 300.0,
            topical_fraction: 0.5,
            retweet_fraction: 0.1,
            diurnal_amplitude: 0.3,
            start_ms: 0,
            duration_ms: 10 * MINUTE_MS,
            seed: 11,
        }
    }
}

/// A generated tweet.
#[derive(Clone, Debug)]
pub struct Tweet {
    /// Publication timestamp (ms).
    pub timestamp_ms: i64,
    /// Tweet text.
    pub text: String,
}

/// Sentiment-bearing words sprinkled into tweets so the sentiment diversity
/// dimension is non-degenerate.
const MOOD_WORDS: &[&str] = &[
    "great", "love", "win", "amazing", "happy", "awesome", "terrible", "awful", "sad", "crash",
    "fail", "worry", "crisis", "hope", "proud",
];

/// Off-topic chatter vocabulary (never matches a topic keyword).
const CHATTER: &[&str] = &[
    "lunch",
    "coffee",
    "weekend",
    "traffic",
    "weather",
    "birthday",
    "photo",
    "friends",
    "morning",
    "tonight",
    "watching",
    "listening",
    "haha",
    "lol",
    "omg",
    "dinner",
    "gym",
    "vacation",
    "beach",
    "rain",
    "sunny",
    "sleepy",
    "monday",
    "friday",
];

/// Generates a seeded full-text tweet stream, sorted by timestamp.
pub fn generate_tweets(cfg: &TweetStreamConfig) -> Vec<Tweet> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let minutes = (cfg.duration_ms + MINUTE_MS - 1) / MINUTE_MS;
    let mut tweets: Vec<Tweet> = Vec::new();
    for m in 0..minutes {
        let minute_start = cfg.start_ms + m * MINUTE_MS;
        let phase = 2.0 * std::f64::consts::PI * (minute_start % DAY_MS) as f64 / DAY_MS as f64;
        let rate = cfg.tweets_per_minute * (1.0 + cfg.diurnal_amplitude * phase.sin()).max(0.0);
        let count = sample_poisson(&mut rng, rate);
        for _ in 0..count {
            let ts = minute_start + rng.random_range(0..MINUTE_MS);
            let ts = ts.min(cfg.start_ms + cfg.duration_ms - 1);
            let text = if !tweets.is_empty() && rng.random::<f64>() < cfg.retweet_fraction {
                let src = &tweets[rng.random_range(0..tweets.len())];
                format!("rt {}", src.text)
            } else {
                compose_tweet(&mut rng, cfg.topical_fraction)
            };
            tweets.push(Tweet {
                timestamp_ms: ts,
                text,
            });
        }
    }
    tweets.sort_by_key(|t| t.timestamp_ms);
    tweets
}

fn compose_tweet(rng: &mut StdRng, topical_fraction: f64) -> String {
    let len = rng.random_range(6..16);
    let mut words: Vec<&str> = Vec::with_capacity(len);
    let topical = rng.random::<f64>() < topical_fraction;
    let pool = if topical {
        BROAD_TOPICS[rng.random_range(0..BROAD_TOPICS.len())].keywords
    } else {
        CHATTER
    };
    for _ in 0..len {
        let r = rng.random::<f64>();
        if r < 0.55 {
            words.push(pool[rng.random_range(0..pool.len())]);
        } else if r < 0.7 {
            words.push(MOOD_WORDS[rng.random_range(0..MOOD_WORDS.len())]);
        } else if r < 0.85 {
            words.push(COMMON_WORDS[rng.random_range(0..COMMON_WORDS.len())]);
        } else {
            words.push(CHATTER[rng.random_range(0..CHATTER.len())]);
        }
    }
    words.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqd_core::Instance;

    #[test]
    fn labeled_stream_hits_target_rates() {
        let cfg = LabeledStreamConfig {
            num_labels: 5,
            per_label_per_minute: 60.0,
            overlap: 1.2,
            duration_ms: 20 * MINUTE_MS,
            ..Default::default()
        };
        let posts = generate_labeled_posts(&cfg);
        let inst = Instance::from_posts(posts, 5).unwrap();
        let minutes = 20.0;
        // Total matching posts per minute ~ L * per_label / overlap.
        let per_min = inst.len() as f64 / minutes;
        let expect = 5.0 * 60.0 / 1.2;
        assert!(
            (per_min - expect).abs() < expect * 0.15,
            "got {per_min}, want ~{expect}"
        );
        // Observed overlap rate ~ configured overlap.
        assert!(
            (inst.overlap_rate() - 1.2).abs() < 0.1,
            "overlap {}",
            inst.overlap_rate()
        );
    }

    #[test]
    fn labeled_stream_sorted_and_in_range() {
        let cfg = LabeledStreamConfig::default();
        let posts = generate_labeled_posts(&cfg);
        assert!(!posts.is_empty());
        for w in posts.windows(2) {
            assert!(w[0].value() <= w[1].value());
        }
        for p in &posts {
            assert!((0..10 * MINUTE_MS).contains(&p.value()));
            assert!(!p.labels().is_empty());
        }
    }

    #[test]
    fn overlap_one_means_single_label_posts() {
        let cfg = LabeledStreamConfig {
            overlap: 1.0,
            num_labels: 3,
            ..Default::default()
        };
        for p in generate_labeled_posts(&cfg) {
            assert_eq!(p.labels().len(), 1);
        }
    }

    #[test]
    fn label_skew_concentrates_popularity() {
        let cfg = LabeledStreamConfig {
            num_labels: 10,
            label_skew: 1.2,
            duration_ms: 30 * MINUTE_MS,
            ..Default::default()
        };
        let posts = generate_labeled_posts(&cfg);
        let inst = Instance::from_posts(posts, 10).unwrap();
        let first = inst.postings(LabelId(0)).len();
        let last = inst.postings(LabelId(9)).len();
        assert!(first > 2 * last, "skew not visible: {first} vs {last}");
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = LabeledStreamConfig::default();
        let a = generate_labeled_posts(&cfg);
        let b = generate_labeled_posts(&cfg);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].value(), b[0].value());
    }

    #[test]
    fn tweets_have_text_and_order() {
        let cfg = TweetStreamConfig {
            tweets_per_minute: 60.0,
            duration_ms: 5 * MINUTE_MS,
            ..Default::default()
        };
        let tweets = generate_tweets(&cfg);
        assert!(!tweets.is_empty());
        for w in tweets.windows(2) {
            assert!(w[0].timestamp_ms <= w[1].timestamp_ms);
        }
        assert!(tweets.iter().all(|t| !t.text.is_empty()));
    }

    #[test]
    fn retweets_present_when_requested() {
        let cfg = TweetStreamConfig {
            tweets_per_minute: 120.0,
            retweet_fraction: 0.3,
            duration_ms: 5 * MINUTE_MS,
            ..Default::default()
        };
        let tweets = generate_tweets(&cfg);
        let rts = tweets.iter().filter(|t| t.text.starts_with("rt ")).count();
        assert!(
            rts > tweets.len() / 10,
            "{rts} retweets of {}",
            tweets.len()
        );
    }
}
