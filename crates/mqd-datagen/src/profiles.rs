//! User-profile (label-set) generation — Section 7.1: "to generate a label
//! set L, we first randomly pick a broad topic and then randomly pick |L|
//! topics within the broad topic."

use mqd_rng::rngs::StdRng;
use mqd_rng::{RngExt, SeedableRng};

/// Samples label sets (as topic indices) grouped by broad topic.
#[derive(Clone, Debug)]
pub struct ProfileGenerator {
    /// Topic indices per broad topic.
    by_broad: Vec<Vec<usize>>,
}

impl ProfileGenerator {
    /// `topic_broad[t]` is the broad-topic id of topic `t`.
    pub fn new(topic_broad: &[usize]) -> Self {
        let num_broad = topic_broad.iter().copied().max().map_or(0, |m| m + 1);
        let mut by_broad = vec![Vec::new(); num_broad];
        for (t, &b) in topic_broad.iter().enumerate() {
            by_broad[b].push(t);
        }
        ProfileGenerator { by_broad }
    }

    /// Samples one label set of `size` topics from a single broad topic, or
    /// `None` if no broad topic holds enough topics.
    pub fn sample(&self, size: usize, rng: &mut StdRng) -> Option<Vec<usize>> {
        let eligible: Vec<&Vec<usize>> =
            self.by_broad.iter().filter(|ts| ts.len() >= size).collect();
        if eligible.is_empty() {
            return None;
        }
        let pool = eligible[rng.random_range(0..eligible.len())];
        // Partial Fisher–Yates over a copy.
        let mut copy = pool.clone();
        for i in 0..size {
            let j = rng.random_range(i..copy.len());
            copy.swap(i, j);
        }
        copy.truncate(size);
        Some(copy)
    }

    /// Samples `count` label sets (the paper uses 100 per |L|).
    pub fn sample_many(&self, size: usize, count: usize, seed: u64) -> Vec<Vec<usize>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .filter_map(|_| self.sample(size, &mut rng))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_stay_within_one_broad_topic() {
        // topics 0..4 -> broad 0, 5..9 -> broad 1
        let broad: Vec<usize> = (0..10).map(|t| t / 5).collect();
        let gen = ProfileGenerator::new(&broad);
        let sets = gen.sample_many(3, 50, 99);
        assert_eq!(sets.len(), 50);
        for s in &sets {
            assert_eq!(s.len(), 3);
            let b = broad[s[0]];
            assert!(s.iter().all(|&t| broad[t] == b), "{s:?} crosses broads");
            // distinct topics
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 3);
        }
    }

    #[test]
    fn oversized_requests_rejected() {
        let gen = ProfileGenerator::new(&[0, 0, 1]);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(gen.sample(3, &mut rng).is_none());
        assert!(gen.sample(2, &mut rng).is_some());
    }

    #[test]
    fn deterministic_given_seed() {
        let broad: Vec<usize> = (0..20).map(|t| t % 4).collect();
        let gen = ProfileGenerator::new(&broad);
        assert_eq!(gen.sample_many(2, 10, 5), gen.sample_many(2, 10, 5));
    }
}
