//! Synthetic data substrate replacing the paper's proprietary inputs
//! (Section 7.1): a news corpus (RSS-crawl substitute), full-text and
//! labeled tweet streams (Twitter Streaming API substitute, calibrated to
//! Table 2's matching rates), and user-profile generation (broad topic →
//! |L| topics).
//!
//! Everything is seeded and deterministic, so experiments are reproducible
//! run-to-run.

#![warn(missing_docs)]

pub mod broad;
pub mod bursts;
pub mod news;
pub mod poisson;
pub mod profiles;
pub mod shapes;
pub mod tweets;
pub mod zipf;

pub use broad::{BroadTopic, BROAD_TOPICS, COMMON_WORDS};
pub use bursts::{generate_burst_posts, Burst, BurstStreamConfig};
pub use news::{generate_news, NewsArticle, NewsConfig};
pub use poisson::sample_poisson;
pub use profiles::ProfileGenerator;
pub use shapes::RateShape;
pub use tweets::{
    generate_labeled_posts, generate_tweets, LabeledStreamConfig, Tweet, TweetStreamConfig, DAY_MS,
    HOUR_MS, MINUTE_MS,
};
pub use zipf::ZipfSampler;
