//! Bursty event streams: the introduction's motivating workload ("how
//! certain news events unfolded over time"). A background rate is
//! punctuated by events — intervals where one label's rate multiplies —
//! which is exactly the regime where Section 6's proportional lambda should
//! keep more posts than a fixed threshold.

use mqd_rng::rngs::StdRng;
use mqd_rng::{RngExt, SeedableRng};

use mqd_core::{LabelId, Post, PostId};

use crate::poisson::sample_poisson;
use crate::tweets::MINUTE_MS;

/// One injected event: a label runs hot for a while.
#[derive(Clone, Copy, Debug)]
pub struct Burst {
    /// The label that spikes.
    pub label: u16,
    /// Burst start (ms).
    pub start_ms: i64,
    /// Burst duration (ms).
    pub duration_ms: i64,
    /// Rate multiplier during the burst.
    pub intensity: f64,
}

/// Configuration for the bursty stream.
#[derive(Clone, Debug)]
pub struct BurstStreamConfig {
    /// Number of labels.
    pub num_labels: usize,
    /// Background matching posts per label per minute.
    pub base_rate: f64,
    /// Stream duration (ms).
    pub duration_ms: i64,
    /// The injected events.
    pub bursts: Vec<Burst>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BurstStreamConfig {
    fn default() -> Self {
        BurstStreamConfig {
            num_labels: 2,
            base_rate: 10.0,
            duration_ms: 60 * MINUTE_MS,
            bursts: vec![Burst {
                label: 0,
                start_ms: 20 * MINUTE_MS,
                duration_ms: 10 * MINUTE_MS,
                intensity: 8.0,
            }],
            seed: 3,
        }
    }
}

/// Generates the bursty stream (time-sorted single-label posts).
pub fn generate_burst_posts(cfg: &BurstStreamConfig) -> Vec<Post> {
    assert!(cfg.num_labels > 0);
    for b in &cfg.bursts {
        assert!(
            (b.label as usize) < cfg.num_labels,
            "burst label {} out of range",
            b.label
        );
        assert!(b.intensity >= 1.0, "burst intensity must be >= 1");
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let minutes = (cfg.duration_ms + MINUTE_MS - 1) / MINUTE_MS;
    let mut posts = Vec::new();
    let mut id = 0u64;
    for m in 0..minutes {
        let minute_start = m * MINUTE_MS;
        for label in 0..cfg.num_labels as u16 {
            let boost: f64 = cfg
                .bursts
                .iter()
                .filter(|b| {
                    b.label == label
                        && minute_start < b.start_ms + b.duration_ms
                        && minute_start + MINUTE_MS > b.start_ms
                })
                .map(|b| b.intensity)
                .fold(1.0, f64::max);
            let count = sample_poisson(&mut rng, cfg.base_rate * boost);
            for _ in 0..count {
                let ts = (minute_start + rng.random_range(0..MINUTE_MS)).min(cfg.duration_ms - 1);
                posts.push(Post::new(PostId(id), ts, vec![LabelId(label)]));
                id += 1;
            }
        }
    }
    posts.sort_by_key(|p| (p.value(), p.id()));
    posts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_window_is_denser() {
        let cfg = BurstStreamConfig::default();
        let posts = generate_burst_posts(&cfg);
        let in_burst = posts
            .iter()
            .filter(|p| {
                p.has_label(LabelId(0)) && (20 * MINUTE_MS..30 * MINUTE_MS).contains(&p.value())
            })
            .count();
        let outside = posts
            .iter()
            .filter(|p| {
                p.has_label(LabelId(0)) && (40 * MINUTE_MS..50 * MINUTE_MS).contains(&p.value())
            })
            .count();
        assert!(
            in_burst as f64 > 4.0 * outside as f64,
            "burst {in_burst} vs background {outside}"
        );
    }

    #[test]
    fn non_bursting_label_stays_flat() {
        let cfg = BurstStreamConfig::default();
        let posts = generate_burst_posts(&cfg);
        let early = posts
            .iter()
            .filter(|p| p.has_label(LabelId(1)) && p.value() < 30 * MINUTE_MS)
            .count() as f64;
        let late = posts
            .iter()
            .filter(|p| p.has_label(LabelId(1)) && p.value() >= 30 * MINUTE_MS)
            .count() as f64;
        assert!((early - late).abs() < 0.5 * early.max(late).max(1.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_burst_label_rejected() {
        generate_burst_posts(&BurstStreamConfig {
            bursts: vec![Burst {
                label: 9,
                start_ms: 0,
                duration_ms: 1,
                intensity: 2.0,
            }],
            ..Default::default()
        });
    }

    #[test]
    fn deterministic_and_sorted() {
        let cfg = BurstStreamConfig::default();
        let a = generate_burst_posts(&cfg);
        let b = generate_burst_posts(&cfg);
        assert_eq!(a.len(), b.len());
        for w in a.windows(2) {
            assert!(w[0].value() <= w[1].value());
        }
    }
}
