//! Poisson sampling (Knuth's method for small means, normal approximation
//! for large ones) — avoids pulling in `rand_distr` for one distribution.

use mqd_rng::RngExt;

/// Samples `Poisson(mean)`. Exact (Knuth) for `mean < 30`, normal
/// approximation above. `mean <= 0` yields 0.
pub fn sample_poisson<R: mqd_rng::Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    if mean < 30.0 {
        let limit = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0f64;
        loop {
            p *= rng.random::<f64>();
            if p <= limit {
                return k;
            }
            k += 1;
        }
    } else {
        // N(mean, mean) approximation via Box–Muller, clamped at 0.
        let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (mean + mean.sqrt() * z).round().max(0.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqd_rng::rngs::StdRng;
    use mqd_rng::SeedableRng;

    #[test]
    fn zero_and_negative_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_poisson(&mut rng, 0.0), 0);
        assert_eq!(sample_poisson(&mut rng, -3.0), 0);
    }

    #[test]
    fn small_mean_statistics() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let mean = 4.0;
        let total: u64 = (0..n).map(|_| sample_poisson(&mut rng, mean)).sum();
        let avg = total as f64 / n as f64;
        assert!((avg - mean).abs() < 0.1, "avg {avg}");
    }

    #[test]
    fn large_mean_statistics() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean = 120.0;
        let samples: Vec<u64> = (0..n).map(|_| sample_poisson(&mut rng, mean)).collect();
        let avg = samples.iter().sum::<u64>() as f64 / n as f64;
        assert!((avg - mean).abs() < 1.0, "avg {avg}");
        let var = samples
            .iter()
            .map(|&x| (x as f64 - avg).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!((var - mean).abs() < mean * 0.2, "var {var}");
    }
}
