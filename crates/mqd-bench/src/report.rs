//! Report writing: every experiment binary produces a markdown report (and
//! a CSV per table) under `reports/`, mirroring one table or figure of the
//! paper.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One table of results (a figure panel or a paper table).
#[derive(Clone, Debug)]
pub struct Table {
    /// Panel title, e.g. "Figure 9a: tau = 5 s".
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of stringified cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifies cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "ragged row");
        self.rows.push(cells.to_vec());
    }

    /// Markdown rendering.
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "### {}\n", self.title);
        let _ = writeln!(s, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            s,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for r in &self.rows {
            let _ = writeln!(s, "| {} |", r.join(" | "));
        }
        s
    }

    /// CSV rendering.
    pub fn to_csv(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{}", self.headers.join(","));
        for r in &self.rows {
            let _ = writeln!(s, "{}", r.join(","));
        }
        s
    }
}

/// A full experiment report: id (e.g. "fig09"), description, notes on the
/// workload, and one table per panel.
#[derive(Clone, Debug)]
pub struct Report {
    /// Short id; also the output file stem.
    pub id: String,
    /// What the experiment reproduces.
    pub title: String,
    /// Free-form notes (workload parameters, paper-expectation reminders).
    pub notes: Vec<String>,
    /// Result tables.
    pub tables: Vec<Table>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Report {
            id: id.into(),
            title: title.into(),
            notes: Vec::new(),
            tables: Vec::new(),
        }
    }

    /// Adds a note line.
    pub fn note(&mut self, line: impl Into<String>) {
        self.notes.push(line.into());
    }

    /// Adds a table.
    pub fn table(&mut self, t: Table) {
        self.tables.push(t);
    }

    /// Markdown for the whole report.
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "# {} — {}\n", self.id, self.title);
        for n in &self.notes {
            let _ = writeln!(s, "- {n}");
        }
        if !self.notes.is_empty() {
            let _ = writeln!(s);
        }
        for t in &self.tables {
            s.push_str(&t.to_markdown());
            s.push('\n');
        }
        s
    }

    /// Writes `<dir>/<id>.md` plus one CSV per table; returns the markdown
    /// path. Also prints the markdown to stdout.
    pub fn write(&self, dir: &Path) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let md_path = dir.join(format!("{}.md", self.id));
        fs::write(&md_path, self.to_markdown())?;
        for (i, t) in self.tables.iter().enumerate() {
            let csv = dir.join(format!("{}_{}.csv", self.id, i));
            fs::write(csv, t.to_csv())?;
        }
        println!("{}", self.to_markdown());
        println!("[report written to {}]", md_path.display());
        Ok(md_path)
    }

    /// [`write`](Self::write), but reports a failure on stderr and exits
    /// the process with status 2 instead of panicking — the standard
    /// ending for every figure/table driver, whose only caller is a shell
    /// or CI job that reads the exit status.
    pub fn write_or_exit(&self, dir: &Path) {
        if let Err(e) = self.write(dir) {
            eprintln!(
                "error: writing report {} to {}: {e}",
                self.id,
                dir.display()
            );
            std::process::exit(2);
        }
    }
}

/// Formats a float with 3 decimals (report cells).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 1 decimal (report cells).
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_and_csv_shapes() {
        let mut t = Table::new("Panel", &["x", "y"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["3".into(), "4".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### Panel"));
        assert!(md.contains("| 1 | 2 |"));
        let csv = t.to_csv();
        assert_eq!(csv, "x,y\n1,2\n3,4\n");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn report_roundtrip_to_disk() {
        let dir = std::env::temp_dir().join("mqd_bench_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut r = Report::new("figXX", "Smoke");
        r.note("a note");
        let mut t = Table::new("P", &["c"]);
        t.row(&["v".into()]);
        r.table(t);
        let p = r.write(&dir).unwrap();
        let text = std::fs::read_to_string(p).unwrap();
        assert!(text.contains("figXX"));
        assert!(dir.join("figXX_0.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn float_formatters() {
        assert_eq!(f3(0.12349), "0.123");
        assert_eq!(f1(12.06), "12.1");
    }
}
