//! Minimal micro-benchmark harness with a criterion-shaped API.
//!
//! The offline build bans external crates, so the `benches/` files run on
//! this std-only shim instead of criterion: same `Criterion` /
//! `benchmark_group` / `Bencher::iter` surface, measurement via
//! `std::time::Instant` (short warmup, then timed batches), results printed
//! as `name  mean_per_iter  iters`. Good enough to spot order-of-magnitude
//! regressions; for publishable numbers use the experiment binaries, which
//! measure whole workloads.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(300);
/// Warmup time before measuring.
const WARMUP: Duration = Duration::from_millis(50);

/// Entry point object passed to every benchmark function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group (purely cosmetic here).
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("## {name}");
        BenchmarkGroup { _c: self }
    }
}

/// A benchmark group; methods mirror criterion's.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(name);
        self
    }

    /// Runs a parameterized benchmark; the input is passed back to the
    /// closure exactly like criterion's `bench_with_input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&id.0);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier (`name/param`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/param`.
    pub fn new(name: &str, param: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }

    /// Just the parameter as the id.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

/// Collects timing for one benchmark body.
#[derive(Default)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Measures `f` repeatedly: short warmup, then timed iterations until
    /// the time budget is spent.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let warm_end = Instant::now() + WARMUP;
        while Instant::now() < warm_end {
            black_box(f());
        }
        let mut iters = 0u64;
        let t0 = Instant::now();
        loop {
            black_box(f());
            iters += 1;
            let elapsed = t0.elapsed();
            if elapsed >= TARGET {
                self.total = elapsed;
                self.iters = iters;
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<40} (no measurement)");
            return;
        }
        let per = self.total.as_secs_f64() / self.iters as f64;
        let human = if per >= 1.0 {
            format!("{per:.3} s")
        } else if per >= 1e-3 {
            format!("{:.3} ms", per * 1e3)
        } else {
            format!("{:.3} µs", per * 1e6)
        };
        println!("{name:<40} {human:>12}  ({} iters)", self.iters);
    }
}

/// Declares a bench entry function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::microbench::Criterion::default();
            $( $f(&mut c); )+
        }
    };
}

/// Declares `main` for a bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($name:ident) => {
        fn main() {
            $name();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| std::hint::black_box(1 + 1));
        assert!(b.iters > 0);
        assert!(b.total >= Duration::from_millis(1));
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("scan", 5).0, "scan/5");
        assert_eq!(BenchmarkId::from_parameter(60).0, "60");
    }
}
