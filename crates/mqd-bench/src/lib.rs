//! Experiment harness reproducing every table and figure of the paper's
//! Section 7 evaluation, plus ablations. Each binary under `src/bin/`
//! regenerates one artifact and writes a markdown/CSV report to `reports/`;
//! see `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for
//! paper-vs-measured results.

#![warn(missing_docs)]

pub mod args;
pub mod measure;
pub mod microbench;
pub mod report;
pub mod workloads;

pub use args::BenchArgs;
pub use measure::{
    measure, micros_per_post, must, run_stream_by_name, time_it, Measured, STREAM_ENGINES,
};
pub use microbench::{Bencher, BenchmarkId, Criterion};
pub use report::{f1, f3, Report, Table};
pub use workloads::{
    day_instance, ten_minute_instance, CALIBRATED_PER_LABEL_PER_MIN, OPT_FEASIBLE_PER_LABEL_PER_MIN,
};
