//! Workload construction shared by the experiment binaries.

use mqd_core::Instance;
use mqd_datagen::{generate_labeled_posts, LabeledStreamConfig, DAY_MS, MINUTE_MS};

/// Matching rate calibrated against the paper's Table 2 (~59–68 matching
/// posts per label per minute on the 2013 Twitter 1% sample).
pub const CALIBRATED_PER_LABEL_PER_MIN: f64 = 68.0;

/// Reduced matching rate used in the experiments that need the exact OPT
/// baseline (Figures 6, 7, 9, 10): OPT's end-pattern DP is exponential in
/// |L| with a base given by the posts-per-lambda-window density, so the
/// rate is scaled down until the DP is comfortably feasible. Relative
/// errors compare algorithms on the *same* instance, so the shape of the
/// curves is preserved (documented in EXPERIMENTS.md).
pub const OPT_FEASIBLE_PER_LABEL_PER_MIN: f64 = 12.0;

/// A 10-minute evaluation slice (the paper's unit for exact-baseline
/// experiments, "starting at 12pm on Jun 13").
pub fn ten_minute_instance(
    num_labels: usize,
    per_label_per_min: f64,
    overlap: f64,
    seed: u64,
) -> Instance {
    let posts = generate_labeled_posts(&LabeledStreamConfig {
        num_labels,
        per_label_per_minute: per_label_per_min,
        overlap,
        duration_ms: 10 * MINUTE_MS,
        seed,
        ..LabeledStreamConfig::default()
    });
    // lint:allow(panic-path): seeded generator emits valid posts by construction
    Instance::from_posts(posts, num_labels).expect("generator produces valid posts")
}

/// A one-day stream (Figures 8, 12, 13, 14, 15), with a diurnal rate curve
/// like real Twitter traffic. `scale` shrinks the duration (e.g. `--quick`
/// runs 1/10th of a day).
pub fn day_instance(
    num_labels: usize,
    per_label_per_min: f64,
    overlap: f64,
    seed: u64,
    scale: f64,
) -> Instance {
    let duration = ((DAY_MS as f64 * scale) as i64).max(10 * MINUTE_MS);
    let posts = generate_labeled_posts(&LabeledStreamConfig {
        num_labels,
        per_label_per_minute: per_label_per_min,
        overlap,
        duration_ms: duration,
        diurnal_amplitude: 0.3,
        seed,
        ..LabeledStreamConfig::default()
    });
    // lint:allow(panic-path): seeded generator emits valid posts by construction
    Instance::from_posts(posts, num_labels).expect("generator produces valid posts")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_minute_slice_has_expected_span() {
        let inst = ten_minute_instance(2, 20.0, 1.2, 1);
        assert!(!inst.is_empty());
        let span = inst.value(inst.len() as u32 - 1) - inst.value(0);
        assert!(span <= 10 * MINUTE_MS);
        assert_eq!(inst.num_labels(), 2);
    }

    #[test]
    fn day_scale_shrinks_duration() {
        let small = day_instance(2, 5.0, 1.1, 1, 0.02);
        let span = small.value(small.len() as u32 - 1) - small.value(0);
        assert!(span <= (DAY_MS as f64 * 0.02) as i64 + MINUTE_MS);
    }
}
