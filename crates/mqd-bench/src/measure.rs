//! Timing helpers: the paper reports *execution time per post*
//! (Section 7.3), since that determines the post throughput a deployment
//! can sustain.

use std::time::{Duration, Instant};

/// Unwraps a harness result, aborting the process (status 2) with a
/// message on stderr instead of panicking. In a measurement driver any
/// failure must end the run loudly — a silently-degraded run reports wrong
/// numbers, which is worse than no run — and a clean exit beats unwinding
/// a panic through scoped worker threads. Nothing outlives the process.
pub fn must<T, E: std::fmt::Display>(r: Result<T, E>, what: &str) -> T {
    match r {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {what}: {e}");
            std::process::exit(2);
        }
    }
}

/// Runs `f`, returning its result and wall time.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Microseconds per post for a run over `posts` posts.
pub fn micros_per_post(posts: usize, d: Duration) -> f64 {
    if posts == 0 {
        0.0
    } else {
        d.as_secs_f64() * 1e6 / posts as f64
    }
}

/// One measured run: wall time, workload size, and the thread count it ran
/// with — the unit the parallel-scaling sweeps report.
#[derive(Clone, Copy, Debug)]
pub struct Measured {
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Posts processed.
    pub posts: usize,
    /// Worker threads the run was configured with.
    pub threads: usize,
}

impl Measured {
    /// Post throughput (posts per second of wall time).
    pub fn posts_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.posts as f64 / s
        }
    }

    /// Wall time in milliseconds.
    pub fn wall_ms(&self) -> f64 {
        self.wall.as_secs_f64() * 1e3
    }
}

/// Runs `f` over a workload of `posts` posts at `threads` threads,
/// returning its result plus the measurement.
pub fn measure<T>(threads: usize, posts: usize, f: impl FnOnce() -> T) -> (T, Measured) {
    let (out, wall) = time_it(f);
    (
        out,
        Measured {
            wall,
            posts,
            threads,
        },
    )
}

/// Streaming engines by name, so binaries can iterate uniformly.
pub const STREAM_ENGINES: &[&str] = &[
    "StreamScan",
    "StreamScan+",
    "StreamGreedySC",
    "StreamGreedySC+",
];

/// Runs the named streaming engine over an instance, aborting the process
/// on an unknown name — every caller is a figure driver whose engine list
/// comes from [`STREAM_ENGINES`]. [`try_run_stream_by_name`] is the
/// fallible variant.
pub fn run_stream_by_name(
    name: &str,
    inst: &mqd_core::Instance,
    lambda: &mqd_core::FixedLambda,
    tau: i64,
) -> mqd_stream::StreamRunResult {
    match try_run_stream_by_name(name, inst, lambda, tau) {
        Some(r) => r,
        None => {
            eprintln!("error: unknown streaming engine {name}");
            std::process::exit(2);
        }
    }
}

/// Runs the named streaming engine over an instance; `None` for a name
/// outside [`STREAM_ENGINES`] + `"Instant"`.
pub fn try_run_stream_by_name(
    name: &str,
    inst: &mqd_core::Instance,
    lambda: &mqd_core::FixedLambda,
    tau: i64,
) -> Option<mqd_stream::StreamRunResult> {
    let l = inst.num_labels();
    let n = inst.len();
    Some(match name {
        "StreamScan" => {
            mqd_stream::run_stream(inst, lambda, tau, &mut mqd_stream::StreamScan::new(l, n))
        }
        "StreamScan+" => mqd_stream::run_stream(
            inst,
            lambda,
            tau,
            &mut mqd_stream::StreamScan::new_plus(l, n),
        ),
        "StreamGreedySC" => {
            mqd_stream::run_stream(inst, lambda, tau, &mut mqd_stream::StreamGreedy::new(l, n))
        }
        "StreamGreedySC+" => mqd_stream::run_stream(
            inst,
            lambda,
            tau,
            &mut mqd_stream::StreamGreedy::new_plus(l, n),
        ),
        "Instant" => mqd_stream::run_stream(inst, lambda, 0, &mut mqd_stream::InstantScan::new(l)),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_basics() {
        let (v, d) = time_it(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(micros_per_post(0, d) == 0.0);
        assert!(micros_per_post(10, Duration::from_micros(100)) - 10.0 < 1e-9);
    }

    #[test]
    fn measured_derives_throughput() {
        let (v, m) = measure(4, 1_000, || 7);
        assert_eq!(v, 7);
        assert_eq!(m.threads, 4);
        assert_eq!(m.posts, 1_000);
        let m = Measured {
            wall: Duration::from_secs(2),
            posts: 1_000,
            threads: 1,
        };
        assert!((m.posts_per_sec() - 500.0).abs() < 1e-9);
        assert!((m.wall_ms() - 2_000.0).abs() < 1e-9);
        let zero = Measured {
            wall: Duration::ZERO,
            posts: 10,
            threads: 1,
        };
        assert_eq!(zero.posts_per_sec(), 0.0);
    }

    #[test]
    fn engines_run_by_name() {
        let inst =
            mqd_core::Instance::from_values(vec![(0, vec![0]), (10, vec![0]), (20, vec![1])], 2)
                .unwrap();
        let f = mqd_core::FixedLambda(5);
        for name in STREAM_ENGINES.iter().chain(["Instant"].iter()) {
            let res = run_stream_by_name(name, &inst, &f, 5);
            assert!(res.is_cover(&inst, &f), "{name} failed to produce a cover");
        }
    }

    #[test]
    fn unknown_engine_is_refused() {
        let inst = mqd_core::Instance::from_values(vec![(0, vec![0])], 1).unwrap();
        assert!(try_run_stream_by_name("nope", &inst, &mqd_core::FixedLambda(1), 1).is_none());
    }
}
