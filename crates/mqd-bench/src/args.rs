//! Minimal CLI argument handling shared by every experiment binary.

use std::path::PathBuf;

/// Common experiment options.
#[derive(Clone, Debug)]
pub struct BenchArgs {
    /// Shrink workloads for a fast smoke run (`--quick`).
    pub quick: bool,
    /// Base RNG seed (`--seed N`).
    pub seed: u64,
    /// Report output directory (`--out DIR`, default `reports/`).
    pub out: PathBuf,
    /// Workload scale multiplier (`--scale X`, default 1.0).
    pub scale: f64,
    /// Ingest rate (rows/sec) mixed into the query phase by benches with
    /// an interleaved mode (`--interleave RATE`, default 200).
    pub interleave: f64,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            quick: false,
            seed: 20130612,
            out: PathBuf::from("reports"),
            scale: 1.0,
            interleave: 200.0,
        }
    }
}

impl BenchArgs {
    /// Parses `std::env::args()`; unknown flags abort with a usage message.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = BenchArgs::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => out.quick = true,
                "--seed" => {
                    out.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs an integer"))
                }
                "--out" => {
                    out.out = PathBuf::from(it.next().unwrap_or_else(|| {
                        usage("--out needs a directory");
                    }))
                }
                "--scale" => {
                    out.scale = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--scale needs a float"))
                }
                "--interleave" => {
                    out.interleave = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--interleave needs a rows/sec rate"))
                }
                other => usage(&format!("unknown flag {other}")),
            }
        }
        out
    }

    /// `scale`, additionally shrunk 10x under `--quick`.
    pub fn effective_scale(&self) -> f64 {
        if self.quick {
            self.scale * 0.1
        } else {
            self.scale
        }
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: <bin> [--quick] [--seed N] [--out DIR] [--scale X] [--interleave RATE]");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults() {
        let a = BenchArgs::parse_from(sv(&[]));
        assert!(!a.quick);
        assert_eq!(a.out, PathBuf::from("reports"));
        assert_eq!(a.effective_scale(), 1.0);
        assert!((a.interleave - 200.0).abs() < 1e-12);
    }

    #[test]
    fn parses_all_flags() {
        let a = BenchArgs::parse_from(sv(&[
            "--quick",
            "--seed",
            "7",
            "--out",
            "/tmp/r",
            "--scale",
            "0.5",
            "--interleave",
            "350",
        ]));
        assert!(a.quick);
        assert_eq!(a.seed, 7);
        assert_eq!(a.out, PathBuf::from("/tmp/r"));
        assert!((a.effective_scale() - 0.05).abs() < 1e-12);
        assert!((a.interleave - 350.0).abs() < 1e-12);
    }
}
