//! Figure 6 — relative solution-size error of Scan / Scan+ / GreedySC
//! against the exact OPT, and absolute solution sizes, as the *post overlap
//! rate* varies (|L| = 3, lambda = 5 s, 10-minute slices).
//!
//! Paper expectation: GreedySC error is generally lower than Scan/Scan+
//! except at overlap ≈ 1 (where Scan is optimal per label and overall);
//! absolute sizes drop as overlap grows.

use mqd_bench::{f3, BenchArgs, Report, Table, OPT_FEASIBLE_PER_LABEL_PER_MIN};
use mqd_core::algorithms::{
    solve_greedy_sc, solve_opt, solve_scan, solve_scan_plus, LabelOrder, OptConfig,
};
use mqd_core::FixedLambda;

fn main() {
    let args = BenchArgs::parse();
    let lambda_ms = 5_000i64;
    let num_labels = 3;
    let runs_per_point = if args.quick { 2 } else { 8 };
    let overlaps: &[f64] = &[1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.8];

    let mut report = Report::new(
        "fig06",
        "Relative errors and solution sizes vs overlap (|L|=3, lambda=5s, 10-min)",
    );
    report.note(format!(
        "per-label rate {OPT_FEASIBLE_PER_LABEL_PER_MIN}/min (OPT-feasible scale), {runs_per_point} label sets per overlap value"
    ));
    report
        .note("paper: Figures 6a-6d; GreedySC < Scan except near overlap 1 where Scan is optimal");

    let mut scatter = Table::new(
        "Per-run results (Fig 6a-c scatter)",
        &["overlap", "opt", "scan_err", "scanplus_err", "greedy_err"],
    );
    let mut sizes = Table::new(
        "Mean absolute solution sizes (Fig 6d)",
        &["overlap", "opt", "scan", "scanplus", "greedy"],
    );

    for (oi, &overlap) in overlaps.iter().enumerate() {
        let mut sums = [0f64; 4]; // opt, scan, scan+, greedy sizes
        let mut n_ok = 0usize;
        for r in 0..runs_per_point {
            let seed = args.seed + (oi * 1000 + r) as u64;
            let inst = mqd_bench::ten_minute_instance(
                num_labels,
                OPT_FEASIBLE_PER_LABEL_PER_MIN,
                overlap,
                seed,
            );
            let f = FixedLambda(lambda_ms);
            let opt = match solve_opt(&inst, lambda_ms, &OptConfig::default()) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("skipping seed {seed}: {e}");
                    continue;
                }
            };
            let scan = solve_scan(&inst, &f);
            let scanp = solve_scan_plus(&inst, &f, LabelOrder::Input);
            let greedy = solve_greedy_sc(&inst, &f);
            scatter.row(&[
                format!("{:.3}", inst.overlap_rate()),
                opt.size().to_string(),
                f3(scan.relative_error(opt.size())),
                f3(scanp.relative_error(opt.size())),
                f3(greedy.relative_error(opt.size())),
            ]);
            sums[0] += opt.size() as f64;
            sums[1] += scan.size() as f64;
            sums[2] += scanp.size() as f64;
            sums[3] += greedy.size() as f64;
            n_ok += 1;
        }
        if n_ok > 0 {
            let m = n_ok as f64;
            sizes.row(&[
                format!("{overlap:.1}"),
                f3(sums[0] / m),
                f3(sums[1] / m),
                f3(sums[2] / m),
                f3(sums[3] / m),
            ]);
        }
    }
    report.table(scatter);
    report.table(sizes);
    report.write_or_exit(&args.out);
}
