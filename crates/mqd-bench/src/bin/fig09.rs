//! Figure 9 — streaming relative solution-size errors for varying lambda,
//! one panel per decision delay tau ∈ {5, 10, 15} s (|L| = 2, 10-minute
//! slices).
//!
//! The baseline is the clairvoyant optimum: the static OPT over the same
//! interval (Section 7.2's definition of the streaming optimum).
//!
//! Paper expectation: errors grow with lambda; StreamGreedySC+ slightly
//! better than StreamGreedySC; greedy variants less stable than the Scan
//! variants.

use mqd_bench::{f3, BenchArgs, Report, Table, OPT_FEASIBLE_PER_LABEL_PER_MIN, STREAM_ENGINES};
use mqd_core::algorithms::{solve_opt, OptConfig};
use mqd_core::FixedLambda;

fn main() {
    let args = BenchArgs::parse();
    let num_labels = 2;
    let overlap = 1.25;
    let runs = if args.quick { 3 } else { 10 };
    let taus_s: &[i64] = &[5, 10, 15];
    let lambdas_s: &[i64] = &[5, 10, 15, 20, 25, 30];

    let mut report = Report::new(
        "fig09",
        "Streaming relative errors vs lambda, per tau panel (|L|=2, 10-min)",
    );
    report.note(format!(
        "per-label rate {OPT_FEASIBLE_PER_LABEL_PER_MIN}/min, overlap {overlap}, {runs} runs per point; baseline = static OPT"
    ));
    report.note("paper: Figures 9a-9c");

    for &tau_s in taus_s {
        // lint:allow(overflow-arith): experiment grid, seconds-to-ms on small literals
        let tau = tau_s * 1000;
        let mut t = Table::new(
            format!("Fig 9 panel: tau = {tau_s} s"),
            &[
                "lambda_s",
                "StreamScan",
                "StreamScan+",
                "StreamGreedySC",
                "StreamGreedySC+",
            ],
        );
        for &ls in lambdas_s {
            let lambda_ms = ls * 1000;
            let f = FixedLambda(lambda_ms);
            let mut errs = [0f64; 4];
            let mut n_ok = 0usize;
            for r in 0..runs {
                let seed = args.seed + (tau_s as usize * 10_000 + ls as usize * 100 + r) as u64;
                let inst = mqd_bench::ten_minute_instance(
                    num_labels,
                    OPT_FEASIBLE_PER_LABEL_PER_MIN,
                    overlap,
                    seed,
                );
                let opt = match solve_opt(&inst, lambda_ms, &OptConfig::default()) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("skipping seed {seed}: {e}");
                        continue;
                    }
                };
                for (i, name) in STREAM_ENGINES.iter().enumerate() {
                    let res = mqd_bench::run_stream_by_name(name, &inst, &f, tau);
                    debug_assert!(res.is_cover(&inst, &f), "{name} non-cover");
                    errs[i] += (res.size() as f64 - opt.size() as f64) / opt.size().max(1) as f64;
                }
                n_ok += 1;
            }
            let m = n_ok.max(1) as f64;
            t.row(&[
                ls.to_string(),
                f3(errs[0] / m),
                f3(errs[1] / m),
                f3(errs[2] / m),
                f3(errs[3] / m),
            ]);
        }
        report.table(t);
    }
    report.write_or_exit(&args.out);
}
