//! Table 1 — example topics with their highest-weight keywords.
//!
//! Pipeline: synthetic news corpus (RSS substitute) → collapsed-Gibbs LDA
//! (Mallet substitute) → per-topic top keywords. The paper shows two
//! example topics each for Sports and Politics; we print the same shape:
//! for each broad topic group, the extracted LDA topics and their top
//! keywords.

use mqd_bench::{BenchArgs, Report, Table};
use mqd_datagen::{generate_news, NewsConfig, BROAD_TOPICS};
use mqd_topics::{extract_topics, LdaConfig, LdaModel, Vocabulary};

fn main() {
    let args = BenchArgs::parse();
    let articles = if args.quick { 150 } else { 600 };
    let num_topics = if args.quick { 12 } else { 30 };
    let iters = if args.quick { 25 } else { 60 };

    let corpus = generate_news(&NewsConfig {
        articles,
        seed: args.seed,
        ..NewsConfig::default()
    });
    let mut vocab = Vocabulary::new();
    let docs: Vec<Vec<u32>> = corpus.iter().map(|a| vocab.intern_text(&a.text)).collect();
    let model = LdaModel::train(
        &docs,
        vocab.len(),
        LdaConfig {
            num_topics,
            iterations: iters,
            seed: args.seed,
            ..LdaConfig::default()
        },
    );
    let topics = extract_topics(&model, &vocab, 10);

    // Majority ground-truth broad topic per LDA topic.
    let mut votes = vec![[0u32; 10]; num_topics];
    for (d, a) in corpus.iter().enumerate() {
        votes[model.dominant_topic(d)][a.broad_topic] += 1;
    }

    let mut report = Report::new("table1", "Example topics with highest-weight keywords");
    report.note(format!(
        "corpus: {articles} synthetic news articles; LDA K={num_topics}, {iters} Gibbs sweeps"
    ));
    report.note(format!(
        "model quality: per-word perplexity {:.1} (uniform baseline = vocabulary size {})",
        model.perplexity(&docs),
        vocab.len()
    ));
    report.note(
        "paper used 1M+ RSS articles and Mallet with K=300, keeping top-40 keywords; \
         same pipeline at laptop scale",
    );

    let mut t = Table::new(
        "Extracted topics (top keywords), grouped by majority broad topic",
        &["broad topic", "LDA topic", "top keywords"],
    );
    for (k, topic) in topics.iter().enumerate() {
        let broad = (0..10).max_by_key(|&b| votes[k][b]).unwrap_or(0);
        let kws: Vec<&str> = topic
            .keywords
            .iter()
            .take(8)
            .map(|(w, _)| w.as_str())
            .collect();
        t.row(&[
            BROAD_TOPICS[broad].name.to_string(),
            format!("#{k}"),
            kws.join(" "),
        ]);
    }
    report.table(t);
    report.write_or_exit(&args.out);
}
