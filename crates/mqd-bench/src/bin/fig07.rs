//! Figure 7 — relative solution-size error of the approximation algorithms
//! for varying lambda (|L| = 2, 10-minute slices, exact OPT baseline).
//!
//! Paper expectation: all approximation errors grow with lambda (more
//! coverage choices make the problem harder); GreedySC stays below the
//! Scan variants, with up to ~60% improvement at lambda = 20–30 s.

use mqd_bench::{f3, BenchArgs, Report, Table, OPT_FEASIBLE_PER_LABEL_PER_MIN};
use mqd_core::algorithms::{
    solve_greedy_sc, solve_opt, solve_scan, solve_scan_plus, LabelOrder, OptConfig,
};
use mqd_core::FixedLambda;

fn main() {
    let args = BenchArgs::parse();
    let num_labels = 2;
    let overlap = 1.25;
    let runs = if args.quick { 3 } else { 12 };
    let lambdas_s: &[i64] = &[5, 10, 15, 20, 25, 30];

    let mut report = Report::new(
        "fig07",
        "Relative solution-size error vs lambda (|L|=2, 10-min slices)",
    );
    report.note(format!(
        "per-label rate {OPT_FEASIBLE_PER_LABEL_PER_MIN}/min (OPT-feasible scale), overlap {overlap}, {runs} label sets per lambda"
    ));
    report.note("paper: Figure 7; errors increase with lambda, GreedySC lowest");

    let mut t = Table::new(
        "Mean relative error vs OPT",
        &["lambda_s", "scan", "scanplus", "greedy", "opt_size"],
    );
    for &ls in lambdas_s {
        let lambda_ms = ls * 1000;
        let f = FixedLambda(lambda_ms);
        let mut errs = [0f64; 3];
        let mut opt_sum = 0f64;
        let mut n_ok = 0usize;
        for r in 0..runs {
            let seed = args.seed + (ls as usize * 100 + r) as u64;
            let inst = mqd_bench::ten_minute_instance(
                num_labels,
                OPT_FEASIBLE_PER_LABEL_PER_MIN,
                overlap,
                seed,
            );
            let opt = match solve_opt(&inst, lambda_ms, &OptConfig::default()) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("skipping seed {seed}: {e}");
                    continue;
                }
            };
            errs[0] += solve_scan(&inst, &f).relative_error(opt.size());
            errs[1] += solve_scan_plus(&inst, &f, LabelOrder::Input).relative_error(opt.size());
            errs[2] += solve_greedy_sc(&inst, &f).relative_error(opt.size());
            opt_sum += opt.size() as f64;
            n_ok += 1;
        }
        let m = n_ok.max(1) as f64;
        t.row(&[
            ls.to_string(),
            f3(errs[0] / m),
            f3(errs[1] / m),
            f3(errs[2] / m),
            f3(opt_sum / m),
        ]);
    }
    report.table(t);
    report.write_or_exit(&args.out);
}
