//! Figure 10 — streaming relative solution-size errors for varying decision
//! delay tau, one panel per lambda ∈ {10, 15, 20} s (|L| = 2, 10-minute
//! slices, static-OPT baseline).
//!
//! Paper expectation: the Scan variants stabilize once tau > lambda (they
//! then equal offline Scan); the greedy variants show a local error peak
//! when tau is slightly above 2*lambda and a minimum around tau = lambda
//! (the "in-between posts" effect of Section 7.2).

use mqd_bench::{f3, BenchArgs, Report, Table, OPT_FEASIBLE_PER_LABEL_PER_MIN, STREAM_ENGINES};
use mqd_core::algorithms::{solve_opt, OptConfig};
use mqd_core::FixedLambda;

fn main() {
    let args = BenchArgs::parse();
    let num_labels = 2;
    let overlap = 1.25;
    let runs = if args.quick { 3 } else { 10 };
    let lambdas_s: &[i64] = &[10, 15, 20];
    let taus_s: &[i64] = &[0, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50];

    let mut report = Report::new(
        "fig10",
        "Streaming relative errors vs tau, per lambda panel (|L|=2, 10-min)",
    );
    report.note(format!(
        "per-label rate {OPT_FEASIBLE_PER_LABEL_PER_MIN}/min, overlap {overlap}, {runs} runs per point; baseline = static OPT"
    ));
    report
        .note("paper: Figures 10a-10c; Scan stable for tau>lambda, greedy peak near tau≈2*lambda");

    for &ls in lambdas_s {
        let lambda_ms = ls * 1000;
        let f = FixedLambda(lambda_ms);
        let mut t = Table::new(
            format!("Fig 10 panel: lambda = {ls} s"),
            &[
                "tau_s",
                "StreamScan",
                "StreamScan+",
                "StreamGreedySC",
                "StreamGreedySC+",
            ],
        );
        for &tau_s in taus_s {
            // lint:allow(overflow-arith): experiment grid, seconds-to-ms on small literals
            let tau = tau_s * 1000;
            let mut errs = [0f64; 4];
            let mut n_ok = 0usize;
            for r in 0..runs {
                let seed = args.seed + (ls as usize * 10_000 + tau_s as usize * 100 + r) as u64;
                let inst = mqd_bench::ten_minute_instance(
                    num_labels,
                    OPT_FEASIBLE_PER_LABEL_PER_MIN,
                    overlap,
                    seed,
                );
                let opt = match solve_opt(&inst, lambda_ms, &OptConfig::default()) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("skipping seed {seed}: {e}");
                        continue;
                    }
                };
                for (i, name) in STREAM_ENGINES.iter().enumerate() {
                    let res = mqd_bench::run_stream_by_name(name, &inst, &f, tau);
                    debug_assert!(res.is_cover(&inst, &f), "{name} non-cover");
                    errs[i] += (res.size() as f64 - opt.size() as f64) / opt.size().max(1) as f64;
                }
                n_ok += 1;
            }
            let m = n_ok.max(1) as f64;
            t.row(&[
                tau_s.to_string(),
                f3(errs[0] / m),
                f3(errs[1] / m),
                f3(errs[2] / m),
                f3(errs[3] / m),
            ]);
        }
        report.table(t);
    }
    report.write_or_exit(&args.out);
}
