//! Runs every experiment binary in sequence (tables, figures, ablations),
//! forwarding the common flags. Binaries are located next to this
//! executable, so `cargo run --release -p mqd-bench --bin run_all` works
//! out of the box.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "fig06",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "ablation_greedy_heap",
    "ablation_scan_order",
    "ablation_variable_lambda",
    "opt_feasibility",
    "ext_geo",
    "ext_multiuser",
    "ext_adaptive_lambda",
];

fn main() {
    let forwarded: Vec<String> = std::env::args().skip(1).collect();
    let self_path = mqd_bench::must(std::env::current_exe(), "current_exe");
    let dir = mqd_bench::must(self_path.parent().ok_or("no parent directory"), "bin dir");

    let mut failures = Vec::new();
    for exp in EXPERIMENTS {
        let bin = dir.join(exp);
        println!("\n================ {exp} ================");
        let status = Command::new(&bin).args(&forwarded).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{exp} exited with {s}");
                failures.push(*exp);
            }
            Err(e) => {
                eprintln!("{exp} failed to launch from {}: {e}", bin.display());
                failures.push(*exp);
            }
        }
    }
    if failures.is_empty() {
        println!("\nall {} experiments completed", EXPERIMENTS.len());
    } else {
        eprintln!("\nfailed experiments: {failures:?}");
        std::process::exit(1);
    }
}
