//! Figure 12 — streaming solution sizes on one day of tweets vs |L|,
//! with tau = 30 s, one panel per lambda ∈ {10, 30} minutes.
//!
//! Paper expectation: same ordering as Figure 8; StreamGreedySC beats
//! StreamGreedySC+ at large lambda.

use mqd_bench::{BenchArgs, Report, Table, CALIBRATED_PER_LABEL_PER_MIN, STREAM_ENGINES};
use mqd_core::FixedLambda;
use mqd_datagen::MINUTE_MS;

fn main() {
    let args = BenchArgs::parse();
    let scale = args.effective_scale();
    let tau = 30_000i64;
    let sizes: &[usize] = &[2, 5, 10, 20];
    let lambdas_min: &[i64] = &[10, 30];

    let mut report = Report::new(
        "fig12",
        "Streaming solution sizes on one day vs |L| (tau = 30 s)",
    );
    report.note(format!(
        "calibrated per-label rate {CALIBRATED_PER_LABEL_PER_MIN}/min, overlap 1.15, day-scale {scale}"
    ));
    report.note("paper: Figures 12a-12b");

    for &lm in lambdas_min {
        // lint:allow(overflow-arith): experiment grid, minutes-to-ms on small literals
        let lambda = FixedLambda(lm * MINUTE_MS);
        let mut t = Table::new(
            format!("Fig 12 panel: lambda = {lm} minutes"),
            &[
                "|L|",
                "posts",
                "StreamScan",
                "StreamScan+",
                "StreamGreedySC",
                "StreamGreedySC+",
            ],
        );
        for &l in sizes {
            let inst = mqd_bench::day_instance(
                l,
                CALIBRATED_PER_LABEL_PER_MIN,
                1.15,
                args.seed + l as u64,
                scale,
            );
            let mut cells = vec![l.to_string(), inst.len().to_string()];
            for name in STREAM_ENGINES {
                let res = mqd_bench::run_stream_by_name(name, &inst, &lambda, tau);
                debug_assert!(res.is_cover(&inst, &lambda), "{name} non-cover");
                cells.push(res.size().to_string());
            }
            t.row(&cells);
        }
        report.table(t);
    }
    report.write_or_exit(&args.out);
}
