//! Figure 8 — absolute solution sizes on one day of tweets for varying
//! label-set size |L|, at lambda = 10 and 30 minutes.
//!
//! Paper expectation: Scan grows linearly in |L| (it handles labels
//! independently); GreedySC outperforms both Scan variants, increasingly so
//! for larger |L|.

use mqd_bench::{BenchArgs, Report, Table, CALIBRATED_PER_LABEL_PER_MIN};
use mqd_core::algorithms::{solve_greedy_sc, solve_scan, solve_scan_plus, LabelOrder};
use mqd_core::{coverage, FixedLambda};
use mqd_datagen::MINUTE_MS;

fn main() {
    let args = BenchArgs::parse();
    let scale = args.effective_scale();
    let sizes: &[usize] = &[2, 5, 10, 20];
    let lambdas_min: &[i64] = &[10, 30];

    let mut report = Report::new(
        "fig08",
        "Solution sizes on one day of tweets vs |L| (lambda = 10 / 30 min)",
    );
    report.note(format!(
        "calibrated per-label rate {CALIBRATED_PER_LABEL_PER_MIN}/min, overlap 1.15, day-scale {scale}"
    ));
    report.note("paper: Figures 8a-8b; Scan linear in |L|, GreedySC best and gap widens with |L|");

    for &lm in lambdas_min {
        // lint:allow(overflow-arith): experiment grid, minutes-to-ms on small literals
        let lambda = FixedLambda(lm * MINUTE_MS);
        let mut t = Table::new(
            format!("Fig 8 panel: lambda = {lm} minutes"),
            &["|L|", "posts", "scan", "scanplus", "greedy"],
        );
        for &l in sizes {
            let inst = mqd_bench::day_instance(
                l,
                CALIBRATED_PER_LABEL_PER_MIN,
                1.15,
                args.seed + l as u64,
                scale,
            );
            let scan = solve_scan(&inst, &lambda);
            let scanp = solve_scan_plus(&inst, &lambda, LabelOrder::Input);
            let greedy = solve_greedy_sc(&inst, &lambda);
            for s in [&scan, &scanp, &greedy] {
                debug_assert!(coverage::is_cover(&inst, &lambda, &s.selected));
            }
            t.row(&[
                l.to_string(),
                inst.len().to_string(),
                scan.size().to_string(),
                scanp.size().to_string(),
                greedy.size().to_string(),
            ]);
        }
        report.table(t);
    }
    report.write_or_exit(&args.out);
}
