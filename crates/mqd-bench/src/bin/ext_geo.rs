//! Extension experiment — spatiotemporal MQDP (the paper's Section 9
//! future work): solution sizes and per-post time of the greedy set-cover
//! solver vs the per-label time-sweep heuristic, across spatial thresholds,
//! on hotspot-clustered geo streams.
//!
//! Expectation: with a large spatial threshold the problem degenerates to
//! 1-D MQDP and the two nearly tie; as the threshold shrinks below the
//! hotspot spread, solutions grow (each hotspot needs its own
//! representatives) and greedy's cross-label/cross-hotspot choices beat the
//! sweep.

use mqd_bench::{f1, f3, BenchArgs, Report, Table};
use mqd_geo::{
    generate_geo_posts, solve_geo_greedy, solve_geo_sweep, GeoInstance, GeoLambda, GeoStreamConfig,
};

fn main() {
    let args = BenchArgs::parse();
    let posts_n = if args.quick { 400 } else { 2_000 };
    let dists: &[i64] = &[100, 300, 1_000, 5_000, 50_000];
    let runs = if args.quick { 2 } else { 5 };

    let mut report = Report::new(
        "ext_geo",
        "Spatiotemporal extension: greedy vs time-sweep across spatial thresholds",
    );
    report.note(format!(
        "{posts_n} posts, 4 hotspots (spread 300), 3 labels, lambda.time = 5 min, {runs} runs per point"
    ));

    let mut t = Table::new(
        "Mean solution sizes and per-post time",
        &[
            "lambda_dist",
            "greedy_size",
            "sweep_size",
            "greedy_us",
            "sweep_us",
        ],
    );
    for &d in dists {
        let mut sums = [0f64; 4];
        for r in 0..runs {
            let posts = generate_geo_posts(&GeoStreamConfig {
                posts: posts_n,
                seed: args.seed + r as u64,
                ..Default::default()
            });
            let inst = GeoInstance::new(posts, 3, GeoLambda::new(300_000, d));
            let (g, dg) = mqd_bench::time_it(|| solve_geo_greedy(&inst));
            let (s, ds) = mqd_bench::time_it(|| solve_geo_sweep(&inst));
            assert!(inst.is_cover(&g.selected), "greedy non-cover");
            assert!(inst.is_cover(&s.selected), "sweep non-cover");
            sums[0] += g.size() as f64;
            sums[1] += s.size() as f64;
            sums[2] += mqd_bench::micros_per_post(inst.len(), dg);
            sums[3] += mqd_bench::micros_per_post(inst.len(), ds);
        }
        let m = runs as f64;
        t.row(&[
            d.to_string(),
            f1(sums[0] / m),
            f1(sums[1] / m),
            f3(sums[2] / m),
            f3(sums[3] / m),
        ]);
    }
    report.table(t);
    report.write_or_exit(&args.out);
}
