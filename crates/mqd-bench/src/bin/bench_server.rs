//! Serving-layer benchmark: end-to-end `QUERY` latency and throughput
//! through a loopback `mqd-server`, in two modes.
//!
//! * **isolated** — the PR 4 shape, kept byte-for-byte comparable with the
//!   pinned `baseline_pr4` trajectory: ingest the whole corpus up front,
//!   then hammer it with concurrent clients issuing a 50/50 mix of pooled
//!   (cache-hitting) and random specs.
//! * **interleaved** — the shape the incremental-repair work exists for:
//!   preload 75% of the corpus, then mix a paced writer (`--interleave`
//!   rows/sec, default 200) into the query phase. Queries draw from a
//!   dedicated pool that is mostly fixed-lambda Scan (repaired in place on
//!   every ingest) plus two non-repairable specs whose range covers the
//!   early interleaved window, so stale-but-bounded serving and background
//!   refresh show up in the counters too.
//!
//! Reports client-observed p50/p95/p99 latency (through the shared
//! [`mqd_load::Hist`] log-bucketed histogram, the same percentile math the
//! open-loop harness uses), aggregate qps, typed error/`-OVERLOADED`
//! tallies, and the number of `"stale":true` responses per mode, and
//! writes `BENCH_server.json` at the working-directory root (repo root
//! when run via `cargo run`) with both modes plus the pre-repair PR 4
//! trajectory. `--quick` shrinks clients, queries, and corpus for a CI
//! smoke run.
//!
//! All numbers here — including the pinned `baseline_pr4` block — are
//! **closed-loop**: each client waits for a response before sending the
//! next query, so queueing hides in think-time and the percentiles say
//! nothing about behavior at a fixed offered rate (coordinated omission).
//! Open-loop SLO evidence lives in `BENCH_load_<scenario>.json` via
//! `mqdiv load`.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use mqd_bench::{must, BenchArgs};
use mqd_core::record::Record;
use mqd_load::Hist;
use mqd_rng::{RngExt, SeedableRng, StdRng};
use mqd_server::{format_query, Client, Server, ServerConfig};
use mqd_store::{Algorithm, QuerySpec};
use mqd_wal::{DurableOptions, DurableStore};

const NUM_LABELS: u16 = 6;

fn corpus(seed: u64, rows: usize) -> Vec<Record> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5e2e);
    let mut value = 0i64;
    (0..rows)
        .map(|i| {
            value += rng.random_range(0..250i64); // ~8 posts/sec, ties included
            let k = rng.random_range(1..=3usize);
            let labels = (0..k).map(|_| rng.random_range(0..NUM_LABELS)).collect();
            Record {
                id: i as u64,
                value,
                labels,
            }
        })
        .collect()
}

fn random_labels(rng: &mut StdRng) -> Vec<u16> {
    let mut labels: Vec<u16> = (0..NUM_LABELS)
        .filter(|_| rng.random::<f64>() < 0.5)
        .collect();
    if labels.is_empty() {
        labels.push(rng.random_range(0..NUM_LABELS));
    }
    labels
}

fn random_spec(rng: &mut StdRng, span: i64) -> QuerySpec {
    let algs = [Algorithm::GreedySc, Algorithm::Scan, Algorithm::ScanPlus];
    let labels = random_labels(rng);
    let (from, to) = if rng.random::<f64>() < 0.2 {
        let a = rng.random_range(0..span.max(1));
        let b = rng.random_range(0..span.max(1));
        (a.min(b), a.max(b))
    } else {
        (i64::MIN, i64::MAX)
    };
    QuerySpec {
        labels,
        lambda: rng.random_range(1_000..10_000i64),
        proportional: rng.random::<f64>() < 0.2,
        algorithm: algs[rng.random_range(0..algs.len())],
        from,
        to,
    }
}

/// The interleaved-mode pool: 14 fixed-lambda full-range Scan specs (the
/// repairable hot path — large lambda keeps covers small enough that a
/// cache hit is dominated by the wire round-trip, not rendering) plus two
/// non-repairable specs range-bounded to the early interleaved window, so
/// they go stale and get background-refreshed while the window is live and
/// revalidate by footprint miss afterwards.
fn interleaved_pool(seed: u64, early_to: i64) -> Vec<QuerySpec> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1A7E);
    let mut pool: Vec<QuerySpec> = (0..14)
        .map(|_| QuerySpec {
            labels: random_labels(&mut rng),
            lambda: rng.random_range(100_000..400_000i64),
            proportional: false,
            algorithm: Algorithm::Scan,
            from: i64::MIN,
            to: i64::MAX,
        })
        .collect();
    pool.push(QuerySpec {
        labels: random_labels(&mut rng),
        lambda: rng.random_range(100_000..400_000i64),
        proportional: false,
        algorithm: Algorithm::ScanPlus,
        from: i64::MIN,
        to: early_to,
    });
    pool.push(QuerySpec {
        labels: random_labels(&mut rng),
        lambda: rng.random_range(100_000..400_000i64),
        proportional: true,
        algorithm: Algorithm::Scan,
        from: i64::MIN,
        to: early_to,
    });
    pool
}

/// Bucket-quantized percentile from the shared histogram, in ms.
fn pct_ms(hist: &Hist, p: f64) -> f64 {
    hist.value_at_percentile(p) as f64 / 1e3
}

/// One mode's results, as recorded in `BENCH_server.json`.
struct ModeReport {
    clients: usize,
    queries_per_client: usize,
    total_queries: usize,
    preload_rows: usize,
    interleaved_rows: usize,
    interleave_rate: f64,
    preload_ms: f64,
    wall_s: f64,
    qps: f64,
    /// Client-observed request-to-response latency, µs.
    hist: Hist,
    ok_responses: u64,
    error_responses: u64,
    overloaded_responses: u64,
    stale_responses: u64,
    server_stats: String,
}

struct ModeConfig {
    name: &'static str,
    clients: usize,
    queries_per_client: usize,
    /// Explicit worker-thread count; 0 uses the server default.
    threads: usize,
    /// Rows preloaded over `INGESTB` before the query phase.
    preload_rows: usize,
    /// Paced single-`INGEST` writer during the query phase (rows/sec);
    /// 0.0 means no writer (isolated mode).
    interleave_rate: f64,
}

fn run_mode(cfg: &ModeConfig, rows: &[Record], seed: u64) -> ModeReport {
    let (preload, tail) = rows.split_at(cfg.preload_rows.min(rows.len()));
    let full_span = rows.last().map(|r| r.value).unwrap_or(0);
    let preload_span = preload.last().map(|r| r.value).unwrap_or(0);

    let server = must(
        Server::bind(&ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: cfg.threads,
            max_queue: cfg.clients * 2 + 4,
            ..ServerConfig::default()
        }),
        "bind loopback server",
    );
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || must(server.run(), "server run"));

    // Preload over the wire, in MQDL batches.
    let preload_start = Instant::now();
    let mut feeder = must(Client::connect(addr), "connect feeder");
    for chunk in preload.chunks(4_096) {
        let resp = must(feeder.ingest_batch(chunk), "ingest batch");
        assert!(resp.is_ok(), "ingest rejected: {}", resp.status);
    }
    let preload_ms = preload_start.elapsed().as_secs_f64() * 1e3;
    // Release the feeder's worker before the sweep: a worker owns its
    // connection, so an idle-but-open client shrinks the effective pool.
    drop(feeder);

    let pool: Vec<QuerySpec> = if cfg.interleave_rate > 0.0 {
        // The first eighth of the interleaved value range: the window the
        // two non-repairable pool specs stay footprint-sensitive in.
        let early_to =
            preload_span.saturating_add((full_span.saturating_sub(preload_span) / 8).max(1));
        interleaved_pool(seed, early_to)
    } else {
        let mut pool_rng = StdRng::seed_from_u64(seed ^ 0x9001);
        (0..16)
            .map(|_| random_spec(&mut pool_rng, preload_span))
            .collect()
    };

    println!(
        "bench_server[{}]: {} rows preloaded in {:.1} ms, {} clients x {} queries, \
         writer {} rows @ {:.0}/s, addr {}",
        cfg.name,
        preload.len(),
        preload_ms,
        cfg.clients,
        cfg.queries_per_client,
        tail.len(),
        cfg.interleave_rate,
        addr
    );

    let stop = AtomicBool::new(false);
    let sweep_start = Instant::now();
    let (hist, tallies, interleaved_rows) = std::thread::scope(|scope| {
        let writer = (cfg.interleave_rate > 0.0 && !tail.is_empty()).then(|| {
            let stop = &stop;
            let rate = cfg.interleave_rate;
            scope.spawn(move || {
                let mut w = must(Client::connect(addr), "connect writer");
                let interval = Duration::from_secs_f64(1.0 / rate);
                let mut next = Instant::now();
                let mut sent = 0usize;
                for row in tail {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let labels: Vec<String> = row.labels.iter().map(|l| l.to_string()).collect();
                    let resp = must(
                        w.request(&format!(
                            "INGEST {} {} {}",
                            row.id,
                            row.value,
                            labels.join(",")
                        )),
                        "interleaved ingest",
                    );
                    assert!(resp.is_ok(), "interleaved ingest rejected: {}", resp.status);
                    sent += 1;
                    next += interval;
                    let now = Instant::now();
                    if next > now {
                        std::thread::sleep(next - now);
                    }
                }
                sent
            })
        });

        let handles: Vec<_> = (0..cfg.clients)
            .map(|c| {
                let pool = &pool;
                let interleaved = cfg.interleave_rate > 0.0;
                let qpc = cfg.queries_per_client;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed ^ 0xC11E47 ^ (c as u64) << 17);
                    let mut client = must(Client::connect(addr), "connect client");
                    let mut hist = Hist::new();
                    let mut tallies = [0u64; 4]; // ok, error, overloaded, stale
                    for _ in 0..qpc {
                        // Interleaved mode queries pool-only: the point is
                        // the hit path under ingest pressure, not cold
                        // solves. Isolated keeps the PR 4 50/50 mix.
                        let spec = if interleaved || rng.random::<f64>() < 0.5 {
                            pool[rng.random_range(0..pool.len())].clone()
                        } else {
                            random_spec(&mut rng, preload_span)
                        };
                        let t0 = Instant::now();
                        let (resp, _rows) = must(client.query(&spec), "query");
                        hist.record(t0.elapsed().as_micros().min(u64::MAX as u128) as u64);
                        if resp.is_ok() {
                            tallies[0] += 1;
                        } else if resp.status.starts_with("-OVERLOADED") {
                            tallies[2] += 1;
                        } else {
                            tallies[1] += 1;
                            eprintln!("bench_server: {} -> {}", format_query(&spec), resp.status);
                        }
                        if resp.status.contains("\"stale\":true") {
                            tallies[3] += 1;
                        }
                    }
                    (hist, tallies)
                })
            })
            .collect();

        let mut hist = Hist::new();
        let mut tallies = [0u64; 4];
        for h in handles {
            // lint:allow(blocking-call,panic-path): bounded — each client runs a fixed queries_per_client loop; a panicked child is unrecoverable harness state
            let (hh, tt) = h.join().expect("client thread");
            hist.merge(&hh);
            for (a, b) in tallies.iter_mut().zip(tt) {
                *a += b;
            }
        }
        stop.store(true, Ordering::Relaxed);
        let sent = writer
            // lint:allow(blocking-call,panic-path): bounded — the writer stops at the stop flag (set just above) or the end of `tail`
            .map(|h| h.join().expect("writer thread"))
            .unwrap_or(0);
        (hist, tallies, sent)
    });
    let wall_s = sweep_start.elapsed().as_secs_f64();

    let total = hist.count() as usize;
    let (p50, p95, p99) = (
        pct_ms(&hist, 50.0),
        pct_ms(&hist, 95.0),
        pct_ms(&hist, 99.0),
    );
    let qps = total as f64 / wall_s;

    // Pull the server-side cache/served counters, then drain.
    let mut feeder = must(Client::connect(addr), "reconnect for stats");
    let stats = must(feeder.request("STATS"), "stats");
    assert!(stats.is_ok());
    let server_stats = stats.status.trim_start_matches("+OK ").to_string();
    let drain = must(feeder.request("DRAIN"), "drain");
    assert!(drain.is_ok());
    // lint:allow(blocking-call,panic-path): bounded — the acknowledged DRAIN above makes the server's run loop return
    server_thread.join().expect("server thread");

    let [ok, errors, overloaded, stale] = tallies;
    println!(
        "bench_server[{}]: {total} queries in {wall_s:.2}s: {qps:.0} qps, \
         p50 {p50:.2} ms, p95 {p95:.2} ms, p99 {p99:.2} ms, \
         {ok} ok / {errors} error / {overloaded} overloaded / {stale} stale, \
         {interleaved_rows} rows interleaved",
        cfg.name
    );
    println!("bench_server[{}]: server stats: {server_stats}", cfg.name);

    ModeReport {
        clients: cfg.clients,
        queries_per_client: cfg.queries_per_client,
        total_queries: total,
        preload_rows: preload.len(),
        interleaved_rows,
        interleave_rate: cfg.interleave_rate,
        preload_ms,
        wall_s,
        qps,
        hist,
        ok_responses: ok,
        error_responses: errors,
        overloaded_responses: overloaded,
        stale_responses: stale,
        server_stats,
    }
}

fn mode_json(r: &ModeReport) -> String {
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "      \"clients\": {},", r.clients);
    let _ = writeln!(j, "      \"queries_per_client\": {},", r.queries_per_client);
    let _ = writeln!(j, "      \"total_queries\": {},", r.total_queries);
    let _ = writeln!(j, "      \"preload_rows\": {},", r.preload_rows);
    let _ = writeln!(j, "      \"interleaved_rows\": {},", r.interleaved_rows);
    let _ = writeln!(j, "      \"interleave_rate\": {:.1},", r.interleave_rate);
    let _ = writeln!(j, "      \"preload_ms\": {:.1},", r.preload_ms);
    let _ = writeln!(j, "      \"wall_s\": {:.3},", r.wall_s);
    let _ = writeln!(j, "      \"qps\": {:.1},", r.qps);
    let _ = writeln!(
        j,
        "      \"latency_ms\": {{\"p50\": {:.3}, \"p95\": {:.3}, \"p99\": {:.3}}},",
        pct_ms(&r.hist, 50.0),
        pct_ms(&r.hist, 95.0),
        pct_ms(&r.hist, 99.0)
    );
    let _ = writeln!(j, "      \"latency_us\": {},", r.hist.to_json());
    let _ = writeln!(j, "      \"ok_responses\": {},", r.ok_responses);
    let _ = writeln!(j, "      \"error_responses\": {},", r.error_responses);
    let _ = writeln!(
        j,
        "      \"overloaded_responses\": {},",
        r.overloaded_responses
    );
    let _ = writeln!(j, "      \"stale_responses\": {},", r.stale_responses);
    let _ = writeln!(j, "      \"server_stats\": {}", r.server_stats);
    j.push_str("    }");
    j
}

/// One durable-ingest leg: WAL-append + ack-barrier `sync()` per row, the
/// exact per-request path `mqdiv serve --data-dir` takes.
struct DurableLeg {
    rows: usize,
    wall_s: f64,
    rows_per_s: f64,
    us_per_append: f64,
}

fn durable_ingest(dir: &std::path::Path, rows: &[Record], fsync: bool) -> DurableLeg {
    let _ = std::fs::remove_dir_all(dir);
    let store = DurableStore::open(
        dir,
        &DurableOptions {
            fsync,
            // Keep every row in the WAL (no sealing) so the recovery leg
            // below times a pure WAL-tail replay.
            segment_rows: usize::MAX,
            retain: None,
        },
    );
    let mut store = must(store, "open durable dir");
    let t0 = Instant::now();
    for row in rows {
        must(store.append(row), "append");
        must(store.sync(), "ack barrier");
    }
    let wall_s = t0.elapsed().as_secs_f64();
    DurableLeg {
        rows: rows.len(),
        wall_s,
        rows_per_s: rows.len() as f64 / wall_s,
        us_per_append: wall_s * 1e6 / rows.len().max(1) as f64,
    }
}

fn leg_json(l: &DurableLeg) -> String {
    format!(
        "{{\"rows\": {}, \"wall_s\": {:.3}, \"rows_per_s\": {:.0}, \"us_per_append\": {:.2}}}",
        l.rows, l.wall_s, l.rows_per_s, l.us_per_append
    )
}

/// The durability tax and the recovery bill, measured through the same
/// `DurableStore` API the server uses: fsync-per-ack ingest vs `--no-fsync`,
/// then a cold reopen of the no-fsync leg's WAL (100k rows in the full run).
fn run_durable(seed: u64, quick: bool) -> String {
    let (fsync_rows, nofsync_rows) = if quick {
        (200usize, 10_000usize)
    } else {
        (2_000usize, 100_000usize)
    };
    let rows = corpus(seed ^ 0xD07A, nofsync_rows.max(fsync_rows));
    let base = std::env::temp_dir().join(format!("mqd-bench-durable-{}", std::process::id()));

    // lint:allow(panic-path): corpus() above returns max(fsync, nofsync) rows
    let fsync_leg = durable_ingest(&base.join("fsync"), &rows[..fsync_rows], true);
    println!(
        "bench_server[durable]: fsync ingest {} rows in {:.2}s ({:.0} rows/s, {:.1} us/append)",
        fsync_leg.rows, fsync_leg.wall_s, fsync_leg.rows_per_s, fsync_leg.us_per_append
    );
    let nofsync_dir = base.join("nofsync");
    // lint:allow(panic-path): corpus() above returns max(fsync, nofsync) rows
    let nofsync_leg = durable_ingest(&nofsync_dir, &rows[..nofsync_rows], false);
    println!(
        "bench_server[durable]: no-fsync ingest {} rows in {:.2}s ({:.0} rows/s, {:.1} us/append)",
        nofsync_leg.rows, nofsync_leg.wall_s, nofsync_leg.rows_per_s, nofsync_leg.us_per_append
    );

    let wal_bytes = std::fs::metadata(nofsync_dir.join("wal"))
        .map(|m| m.len())
        .unwrap_or(0);
    let t0 = Instant::now();
    let recovered = DurableStore::open(
        &nofsync_dir,
        &DurableOptions {
            fsync: false,
            segment_rows: usize::MAX,
            retain: None,
        },
    );
    let recovered = must(recovered, "recover");
    let rec_s = t0.elapsed().as_secs_f64();
    let rec_rows = recovered.durable_stats().recovered_rows;
    assert_eq!(
        rec_rows as usize, nofsync_rows,
        "recovery must replay every row"
    );
    println!(
        "bench_server[durable]: recovered {rec_rows} rows ({wal_bytes} WAL bytes) in {rec_s:.3}s"
    );
    let _ = std::fs::remove_dir_all(&base);

    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "    \"fsync\": {},", leg_json(&fsync_leg));
    let _ = writeln!(j, "    \"no_fsync\": {},", leg_json(&nofsync_leg));
    let _ = writeln!(
        j,
        "    \"recovery\": {{\"rows\": {}, \"wal_bytes\": {}, \"wall_s\": {:.3}, \"rows_per_s\": {:.0}}}",
        rec_rows,
        wal_bytes,
        rec_s,
        rec_rows as f64 / rec_s.max(1e-9)
    );
    j.push_str("  }");
    j
}

fn main() {
    let args = BenchArgs::parse();
    let (clients, isolated_qpc, interleaved_qpc, corpus_rows) = if args.quick {
        (8usize, 20usize, 40usize, 2_000usize)
    } else {
        (64usize, 50usize, 500usize, 20_000usize)
    };
    let rows = corpus(args.seed, corpus_rows);

    // Mode 1: the PR 4 shape, for trajectory comparison against the pinned
    // pre-repair baseline below. The default (1-cpu-floored) worker pool is
    // deliberately kept: the multi-second tail it produces under 64
    // persistent connections is part of the trajectory being compared.
    let isolated = run_mode(
        &ModeConfig {
            name: "isolated",
            clients,
            queries_per_client: isolated_qpc,
            threads: 0,
            preload_rows: rows.len(),
            interleave_rate: 0.0,
        },
        &rows,
        args.seed,
    );

    // Mode 2: ingest mixed into the query phase. One worker per connection
    // (clients + writer + a spare) so latency measures the serving path,
    // not connection queueing.
    let interleaved = run_mode(
        &ModeConfig {
            name: "interleaved",
            clients,
            queries_per_client: interleaved_qpc,
            threads: clients + 2,
            preload_rows: rows.len() * 3 / 4,
            interleave_rate: args.interleave,
        },
        &rows,
        args.seed,
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"server_loopback\",");
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"quick\": {},", args.quick);
    let _ = writeln!(json, "  \"corpus_rows\": {},", rows.len());
    let _ = writeln!(json, "  \"num_labels\": {NUM_LABELS},");
    let _ = writeln!(
        json,
        "  \"host_cpus\": {},",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    let _ = writeln!(
        json,
        "  \"methodology\": \"closed-loop: clients wait for each response before sending \
         the next query, so queueing hides in think-time and percentiles say nothing about \
         a fixed offered rate (coordinated omission). baseline_pr4 was measured the same way. \
         Open-loop SLO evidence: BENCH_load_<scenario>.json via mqdiv load.\","
    );
    // The pre-repair trajectory (PR 4, this host): every ingest bumped the
    // store generation and the next hit on each cached entry re-solved
    // from scratch, so the tail was dominated by multi-second re-solve
    // convoys. Pinned here so the repair win stays visible in one file.
    json.push_str("  \"baseline_pr4\": {\n");
    let _ = writeln!(json, "    \"mode\": \"isolated\",");
    let _ = writeln!(json, "    \"total_queries\": 3200,");
    let _ = writeln!(json, "    \"corpus_rows\": 20000,");
    let _ = writeln!(json, "    \"wall_s\": 10.506,");
    let _ = writeln!(json, "    \"qps\": 304.6,");
    let _ = writeln!(
        json,
        "    \"latency_ms\": {{\"p50\": 10.790, \"p95\": 40.592, \"p99\": 4124.069}}"
    );
    json.push_str("  },\n");
    json.push_str("  \"modes\": {\n");
    let _ = writeln!(json, "    \"isolated\": {},", mode_json(&isolated));
    let _ = writeln!(json, "    \"interleaved\": {}", mode_json(&interleaved));
    json.push_str("  },\n");
    let _ = writeln!(
        json,
        "  \"durable\": {}",
        run_durable(args.seed, args.quick)
    );
    json.push_str("}\n");

    let path = "BENCH_server.json";
    must(std::fs::write(path, &json), "write BENCH_server.json");
    println!("wrote {path}");
}
