//! Serving-layer benchmark: end-to-end `QUERY` latency and throughput
//! through a loopback `mqd-server`.
//!
//! Spins an in-process server, ingests a seeded corpus over the wire
//! (`INGESTB` batches), then hammers it with concurrent clients, each
//! issuing a deterministic mix of solver / label-subset / range /
//! variable-lambda queries. Half the mix is drawn from a small shared
//! pool so the generation-invalidated cover cache sees repeats.
//!
//! Reports client-observed p50/p95/p99 latency and aggregate qps, and
//! writes `BENCH_server.json` at the working-directory root (repo root
//! when run via `cargo run`). `--quick` shrinks to 8 clients x 20
//! queries on a smaller corpus.

use std::fmt::Write as _;
use std::time::Instant;

use mqd_bench::BenchArgs;
use mqd_core::record::Record;
use mqd_rng::{RngExt, SeedableRng, StdRng};
use mqd_server::{format_query, Client, Server, ServerConfig};
use mqd_store::{Algorithm, QuerySpec};

const NUM_LABELS: u16 = 6;

fn corpus(seed: u64, rows: usize) -> Vec<Record> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5e2e);
    let mut value = 0i64;
    (0..rows)
        .map(|i| {
            value += rng.random_range(0..250i64); // ~8 posts/sec, ties included
            let k = rng.random_range(1..=3usize);
            let labels = (0..k).map(|_| rng.random_range(0..NUM_LABELS)).collect();
            Record {
                id: i as u64,
                value,
                labels,
            }
        })
        .collect()
}

fn random_spec(rng: &mut StdRng, span: i64) -> QuerySpec {
    let algs = [Algorithm::GreedySc, Algorithm::Scan, Algorithm::ScanPlus];
    let mut labels: Vec<u16> = (0..NUM_LABELS)
        .filter(|_| rng.random::<f64>() < 0.5)
        .collect();
    if labels.is_empty() {
        labels.push(rng.random_range(0..NUM_LABELS));
    }
    let (from, to) = if rng.random::<f64>() < 0.2 {
        let a = rng.random_range(0..span.max(1));
        let b = rng.random_range(0..span.max(1));
        (a.min(b), a.max(b))
    } else {
        (i64::MIN, i64::MAX)
    };
    QuerySpec {
        labels,
        lambda: rng.random_range(1_000..10_000i64),
        proportional: rng.random::<f64>() < 0.2,
        algorithm: algs[rng.random_range(0..algs.len())],
        from,
        to,
    }
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn main() {
    let args = BenchArgs::parse();
    let (clients, queries_per_client, corpus_rows) = if args.quick {
        (8usize, 20usize, 2_000usize)
    } else {
        (64usize, 50usize, 20_000usize)
    };
    let rows = corpus(args.seed, corpus_rows);
    let span = rows.last().map(|r| r.value).unwrap_or(0);

    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 0,
        max_queue: clients * 2,
    })
    .expect("bind loopback server");
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));

    // Ingest the corpus over the wire, in MQDL batches.
    let ingest_start = Instant::now();
    let mut feeder = Client::connect(addr).expect("connect feeder");
    for chunk in rows.chunks(4_096) {
        let resp = feeder.ingest_batch(chunk).expect("ingest batch");
        assert!(resp.is_ok(), "ingest rejected: {}", resp.status);
    }
    let ingest_ms = ingest_start.elapsed().as_secs_f64() * 1e3;
    // Release the feeder's worker before the sweep: a worker owns its
    // connection, so an idle-but-open client shrinks the effective pool.
    drop(feeder);

    // A small shared pool: repeated specs exercise the cover cache.
    let mut pool_rng = StdRng::seed_from_u64(args.seed ^ 0x9001);
    let pool: Vec<QuerySpec> = (0..16).map(|_| random_spec(&mut pool_rng, span)).collect();

    println!(
        "bench_server: {} rows ingested in {:.1} ms, {} clients x {} queries, addr {}",
        rows.len(),
        ingest_ms,
        clients,
        queries_per_client,
        addr
    );

    let sweep_start = Instant::now();
    let mut latencies_ms: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let pool = &pool;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(args.seed ^ 0xC11E47 ^ (c as u64) << 17);
                    let mut client = Client::connect(addr).expect("connect client");
                    let mut lat = Vec::with_capacity(queries_per_client);
                    for _ in 0..queries_per_client {
                        let spec = if rng.random::<f64>() < 0.5 {
                            pool[rng.random_range(0..pool.len())].clone()
                        } else {
                            random_spec(&mut rng, span)
                        };
                        let t0 = Instant::now();
                        let (resp, _rows) = client.query(&spec).expect("query");
                        lat.push(t0.elapsed().as_secs_f64() * 1e3);
                        assert!(resp.is_ok(), "{} -> {}", format_query(&spec), resp.status);
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall_s = sweep_start.elapsed().as_secs_f64();

    let total = latencies_ms.len();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p50 = percentile(&latencies_ms, 50.0);
    let p95 = percentile(&latencies_ms, 95.0);
    let p99 = percentile(&latencies_ms, 99.0);
    let qps = total as f64 / wall_s;

    // Pull the server-side cache/served counters, then drain.
    let mut feeder = Client::connect(addr).expect("reconnect for stats");
    let stats = feeder.request("STATS").expect("stats");
    assert!(stats.is_ok());
    let stats_json = stats.status.trim_start_matches("+OK ").to_string();
    let drain = feeder.request("DRAIN").expect("drain");
    assert!(drain.is_ok());
    server_thread.join().expect("server thread");

    println!(
        "{total} queries in {:.2}s: {qps:.0} qps, latency p50 {p50:.2} ms, p95 {p95:.2} ms, p99 {p99:.2} ms",
        wall_s
    );
    println!("server stats: {stats_json}");

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"server_loopback\",");
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"quick\": {},", args.quick);
    let _ = writeln!(json, "  \"corpus_rows\": {},", rows.len());
    let _ = writeln!(json, "  \"num_labels\": {NUM_LABELS},");
    let _ = writeln!(json, "  \"clients\": {clients},");
    let _ = writeln!(json, "  \"queries_per_client\": {queries_per_client},");
    let _ = writeln!(json, "  \"total_queries\": {total},");
    let _ = writeln!(json, "  \"ingest_ms\": {ingest_ms:.1},");
    let _ = writeln!(json, "  \"wall_s\": {wall_s:.3},");
    let _ = writeln!(json, "  \"qps\": {qps:.1},");
    let _ = writeln!(
        json,
        "  \"latency_ms\": {{\"p50\": {p50:.3}, \"p95\": {p95:.3}, \"p99\": {p99:.3}}},"
    );
    let _ = writeln!(
        json,
        "  \"host_cpus\": {},",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    let _ = writeln!(json, "  \"server_stats\": {stats_json}");
    json.push_str("}\n");

    let path = "BENCH_server.json";
    std::fs::write(path, &json).expect("write BENCH_server.json");
    println!("wrote {path}");
}
