//! Extension experiment — Section 6's proportional diversity taken online:
//! the [`AdaptiveInstant`] engine (Eq. 2 estimated from the stream prefix)
//! versus the fixed-lambda instant engine, on a bursty news-event stream.
//!
//! Expectation: during a burst the adaptive engine shrinks its threshold
//! and keeps more posts (the event is unfolding — more of it should
//! surface), while in quiet stretches it keeps about the same; the output
//! tracks the input distribution across event phases.

use mqd_bench::{f1, f3, BenchArgs, Report, Table};
use mqd_core::LabelId;
use mqd_datagen::bursts::{generate_burst_posts, Burst, BurstStreamConfig};
use mqd_datagen::MINUTE_MS;
use mqd_stream::AdaptiveInstant;

fn main() {
    let args = BenchArgs::parse();
    // lint:allow(overflow-arith): experiment parameter, tiny literal times a minute constant
    let lambda0 = 2 * MINUTE_MS;
    let cfg = BurstStreamConfig {
        num_labels: 1,
        base_rate: 8.0,
        duration_ms: 120 * MINUTE_MS,
        bursts: vec![
            Burst {
                label: 0,
                start_ms: 40 * MINUTE_MS,
                duration_ms: 15 * MINUTE_MS,
                intensity: 10.0,
            },
            Burst {
                label: 0,
                start_ms: 90 * MINUTE_MS,
                duration_ms: 10 * MINUTE_MS,
                intensity: 5.0,
            },
        ],
        seed: args.seed,
    };
    let posts = generate_burst_posts(&cfg);

    let mut adaptive = AdaptiveInstant::new(1, lambda0);
    let mut fixed_last: Option<i64> = None;

    // Phase bookkeeping: (input, fixed kept, adaptive kept) per 10-minute
    // bucket.
    let bucket_ms = 10 * MINUTE_MS;
    let buckets = (cfg.duration_ms / bucket_ms) as usize;
    let mut input = vec![0u32; buckets];
    let mut kept_fixed = vec![0u32; buckets];
    let mut kept_adaptive = vec![0u32; buckets];

    for p in &posts {
        let b = (p.value() / bucket_ms) as usize;
        input[b] += 1;
        if adaptive.on_post(p.value(), &[LabelId(0)]) {
            kept_adaptive[b] += 1;
        }
        if fixed_last.is_none_or(|t| p.value() as i128 - t as i128 > lambda0 as i128) {
            fixed_last = Some(p.value());
            kept_fixed[b] += 1;
        }
    }

    let mut report = Report::new(
        "ext_adaptive_lambda",
        "Online Eq. 2 lambda (AdaptiveInstant) vs fixed-lambda instant on a bursty stream",
    );
    report.note(format!(
        "{} posts over 2 h; bursts at 40-55 min (10x) and 90-100 min (5x); lambda0 = 2 min",
        posts.len()
    ));

    let mut t = Table::new(
        "Posts kept per 10-minute phase",
        &[
            "phase_min",
            "input",
            "fixed",
            "adaptive",
            "adaptive_share_of_input",
        ],
    );
    for b in 0..buckets {
        t.row(&[
            format!("{}-{}", b * 10, b * 10 + 10),
            input[b].to_string(),
            kept_fixed[b].to_string(),
            kept_adaptive[b].to_string(),
            f3(kept_adaptive[b] as f64 / input[b].max(1) as f64),
        ]);
    }
    report.table(t);

    let total_fixed: u32 = kept_fixed.iter().sum();
    let total_adaptive: u32 = kept_adaptive.iter().sum();
    let burst_buckets = [4usize, 5, 9];
    let burst_fixed: u32 = burst_buckets.iter().map(|&b| kept_fixed[b]).sum();
    let burst_adaptive: u32 = burst_buckets.iter().map(|&b| kept_adaptive[b]).sum();
    let mut s = Table::new(
        "Totals",
        &["strategy", "kept_total", "kept_in_bursts", "bursts_share"],
    );
    s.row(&[
        "fixed".into(),
        total_fixed.to_string(),
        burst_fixed.to_string(),
        f1(100.0 * burst_fixed as f64 / total_fixed.max(1) as f64) + "%",
    ]);
    s.row(&[
        "adaptive".into(),
        total_adaptive.to_string(),
        burst_adaptive.to_string(),
        f1(100.0 * burst_adaptive as f64 / total_adaptive.max(1) as f64) + "%",
    ]);
    report.table(s);
    report.write_or_exit(&args.out);
}
