//! Ablation — GreedySC selection strategy: lazy-evaluation heap vs the
//! paper's scan-max loop (Section 7.3 discusses exactly this implementation
//! choice; they found a naive heap slower because of re-insertion overhead,
//! and picked the scan. Our lazy heap only re-inserts stale entries, which
//! changes the trade-off).
//!
//! Verifies both strategies return identical covers, then compares
//! per-post running time across lambda.

use mqd_bench::{f3, BenchArgs, Report, Table, CALIBRATED_PER_LABEL_PER_MIN};
use mqd_core::algorithms::{solve_greedy_sc, solve_greedy_sc_scan_max};
use mqd_core::FixedLambda;
use mqd_datagen::MINUTE_MS;

fn main() {
    let args = BenchArgs::parse();
    // An hour of stream keeps the quadratic scan-max affordable.
    let minutes = if args.quick { 10 } else { 60 };
    let lambdas_s: &[i64] = &[10, 30, 60, 300];
    let l = 5;

    let posts = mqd_datagen::generate_labeled_posts(&mqd_datagen::LabeledStreamConfig {
        num_labels: l,
        per_label_per_minute: CALIBRATED_PER_LABEL_PER_MIN,
        overlap: 1.15,
        duration_ms: minutes * MINUTE_MS,
        seed: args.seed,
        ..Default::default()
    });
    // lint:allow(panic-path): seeded generator emits valid posts by construction
    let inst = mqd_core::Instance::from_posts(posts, l).expect("valid");

    let mut report = Report::new(
        "ablation_greedy_heap",
        "GreedySC selection: lazy heap vs scan-max (identical covers, timing)",
    );
    report.note(format!(
        "{minutes}-minute stream, |L| = {l}, {} posts",
        inst.len()
    ));

    let mut t = Table::new(
        "Per-post time (us) and solution sizes",
        &["lambda_s", "lazy_us", "scanmax_us", "size", "identical"],
    );
    for &ls in lambdas_s {
        // lint:allow(overflow-arith): experiment grid, seconds-to-ms on small literals
        let lambda = FixedLambda(ls * 1000);
        let (lazy, d_lazy) = mqd_bench::time_it(|| solve_greedy_sc(&inst, &lambda));
        let (scan, d_scan) = mqd_bench::time_it(|| solve_greedy_sc_scan_max(&inst, &lambda));
        t.row(&[
            ls.to_string(),
            f3(mqd_bench::micros_per_post(inst.len(), d_lazy)),
            f3(mqd_bench::micros_per_post(inst.len(), d_scan)),
            lazy.size().to_string(),
            (lazy.selected == scan.selected).to_string(),
        ]);
    }
    report.table(t);
    report.write_or_exit(&args.out);
}
