//! Ablation — Scan+ label processing order. Section 4.3 notes "the
//! effectiveness of this optimization depends on the ordering of the labels
//! processed by Scan"; this experiment quantifies it on popularity-skewed
//! streams.

use mqd_bench::{f1, BenchArgs, Report, Table, CALIBRATED_PER_LABEL_PER_MIN};
use mqd_core::algorithms::{solve_scan, solve_scan_plus, LabelOrder};
use mqd_core::{FixedLambda, Instance};
use mqd_datagen::{generate_labeled_posts, LabeledStreamConfig, MINUTE_MS};

fn main() {
    let args = BenchArgs::parse();
    let runs = if args.quick { 3 } else { 10 };
    let skews: &[f64] = &[0.0, 0.5, 1.0, 1.5];
    let l = 8;
    let lambda = FixedLambda(30_000);

    let mut report = Report::new(
        "ablation_scan_order",
        "Scan+ label order: input vs densest-first vs sparsest-first",
    );
    report.note(format!(
        "10-min slices, |L| = {l}, overlap 1.4, {runs} runs per skew, lambda = 30 s"
    ));

    let mut t = Table::new(
        "Mean solution sizes by label processing order",
        &[
            "label_skew",
            "scan",
            "input",
            "densest_first",
            "sparsest_first",
        ],
    );
    for (si, &skew) in skews.iter().enumerate() {
        let mut sums = [0f64; 4];
        for r in 0..runs {
            let posts = generate_labeled_posts(&LabeledStreamConfig {
                num_labels: l,
                per_label_per_minute: CALIBRATED_PER_LABEL_PER_MIN / 4.0,
                overlap: 1.4,
                label_skew: skew,
                duration_ms: 10 * MINUTE_MS,
                seed: args.seed + (si * 100 + r) as u64,
                ..Default::default()
            });
            // lint:allow(panic-path): seeded generator emits valid posts by construction
            let inst = Instance::from_posts(posts, l).expect("valid");
            sums[0] += solve_scan(&inst, &lambda).size() as f64;
            sums[1] += solve_scan_plus(&inst, &lambda, LabelOrder::Input).size() as f64;
            sums[2] += solve_scan_plus(&inst, &lambda, LabelOrder::DensestFirst).size() as f64;
            sums[3] += solve_scan_plus(&inst, &lambda, LabelOrder::SparsestFirst).size() as f64;
        }
        let m = runs as f64;
        t.row(&[
            format!("{skew:.1}"),
            f1(sums[0] / m),
            f1(sums[1] / m),
            f1(sums[2] / m),
            f1(sums[3] / m),
        ]);
    }
    report.table(t);
    report.write_or_exit(&args.out);
}
