//! Table 2 — number of matching posts per minute for label sets of size
//! |L| ∈ {2, 5, 20}.
//!
//! The paper measured 136 / 308 / 1180 matching posts per minute on the 1%
//! Twitter sample. Our generator is calibrated to the same per-label rate
//! (~62/min), so the reproduced column should land in the same range with
//! the same sublinear growth caused by label overlap.

use mqd_bench::{f1, BenchArgs, Report, Table, CALIBRATED_PER_LABEL_PER_MIN};
use mqd_core::Instance;
use mqd_datagen::{generate_labeled_posts, LabeledStreamConfig, MINUTE_MS};

fn main() {
    let args = BenchArgs::parse();
    let minutes = if args.quick { 10 } else { 60 };
    let paper = [(2usize, 136.0f64), (5, 308.0), (20, 1180.0)];

    let mut report = Report::new("table2", "Matching posts per minute per label-set size");
    report.note(format!(
        "{minutes}-minute streams at the calibrated per-label rate of {CALIBRATED_PER_LABEL_PER_MIN}/min, overlap 1.15"
    ));

    let mut t = Table::new(
        "Matching posts per minute",
        &[
            "|L|",
            "paper (real Twitter)",
            "reproduced (synthetic)",
            "overlap rate",
        ],
    );
    for &(l, paper_rate) in &paper {
        let posts = generate_labeled_posts(&LabeledStreamConfig {
            num_labels: l,
            per_label_per_minute: CALIBRATED_PER_LABEL_PER_MIN,
            overlap: 1.15,
            duration_ms: minutes * MINUTE_MS,
            seed: args.seed + l as u64,
            ..LabeledStreamConfig::default()
        });
        // lint:allow(panic-path): seeded generator emits valid posts by construction
        let inst = Instance::from_posts(posts, l).expect("valid");
        let per_min = inst.len() as f64 / minutes as f64;
        t.row(&[
            l.to_string(),
            f1(paper_rate),
            f1(per_min),
            format!("{:.2}", inst.overlap_rate()),
        ]);
    }
    report.table(t);
    report.write_or_exit(&args.out);
}
