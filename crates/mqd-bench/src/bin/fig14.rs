//! Figure 14 — execution time per post for StreamMQDP on one day of
//! tweets, varying lambda with fixed tau = 300 s, one panel per
//! |L| ∈ {2, 5, 20}.
//!
//! Paper expectation: StreamScan/StreamScan+ flat and fast; the greedy
//! engines get faster with larger lambda (fewer set-cover rounds).

use mqd_bench::{f3, BenchArgs, Report, Table, CALIBRATED_PER_LABEL_PER_MIN, STREAM_ENGINES};
use mqd_core::FixedLambda;

fn main() {
    let args = BenchArgs::parse();
    let scale = args.effective_scale();
    let tau = 300_000i64;
    let panels: &[usize] = &[2, 5, 20];
    let lambdas_s: &[i64] = &[60, 120, 300, 600, 1200, 1800];

    let mut report = Report::new(
        "fig14",
        "StreamMQDP execution time per post (us) vs lambda (tau = 300 s)",
    );
    report.note(format!(
        "one day of tweets at {CALIBRATED_PER_LABEL_PER_MIN}/label/min, overlap 1.15, day-scale {scale}"
    ));
    report.note("paper: Figures 14a-14c");

    for &l in panels {
        let inst = mqd_bench::day_instance(
            l,
            CALIBRATED_PER_LABEL_PER_MIN,
            1.15,
            args.seed + l as u64,
            scale,
        );
        let mut t = Table::new(
            format!("Fig 14 panel: |L| = {l} ({} posts)", inst.len()),
            &[
                "lambda_s",
                "StreamScan",
                "StreamScan+",
                "StreamGreedySC",
                "StreamGreedySC+",
            ],
        );
        for &ls in lambdas_s {
            // lint:allow(overflow-arith): experiment grid, seconds-to-ms on small literals
            let lambda = FixedLambda(ls * 1000);
            let mut cells = vec![ls.to_string()];
            for name in STREAM_ENGINES {
                let (_, d) =
                    mqd_bench::time_it(|| mqd_bench::run_stream_by_name(name, &inst, &lambda, tau));
                cells.push(f3(mqd_bench::micros_per_post(inst.len(), d)));
            }
            t.row(&cells);
        }
        report.table(t);
    }
    report.write_or_exit(&args.out);
}
