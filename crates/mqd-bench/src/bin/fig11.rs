//! Figure 11 — streaming absolute solution sizes vs overlap rate
//! (|L| = 2, lambda = 10 s, tau = 5 s, 10-minute slices).
//!
//! Paper expectation: same trend as the static algorithms — the greedy
//! engines win at high overlap, the Scan engines at low overlap (Scan is
//! optimal per label when posts carry a single label).

use mqd_bench::{f1, BenchArgs, Report, Table, OPT_FEASIBLE_PER_LABEL_PER_MIN, STREAM_ENGINES};
use mqd_core::FixedLambda;

fn main() {
    let args = BenchArgs::parse();
    let num_labels = 2;
    let lambda = FixedLambda(10_000);
    let tau = 5_000;
    let runs = if args.quick { 3 } else { 10 };
    let overlaps: &[f64] = &[1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.8];

    let mut report = Report::new(
        "fig11",
        "Streaming absolute solution sizes vs overlap (|L|=2, lambda=10s, tau=5s)",
    );
    report.note(format!(
        "per-label rate {OPT_FEASIBLE_PER_LABEL_PER_MIN}/min, {runs} runs per overlap, 10-min slices"
    ));
    report.note("paper: Figure 11; greedy better at high overlap, Scan at overlap ≈ 1");

    let mut t = Table::new(
        "Mean solution sizes",
        &[
            "overlap",
            "StreamScan",
            "StreamScan+",
            "StreamGreedySC",
            "StreamGreedySC+",
        ],
    );
    for (oi, &overlap) in overlaps.iter().enumerate() {
        let mut sums = [0f64; 4];
        for r in 0..runs {
            let seed = args.seed + (oi * 100 + r) as u64;
            let inst = mqd_bench::ten_minute_instance(
                num_labels,
                OPT_FEASIBLE_PER_LABEL_PER_MIN,
                overlap,
                seed,
            );
            for (i, name) in STREAM_ENGINES.iter().enumerate() {
                let res = mqd_bench::run_stream_by_name(name, &inst, &lambda, tau);
                debug_assert!(res.is_cover(&inst, &lambda), "{name} non-cover");
                sums[i] += res.size() as f64;
            }
        }
        let m = runs as f64;
        t.row(&[
            format!("{overlap:.1}"),
            f1(sums[0] / m),
            f1(sums[1] / m),
            f1(sums[2] / m),
            f1(sums[3] / m),
        ]);
    }
    report.table(t);
    report.write_or_exit(&args.out);
}
