//! Figure 13 — execution time per post for MQDP on one day of tweets,
//! varying lambda, one panel per |L| ∈ {2, 5, 20}.
//!
//! Paper expectation: the Scan variants are orders of magnitude faster than
//! GreedySC and roughly flat in lambda; GreedySC gets *faster* as lambda
//! grows (fewer greedy rounds) and slower as |L| grows; Scan gets slightly
//! faster with |L| (more cross-coverage per pick).

use mqd_bench::{f3, BenchArgs, Report, Table, CALIBRATED_PER_LABEL_PER_MIN};
use mqd_core::algorithms::{solve_greedy_sc, solve_scan, solve_scan_plus, LabelOrder};
use mqd_core::FixedLambda;

fn main() {
    let args = BenchArgs::parse();
    let scale = args.effective_scale();
    let panels: &[usize] = &[2, 5, 20];
    let lambdas_s: &[i64] = &[10, 30, 60, 300, 600, 1800];

    let mut report = Report::new(
        "fig13",
        "MQDP execution time per post (us) vs lambda, per |L| panel",
    );
    report.note(format!(
        "one day of tweets at {CALIBRATED_PER_LABEL_PER_MIN}/label/min, overlap 1.15, day-scale {scale}; in-memory timing"
    ));
    report.note("paper: Figures 13a-13c (log axis); Scan ~1-3 orders faster than GreedySC");

    for &l in panels {
        let inst = mqd_bench::day_instance(
            l,
            CALIBRATED_PER_LABEL_PER_MIN,
            1.15,
            args.seed + l as u64,
            scale,
        );
        let mut t = Table::new(
            format!("Fig 13 panel: |L| = {l} ({} posts)", inst.len()),
            &["lambda_s", "scan_us", "scanplus_us", "greedy_us"],
        );
        for &ls in lambdas_s {
            // lint:allow(overflow-arith): experiment grid, seconds-to-ms on small literals
            let lambda = FixedLambda(ls * 1000);
            let (_, d_scan) = mqd_bench::time_it(|| solve_scan(&inst, &lambda));
            let (_, d_scanp) =
                mqd_bench::time_it(|| solve_scan_plus(&inst, &lambda, LabelOrder::Input));
            let (_, d_greedy) = mqd_bench::time_it(|| solve_greedy_sc(&inst, &lambda));
            t.row(&[
                ls.to_string(),
                f3(mqd_bench::micros_per_post(inst.len(), d_scan)),
                f3(mqd_bench::micros_per_post(inst.len(), d_scanp)),
                f3(mqd_bench::micros_per_post(inst.len(), d_greedy)),
            ]);
        }
        report.table(t);
    }
    report.write_or_exit(&args.out);
}
