//! Ablation — proportional diversity (Section 6): fixed lambda vs the
//! density-dependent lambda of Equation 2.
//!
//! On a popularity-skewed stream, the output under a fixed lambda allocates
//! representatives roughly uniformly per label, while Equation 2 shifts the
//! allocation toward popular labels (more matching posts → smaller local
//! lambda → more representatives), without starving rare labels — the
//! "smooth" proportionality the paper argues for.

use mqd_bench::{f3, BenchArgs, Report, Table, CALIBRATED_PER_LABEL_PER_MIN};
use mqd_core::algorithms::solve_greedy_sc;
use mqd_core::{coverage, FixedLambda, Instance, LabelId, VariableLambda};
use mqd_datagen::{generate_labeled_posts, LabeledStreamConfig, MINUTE_MS};

fn main() {
    let args = BenchArgs::parse();
    let l = 6;
    let lambda0 = 60_000i64;
    let minutes = if args.quick { 10 } else { 30 };

    let posts = generate_labeled_posts(&LabeledStreamConfig {
        num_labels: l,
        per_label_per_minute: CALIBRATED_PER_LABEL_PER_MIN / 4.0,
        overlap: 1.2,
        label_skew: 1.2,
        duration_ms: minutes * MINUTE_MS,
        seed: args.seed,
        ..Default::default()
    });
    // lint:allow(panic-path): seeded generator emits valid posts by construction
    let inst = Instance::from_posts(posts, l).expect("valid");

    let fixed = FixedLambda(lambda0);
    let var = VariableLambda::compute(&inst, lambda0);
    let sol_fixed = solve_greedy_sc(&inst, &fixed);
    let sol_var = solve_greedy_sc(&inst, &var);
    assert!(coverage::is_cover(&inst, &fixed, &sol_fixed.selected));
    assert!(coverage::is_cover(&inst, &var, &sol_var.selected));

    let mut report = Report::new(
        "ablation_variable_lambda",
        "Fixed lambda vs Equation-2 proportional lambda (GreedySC)",
    );
    report.note(format!(
        "{minutes}-min stream, |L| = {l}, label skew 1.2, lambda0 = 60 s, {} posts",
        inst.len()
    ));
    report.note(format!(
        "total selected: fixed = {}, proportional = {}",
        sol_fixed.size(),
        sol_var.size()
    ));

    let mut t = Table::new(
        "Per-label share of input vs share of output",
        &["label", "input_share", "fixed_share", "proportional_share"],
    );
    let share = |selected: &[u32], a: LabelId| -> f64 {
        let cnt = selected
            .iter()
            .filter(|&&i| inst.post(i).has_label(a))
            .count();
        let total: usize = selected
            .iter()
            .map(|&i| inst.labels(i).len())
            .sum::<usize>()
            .max(1);
        cnt as f64 / total as f64
    };
    let all: Vec<u32> = (0..inst.len() as u32).collect();
    for a_idx in 0..l as u16 {
        let a = LabelId(a_idx);
        t.row(&[
            a.to_string(),
            f3(share(&all, a)),
            f3(share(&sol_fixed.selected, a)),
            f3(share(&sol_var.selected, a)),
        ]);
    }
    report.table(t);

    // Proportionality score: L1 distance between the output label-share
    // vector and the input one (lower = more proportional).
    let l1 = |selected: &[u32]| -> f64 {
        (0..l as u16)
            .map(|a| (share(selected, LabelId(a)) - share(&all, LabelId(a))).abs())
            .sum()
    };
    let mut s = Table::new(
        "Proportionality (L1 distance to input shares; lower is better)",
        &["strategy", "l1_distance", "solution_size"],
    );
    s.row(&[
        "fixed".into(),
        f3(l1(&sol_fixed.selected)),
        sol_fixed.size().to_string(),
    ]);
    s.row(&[
        "proportional".into(),
        f3(l1(&sol_var.selected)),
        sol_var.size().to_string(),
    ]);
    report.table(s);
    report.write_or_exit(&args.out);
}
