//! Section 7.4's feasibility claim for the exact DP: "our proposed exact
//! dynamic programming algorithm is feasible for small problem instances,
//! where the number of queries is up to 2-3 and lambda is less than a
//! minute." This experiment maps that frontier: OPT wall time (or budget
//! blow-up) across |L| and lambda on 10-minute slices.

use mqd_bench::{f1, BenchArgs, Report, Table, OPT_FEASIBLE_PER_LABEL_PER_MIN};
use mqd_core::algorithms::{solve_opt, OptConfig};

fn main() {
    let args = BenchArgs::parse();
    let labels: &[usize] = &[1, 2, 3, 4];
    let lambdas_s: &[i64] = &[5, 15, 30, 60, 120];
    // The transition cost is (candidate product) x (previous layer), so the
    // per-step budget also bounds time; keep it small enough that a "blown"
    // verdict arrives in seconds rather than hours.
    let cfg = OptConfig {
        max_patterns_per_step: 5_000,
    };

    let mut report = Report::new(
        "opt_feasibility",
        "Exact DP feasibility frontier (wall ms; 'blown' = state budget exceeded)",
    );
    report.note(format!(
        "10-minute slices at {OPT_FEASIBLE_PER_LABEL_PER_MIN} posts/label/min, overlap 1.25, \
         budget {} end-patterns/step",
        cfg.max_patterns_per_step
    ));
    report.note("paper §7.4: feasible for |L| up to 2-3 and lambda below a minute");

    let mut t = Table::new(
        "OPT wall time (ms) per (|L|, lambda)",
        &["|L|", "lambda_s", "posts", "result", "wall_ms", "opt_size"],
    );
    for &l in labels {
        for &ls in lambdas_s {
            let inst = mqd_bench::ten_minute_instance(
                l,
                OPT_FEASIBLE_PER_LABEL_PER_MIN,
                1.25,
                args.seed + l as u64,
            );
            let (res, d) = mqd_bench::time_it(|| solve_opt(&inst, ls * 1000, &cfg));
            let (status, size) = match &res {
                Ok(s) => ("ok".to_string(), s.size().to_string()),
                Err(e) => (format!("blown ({e})"), "-".to_string()),
            };
            t.row(&[
                l.to_string(),
                ls.to_string(),
                inst.len().to_string(),
                status,
                f1(d.as_secs_f64() * 1000.0),
                size,
            ]);
            // Don't climb further up a blown column.
            if res.is_err() {
                break;
            }
        }
    }
    report.table(t);
    report.write_or_exit(&args.out);
}
