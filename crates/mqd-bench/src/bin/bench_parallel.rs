//! Parallel-scaling sweep for the zero-dependency execution layer.
//!
//! Measures wall time and post throughput at 1/2/4/8 worker threads for:
//!
//! * GreedySC on a fig06-scale slice (parallel gain-init pass),
//! * the parallel cover verifier (`violations`),
//! * the batch multi-user digest solver,
//! * the sharded streaming engine (StreamScan+ and StreamGreedySC+, one
//!   shard per configured thread).
//!
//! Every parallel run is asserted **byte-identical** to its 1-thread
//! baseline before its timing is recorded — a wrong answer fast is not a
//! result. Writes `BENCH_parallel.json` at the working directory root
//! (repo root when run via `cargo run`), including the host's CPU count:
//! thread counts beyond the hardware parallelism cannot speed up
//! CPU-bound work, and readers need that context to interpret the sweep.

use std::fmt::Write as _;

use mqd_bench::{measure, must, BenchArgs, Measured, CALIBRATED_PER_LABEL_PER_MIN};
use mqd_core::algorithms::solve_greedy_sc_threads;
use mqd_core::{coverage, FixedLambda};
use mqd_rng::{RngExt, SeedableRng, StdRng};
use mqd_stream::{
    run_sharded_reference, run_sharded_stream, solve_batch_users_threads, BatchUser,
    ShardEngineKind,
};

const THREAD_SWEEP: &[usize] = &[1, 2, 4, 8];

struct Row {
    task: &'static str,
    m: Measured,
    identical: bool,
}

fn main() {
    let args = BenchArgs::parse();
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let lambda_ms = 5_000i64;
    let tau_ms = 4_000i64;
    // Fig-06-scale slice at the calibrated Twitter rate: |L|=3, 10 minutes.
    let inst = mqd_bench::ten_minute_instance(3, CALIBRATED_PER_LABEL_PER_MIN, 1.2, args.seed);
    let f = FixedLambda(lambda_ms);
    println!(
        "bench_parallel: {} posts, |L|={}, lambda={}ms, tau={}ms, host cpus={}",
        inst.len(),
        inst.num_labels(),
        lambda_ms,
        tau_ms,
        cpus
    );

    let mut rows: Vec<Row> = Vec::new();

    // --- GreedySC (parallel init pass) -----------------------------------
    let greedy_base = solve_greedy_sc_threads(1, &inst, &f);
    assert!(coverage::is_cover(&inst, &f, &greedy_base.selected));
    for &t in THREAD_SWEEP {
        let (sol, m) = measure(t, inst.len(), || solve_greedy_sc_threads(t, &inst, &f));
        let identical = sol.selected == greedy_base.selected;
        assert!(identical, "GreedySC diverged at {t} threads");
        rows.push(Row {
            task: "greedy_sc",
            m,
            identical,
        });
    }

    // --- Parallel verifier ------------------------------------------------
    let sparse: Vec<u32> = (0..inst.len() as u32).step_by(7).collect();
    let viol_base = coverage::violations_threads(1, &inst, &f, &sparse);
    for &t in THREAD_SWEEP {
        let (v, m) = measure(t, inst.len(), || {
            coverage::violations_threads(t, &inst, &f, &sparse)
        });
        let identical = v == viol_base;
        assert!(identical, "violations diverged at {t} threads");
        rows.push(Row {
            task: "violations",
            m,
            identical,
        });
    }

    // --- Batch multi-user digests ----------------------------------------
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0xBA7C4);
    let num_users = if args.quick { 16 } else { 64 };
    let users: Vec<BatchUser> = (0..num_users)
        .map(|_| {
            let k = rng.random_range(1..=3usize);
            BatchUser {
                labels: (0..k)
                    .map(|_| rng.random_range(0..inst.num_labels() as u16))
                    .collect(),
                lambda: rng.random_range(1_000..10_000i64),
            }
        })
        .collect();
    let batch_base = solve_batch_users_threads(1, &inst, &users);
    for &t in THREAD_SWEEP {
        let (digests, m) = measure(t, inst.len() * users.len(), || {
            solve_batch_users_threads(t, &inst, &users)
        });
        let identical = digests == batch_base;
        assert!(identical, "batch multiuser diverged at {t} threads");
        rows.push(Row {
            task: "batch_multiuser",
            m,
            identical,
        });
    }

    // --- Sharded streaming (one shard per thread) ------------------------
    for (task, kind) in [
        ("sharded_stream_scan_plus", ShardEngineKind::ScanPlus),
        ("sharded_stream_greedy_plus", ShardEngineKind::GreedyPlus),
    ] {
        for &t in THREAD_SWEEP {
            let reference = run_sharded_reference(&inst, lambda_ms, tau_ms, t, kind);
            let (res, m) = measure(t, inst.len(), || {
                run_sharded_stream(&inst, lambda_ms, tau_ms, t, kind)
            });
            let identical =
                res.selected == reference.selected && res.emissions == reference.emissions;
            assert!(identical, "{task} diverged at {t} shards");
            assert!(res.max_delay <= tau_ms, "{task} broke tau at {t} shards");
            assert!(coverage::is_cover(&inst, &f, &res.selected));
            rows.push(Row { task, m, identical });
        }
    }

    // --- Report -----------------------------------------------------------
    println!(
        "{:<28} {:>7} {:>12} {:>14}",
        "task", "threads", "wall_ms", "posts/sec"
    );
    for r in &rows {
        println!(
            "{:<28} {:>7} {:>12.3} {:>14.0}",
            r.task,
            r.m.threads,
            r.m.wall_ms(),
            r.m.posts_per_sec()
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"parallel_scaling\",");
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"posts\": {},", inst.len());
    let _ = writeln!(json, "  \"num_labels\": {},", inst.num_labels());
    let _ = writeln!(json, "  \"lambda_ms\": {lambda_ms},");
    let _ = writeln!(json, "  \"tau_ms\": {tau_ms},");
    let _ = writeln!(json, "  \"host_cpus\": {cpus},");
    let _ = writeln!(
        json,
        "  \"note\": \"all parallel runs asserted byte-identical to the 1-thread baseline; speedups beyond host_cpus threads are not physically possible\","
    );
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"task\": \"{}\", \"threads\": {}, \"wall_ms\": {:.3}, \"posts_per_sec\": {:.1}, \"identical_to_sequential\": {}}}",
            r.task,
            r.m.threads,
            r.m.wall_ms(),
            r.m.posts_per_sec(),
            r.identical
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    let path = "BENCH_parallel.json";
    must(std::fs::write(path, &json), "write BENCH_parallel.json");
    println!("wrote {path}");
}
