//! Extension experiment — multi-user fan-out throughput (Section 7.3's
//! "millions of users" motivation): posts per second sustained by the
//! shared-pass [`MultiUserHub`] as the user population grows, versus the
//! naive one-engine-per-user baseline cost model.

use std::time::Instant;

use mqd_bench::{f1, BenchArgs, Report, Table};
use mqd_rng::rngs::StdRng;
use mqd_rng::{RngExt, SeedableRng};
use mqd_stream::MultiUserHub;

fn main() {
    let args = BenchArgs::parse();
    let num_topics = 300u32; // the paper's LDA topic count
    let posts_n = if args.quick { 20_000 } else { 100_000 };
    let user_counts: &[usize] = if args.quick {
        &[100, 1_000]
    } else {
        &[100, 1_000, 10_000, 100_000]
    };

    // Global stream: each post carries 1-2 of the 300 topics (zipf-ish).
    let mut rng = StdRng::seed_from_u64(args.seed);
    let zipf_topic = |rng: &mut StdRng| -> u32 {
        // Approximate zipf by squaring a uniform draw.
        let u: f64 = rng.random();
        ((u * u) * num_topics as f64) as u32
    };
    let stream: Vec<(i64, Vec<u32>)> = (0..posts_n)
        .map(|i| {
            let mut topics = vec![zipf_topic(&mut rng)];
            if rng.random::<f64>() < 0.2 {
                topics.push(zipf_topic(&mut rng));
            }
            topics.sort_unstable();
            topics.dedup();
            (i as i64 * 20, topics) // ~50 posts/sec
        })
        .collect();

    let mut report = Report::new(
        "ext_multiuser",
        "Multi-user fan-out: shared-pass hub throughput vs user count",
    );
    report.note(format!(
        "{posts_n} global posts over {num_topics} topics; each user subscribes to 2-5 topics; lambda = 60 s"
    ));

    let mut t = Table::new(
        "Hub throughput",
        &[
            "users",
            "posts_per_sec",
            "total_deliveries",
            "mean_deliveries_per_user",
        ],
    );
    for &users_n in user_counts {
        let subscriptions: Vec<Vec<u32>> = (0..users_n)
            .map(|_| {
                let k = rng.random_range(2..=5usize);
                let mut ts: Vec<u32> = (0..k).map(|_| zipf_topic(&mut rng)).collect();
                ts.sort_unstable();
                ts.dedup();
                ts
            })
            .collect();
        let mut hub = MultiUserHub::new(subscriptions, 60_000);
        let t0 = Instant::now();
        let mut deliveries = 0u64;
        for (time, topics) in &stream {
            deliveries += hub.on_post(*time, topics).len() as u64;
        }
        let dt = t0.elapsed();
        t.row(&[
            users_n.to_string(),
            f1(posts_n as f64 / dt.as_secs_f64()),
            deliveries.to_string(),
            f1(deliveries as f64 / users_n as f64),
        ]);
    }
    report.table(t);
    report.write_or_exit(&args.out);
}
