//! Micro-benchmarks for the substrates: tokenizer, SimHash, inverted
//! index / matcher, LDA sweeps, and the set-cover primitives
//! (std-only harness).

use mqd_bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mqd_datagen::{generate_news, generate_tweets, NewsConfig, TweetStreamConfig, MINUTE_MS};
use mqd_setcover::{greedy_cover, lazy_greedy_cover, BitSet, Goal, PresenceFenwick};
use mqd_text::{
    simhash, tokenize, InvertedIndex, KeywordMatcher, NearDuplicateFilter, SentimentScorer,
};
use mqd_topics::{LdaConfig, LdaModel, Vocabulary};

fn bench_text(c: &mut Criterion) {
    let tweets = generate_tweets(&TweetStreamConfig {
        tweets_per_minute: 120.0,
        duration_ms: 2 * MINUTE_MS,
        ..Default::default()
    });
    let texts: Vec<&str> = tweets.iter().map(|t| t.text.as_str()).collect();

    c.bench_function("tokenize_tweet", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % texts.len();
            black_box(tokenize(texts[i]))
        })
    });
    c.bench_function("simhash_tweet", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % texts.len();
            black_box(simhash(texts[i]))
        })
    });
    c.bench_function("sentiment_tweet", |b| {
        let scorer = SentimentScorer::new();
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % texts.len();
            black_box(scorer.score(texts[i]))
        })
    });
    c.bench_function("near_dup_filter_stream", |b| {
        b.iter(|| {
            let mut f = NearDuplicateFilter::new(3);
            let mut kept = 0;
            for t in &texts {
                if f.insert_text(t) {
                    kept += 1;
                }
            }
            black_box(kept)
        })
    });
    c.bench_function("matcher_per_tweet", |b| {
        let queries: Vec<Vec<String>> = vec![
            vec!["obama".into(), "senate".into(), "congress".into()],
            vec!["nasdaq".into(), "stocks".into(), "market".into()],
        ];
        let m = KeywordMatcher::new(&queries);
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % texts.len();
            black_box(m.match_labels(texts[i]))
        })
    });
    c.bench_function("inverted_index_build_200", |b| {
        b.iter(|| {
            let mut idx = InvertedIndex::new();
            for t in texts.iter().take(200) {
                idx.add_document(t);
            }
            black_box(idx.len())
        })
    });
}

fn bench_lda(c: &mut Criterion) {
    let corpus = generate_news(&NewsConfig {
        articles: 60,
        ..Default::default()
    });
    let mut vocab = Vocabulary::new();
    let docs: Vec<Vec<u32>> = corpus.iter().map(|a| vocab.intern_text(&a.text)).collect();
    c.bench_function("lda_5_sweeps_60_docs", |b| {
        b.iter(|| {
            black_box(LdaModel::train(
                &docs,
                vocab.len(),
                LdaConfig {
                    num_topics: 8,
                    iterations: 5,
                    ..Default::default()
                },
            ))
        })
    });
}

fn bench_setcover(c: &mut Criterion) {
    // Deterministic pseudo-random sets.
    let mut state = 1u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        state >> 33
    };
    let n = 2_000usize;
    let sets: Vec<Vec<u32>> = (0..400)
        .map(|_| {
            (0..n as u32)
                .filter(|_| next() % 20 == 0)
                .collect::<Vec<u32>>()
        })
        .collect();
    c.bench_function("greedy_cover_scan_max", |b| {
        b.iter(|| {
            let mut cov = BitSet::new(n);
            black_box(greedy_cover(&sets, &mut cov, Goal::CoverAll))
        })
    });
    c.bench_function("greedy_cover_lazy", |b| {
        b.iter(|| {
            let mut cov = BitSet::new(n);
            black_box(lazy_greedy_cover(&sets, &mut cov, Goal::CoverAll))
        })
    });
    c.bench_function("fenwick_count_clear", |b| {
        b.iter(|| {
            let mut f = PresenceFenwick::all_present(n);
            let mut acc = 0u32;
            for i in (0..n).step_by(3) {
                f.clear(i);
                acc += f.count_range(0, n);
            }
            black_box(acc)
        })
    });
}

fn bench_rt_index(c: &mut Criterion) {
    let tweets = generate_tweets(&TweetStreamConfig {
        tweets_per_minute: 200.0,
        duration_ms: 10 * MINUTE_MS,
        ..Default::default()
    });
    c.bench_function("rt_index_ingest_1k", |b| {
        b.iter(|| {
            let mut idx = mqd_text::RtIndex::new(MINUTE_MS);
            for t in tweets.iter().take(1_000) {
                idx.add_document(&t.text, t.timestamp_ms);
            }
            black_box(idx.len())
        })
    });
    let mut idx = mqd_text::RtIndex::new(MINUTE_MS);
    for t in &tweets {
        idx.add_document(&t.text, t.timestamp_ms);
    }
    let kws: Vec<String> = vec!["obama".into(), "senate".into(), "market".into()];
    c.bench_function("rt_index_range_search", |b| {
        b.iter(|| black_box(idx.search(&kws, 2 * MINUTE_MS, 8 * MINUTE_MS)))
    });
}

fn bench_multiuser_hub(c: &mut Criterion) {
    // 10k users over 300 topics; measure per-post hub cost.
    let mut state = 5u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(5);
        state >> 33
    };
    let subs: Vec<Vec<u32>> = (0..10_000)
        .map(|_| (0..3).map(|_| (next() % 300) as u32).collect())
        .collect();
    let stream: Vec<(i64, Vec<u32>)> = (0..5_000)
        .map(|i| (i as i64 * 20, vec![(next() % 300) as u32]))
        .collect();
    c.bench_function("multiuser_hub_5k_posts_10k_users", |b| {
        b.iter(|| {
            let mut hub = mqd_stream::MultiUserHub::new(subs.clone(), 60_000);
            let mut total = 0usize;
            for (t, topics) in &stream {
                total += hub.on_post(*t, topics).len();
            }
            black_box(total)
        })
    });
}

fn bench_binlog(c: &mut Criterion) {
    let rows: Vec<mqd_cli::tsv::LabeledRow> = (0..10_000)
        .map(|i| mqd_cli::tsv::LabeledRow {
            id: i,
            value: 1_000_000 + i as i64 * 137,
            labels: vec![(i % 7) as u16],
        })
        .collect();
    c.bench_function("binlog_encode_10k", |b| {
        b.iter(|| black_box(mqd_cli::binlog::encode(&rows)))
    });
    let data = mqd_cli::binlog::encode(&rows);
    c.bench_function("binlog_decode_10k", |b| {
        b.iter(|| black_box(mqd_cli::binlog::decode(&data).unwrap()))
    });
}

fn bench_geo(c: &mut Criterion) {
    let posts = mqd_geo::generate_geo_posts(&mqd_geo::GeoStreamConfig {
        posts: 1_000,
        ..Default::default()
    });
    let inst = mqd_geo::GeoInstance::new(posts, 3, mqd_geo::GeoLambda::new(300_000, 500));
    c.bench_function("geo_greedy_1k", |b| {
        b.iter(|| black_box(mqd_geo::solve_geo_greedy(&inst)))
    });
    c.bench_function("geo_sweep_1k", |b| {
        b.iter(|| black_box(mqd_geo::solve_geo_sweep(&inst)))
    });
}

criterion_group!(
    benches,
    bench_text,
    bench_lda,
    bench_setcover,
    bench_rt_index,
    bench_multiuser_hub,
    bench_binlog,
    bench_geo
);
criterion_main!(benches);
