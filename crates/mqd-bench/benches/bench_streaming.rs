//! Micro-benchmarks for the streaming engines (std-only harness).

use mqd_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mqd_bench::ten_minute_instance;
use mqd_core::FixedLambda;
use mqd_stream::{run_stream, InstantScan, StreamGreedy, StreamScan};

fn bench_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("stream_engines");
    for &l in &[2usize, 5, 20] {
        let inst = ten_minute_instance(l, 30.0, 1.2, 42);
        let f = FixedLambda(15_000);
        let tau = 10_000;
        g.bench_with_input(BenchmarkId::new("stream_scan", l), &inst, |b, inst| {
            b.iter(|| {
                let mut e = StreamScan::new(l, inst.len());
                black_box(run_stream(inst, &f, tau, &mut e))
            })
        });
        g.bench_with_input(BenchmarkId::new("stream_scan_plus", l), &inst, |b, inst| {
            b.iter(|| {
                let mut e = StreamScan::new_plus(l, inst.len());
                black_box(run_stream(inst, &f, tau, &mut e))
            })
        });
        g.bench_with_input(BenchmarkId::new("stream_greedy", l), &inst, |b, inst| {
            b.iter(|| {
                let mut e = StreamGreedy::new(l, inst.len());
                black_box(run_stream(inst, &f, tau, &mut e))
            })
        });
        g.bench_with_input(BenchmarkId::new("instant", l), &inst, |b, inst| {
            b.iter(|| {
                let mut e = InstantScan::new(l);
                black_box(run_stream(inst, &f, 0, &mut e))
            })
        });
    }
    g.finish();
}

fn bench_tau_sensitivity(c: &mut Criterion) {
    let inst = ten_minute_instance(5, 30.0, 1.2, 7);
    let f = FixedLambda(30_000);
    let mut g = c.benchmark_group("greedy_window_tau");
    for &tau_s in &[1i64, 10, 60] {
        g.bench_with_input(BenchmarkId::from_parameter(tau_s), &tau_s, |b, &tau_s| {
            b.iter(|| {
                let mut e = StreamGreedy::new(5, inst.len());
                black_box(run_stream(&inst, &f, tau_s * 1000, &mut e))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engines, bench_tau_sensitivity);
criterion_main!(benches);
