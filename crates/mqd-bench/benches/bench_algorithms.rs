//! Micro-benchmarks for the offline MQDP solvers (std-only harness).

use mqd_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mqd_bench::{ten_minute_instance, OPT_FEASIBLE_PER_LABEL_PER_MIN};
use mqd_core::algorithms::{
    solve_greedy_sc, solve_greedy_sc_scan_max, solve_opt, solve_scan, solve_scan_plus, LabelOrder,
    OptConfig,
};
use mqd_core::{coverage, FixedLambda, VariableLambda};

fn bench_offline_solvers(c: &mut Criterion) {
    let mut g = c.benchmark_group("offline_solvers");
    for &l in &[2usize, 5, 20] {
        let inst = ten_minute_instance(l, 30.0, 1.2, 42);
        let f = FixedLambda(15_000);
        g.bench_with_input(BenchmarkId::new("scan", l), &inst, |b, inst| {
            b.iter(|| black_box(solve_scan(inst, &f)))
        });
        g.bench_with_input(BenchmarkId::new("scan_plus", l), &inst, |b, inst| {
            b.iter(|| black_box(solve_scan_plus(inst, &f, LabelOrder::Input)))
        });
        g.bench_with_input(BenchmarkId::new("greedy_lazy", l), &inst, |b, inst| {
            b.iter(|| black_box(solve_greedy_sc(inst, &f)))
        });
    }
    g.finish();
}

fn bench_greedy_selection_strategies(c: &mut Criterion) {
    // The ablation the paper discusses in Section 7.3: scan-max vs heap.
    let inst = ten_minute_instance(5, 30.0, 1.2, 7);
    let f = FixedLambda(30_000);
    let mut g = c.benchmark_group("greedy_selection");
    g.bench_function("lazy_heap", |b| {
        b.iter(|| black_box(solve_greedy_sc(&inst, &f)))
    });
    g.bench_function("scan_max", |b| {
        b.iter(|| black_box(solve_greedy_sc_scan_max(&inst, &f)))
    });
    g.finish();
}

fn bench_opt_small(c: &mut Criterion) {
    let inst = ten_minute_instance(2, OPT_FEASIBLE_PER_LABEL_PER_MIN, 1.2, 3);
    c.bench_function("opt_dp_10min_L2", |b| {
        b.iter(|| black_box(solve_opt(&inst, 5_000, &OptConfig::default()).unwrap()))
    });
}

fn bench_coverage_verification(c: &mut Criterion) {
    let inst = ten_minute_instance(5, 60.0, 1.2, 9);
    let f = FixedLambda(30_000);
    let sol = solve_scan(&inst, &f);
    c.bench_function("verify_cover", |b| {
        b.iter(|| black_box(coverage::is_cover(&inst, &f, &sol.selected)))
    });
}

fn bench_variable_lambda(c: &mut Criterion) {
    let inst = ten_minute_instance(5, 60.0, 1.2, 13);
    c.bench_function("variable_lambda_precompute", |b| {
        b.iter(|| black_box(VariableLambda::compute(&inst, 30_000)))
    });
}

criterion_group!(
    benches,
    bench_offline_solvers,
    bench_greedy_selection_strategies,
    bench_opt_small,
    bench_coverage_verification,
    bench_variable_lambda,
);
criterion_main!(benches);
