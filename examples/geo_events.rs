//! Spatiotemporal diversification (the paper's Section 9 extension): posts
//! about city events cluster at spatial hotspots; a representative digest
//! must cover **both** the timeline and the map.
//!
//! ```text
//! cargo run --release --example geo_events
//! ```

use mqdiv::geo::{
    generate_geo_posts, solve_geo_greedy, solve_geo_sweep, GeoInstance, GeoLambda, GeoStreamConfig,
};

fn main() {
    // One hour of geotagged posts around 4 hotspots in a 20 km square.
    let cfg = GeoStreamConfig {
        num_labels: 3,
        hotspots: 4,
        posts: 1_200,
        seed: 2014,
        ..Default::default()
    };
    let posts = generate_geo_posts(&cfg);
    println!(
        "{} geotagged posts, {} topics, {} hotspots",
        posts.len(),
        cfg.num_labels,
        cfg.hotspots
    );

    // Time-only view: huge lambda.dist collapses the problem to 1-D MQDP.
    let time_only = GeoInstance::new(posts.clone(), 3, GeoLambda::new(300_000, 1_000_000));
    let sol_1d = solve_geo_greedy(&time_only);
    assert!(time_only.is_cover(&sol_1d.selected));

    // Spatiotemporal view: 500 m radius — each hotspot needs its own
    // representatives.
    let spatio = GeoInstance::new(posts.clone(), 3, GeoLambda::new(300_000, 500));
    let sol_2d = solve_geo_greedy(&spatio);
    let sol_sweep = solve_geo_sweep(&spatio);
    assert!(spatio.is_cover(&sol_2d.selected));
    assert!(spatio.is_cover(&sol_sweep.selected));

    println!("\nlambda.time = 5 min:");
    println!(
        "  time-only digest (dist threshold ~inf): {:>4} posts",
        sol_1d.size()
    );
    println!(
        "  spatiotemporal digest (dist 500 m)    : {:>4} posts (greedy), {:>4} (sweep)",
        sol_2d.size(),
        sol_sweep.size()
    );

    // Show where the spatiotemporal representatives sit.
    println!("\nfirst representatives (minute, x km, y km, labels):");
    for &i in sol_2d.selected.iter().take(12) {
        let p = spatio.post(i);
        let labels: Vec<String> = p.labels().iter().map(|l| l.to_string()).collect();
        println!(
            "  [{:>5.1}] ({:>6.2}, {:>6.2}) {:?}",
            p.time() as f64 / 60_000.0,
            p.x() as f64 / 1000.0,
            p.y() as f64 / 1000.0,
            labels
        );
    }
    println!(
        "\nthe time-only digest merges colocated-in-time but distant posts; \
         the spatiotemporal one keeps one voice per hotspot. ✓"
    );
}
