//! Sentiment as the diversity dimension (Sections 2 and 6): score posts
//! with the lexicon scorer, cover the polarity axis instead of the
//! timeline, and compare a fixed lambda against the proportional
//! (density-dependent) lambda of Equation 2.
//!
//! With proportional diversity, crowded sentiment regions get a smaller
//! lambda — so the selection mirrors the overall mood distribution while
//! rare opposite voices still surface.
//!
//! ```text
//! cargo run --release --example sentiment_explorer
//! ```

use mqdiv::core::algorithms::solve_greedy_sc;
use mqdiv::core::{
    coverage, FixedLambda, Instance, LabelId, Post, PostId, VariableLambda, SENTIMENT_SCALE,
};
use mqdiv::datagen::{generate_tweets, TweetStreamConfig, MINUTE_MS};
use mqdiv::text::{KeywordMatcher, SentimentScorer};

fn histogram(inst: &Instance, selected: &[u32]) -> [usize; 5] {
    // buckets: very-negative, negative, neutral, positive, very-positive
    let mut h = [0usize; 5];
    for &i in selected {
        let s = inst.value(i) as f64 / SENTIMENT_SCALE as f64;
        let b = if s < -0.6 {
            0
        } else if s < -0.2 {
            1
        } else if s <= 0.2 {
            2
        } else if s <= 0.6 {
            3
        } else {
            4
        };
        h[b] += 1;
    }
    h
}

fn main() {
    // "unemployment rate drops" style day: mostly positive chatter about
    // the economy, some negative. Generate text, match one query, score
    // sentiment.
    let tweets = generate_tweets(&TweetStreamConfig {
        tweets_per_minute: 500.0,
        topical_fraction: 0.8,
        duration_ms: 20 * MINUTE_MS,
        seed: 2013,
        ..TweetStreamConfig::default()
    });
    let query = vec![vec![
        "economy".to_string(),
        "unemployment".to_string(),
        "jobs".to_string(),
        "growth".to_string(),
        "budget".to_string(),
    ]];
    let matcher = KeywordMatcher::new(&query);
    let scorer = SentimentScorer::new();

    let mut posts = Vec::new();
    for (i, t) in tweets.iter().enumerate() {
        let labels = matcher.match_labels(&t.text);
        if labels.is_empty() {
            continue;
        }
        // Diversity dimension = sentiment polarity (fixed-point).
        posts.push(Post::new(
            PostId(i as u64),
            scorer.score_fixed(&t.text),
            labels.into_iter().map(LabelId).collect(),
        ));
    }
    let inst = Instance::from_posts(posts, 1).expect("valid");
    println!("matched {} economy posts", inst.len());
    println!(
        "full-set sentiment histogram     {:?}",
        histogram(&inst, &(0..inst.len() as u32).collect::<Vec<_>>())
    );

    // Fixed lambda: uniform coverage of the polarity axis.
    let lam0 = SENTIMENT_SCALE / 5; // 0.2 polarity units
    let fixed = FixedLambda(lam0);
    let sol_fixed = solve_greedy_sc(&inst, &fixed);
    assert!(coverage::is_cover(&inst, &fixed, &sol_fixed.selected));
    println!(
        "fixed lambda       -> {:>3} posts {:?}",
        sol_fixed.size(),
        histogram(&inst, &sol_fixed.selected)
    );

    // Proportional lambda (Equation 2): denser sentiment regions get a
    // smaller threshold, so they keep more representatives.
    let var = VariableLambda::compute(&inst, lam0);
    let sol_var = solve_greedy_sc(&inst, &var);
    assert!(coverage::is_cover(&inst, &var, &sol_var.selected));
    println!(
        "proportional lambda-> {:>3} posts {:?}",
        sol_var.size(),
        histogram(&inst, &sol_var.selected)
    );

    let lab = LabelId(0);
    println!(
        "\nexample thresholds: dense-region lambda {:.3}, sparse-region lambda {:.3} (lambda0 {:.3})",
        var.lambda(&inst, densest_post(&inst), lab) as f64 / SENTIMENT_SCALE as f64,
        var.lambda(&inst, sparsest_post(&inst), lab) as f64 / SENTIMENT_SCALE as f64,
        lam0 as f64 / SENTIMENT_SCALE as f64,
    );
}

use mqdiv::core::LambdaProvider;

fn densest_post(inst: &Instance) -> u32 {
    // median post sits in the crowd
    (inst.len() / 2) as u32
}

fn sparsest_post(inst: &Instance) -> u32 {
    // extreme polarity posts sit in sparse territory
    (inst.len() - 1) as u32
}
