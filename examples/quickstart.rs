//! Quickstart: build a tiny MQDP instance by hand, run every offline solver
//! and one streaming engine, and verify the covers.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mqdiv::core::algorithms::{
    solve_greedy_sc, solve_opt, solve_scan, solve_scan_plus, LabelOrder, OptConfig,
};
use mqdiv::core::{coverage, FixedLambda, Instance, Solution};
use mqdiv::stream::{run_stream, StreamScan};

fn show(inst: &Instance, sol: &Solution) {
    let times: Vec<i64> = sol.selected.iter().map(|&i| inst.value(i)).collect();
    println!(
        "  {:<10} -> {:>2} posts, at times {:?}",
        sol.algorithm,
        sol.size(),
        times
    );
}

fn main() {
    // The running example of the paper (Figure 2): four posts on a
    // timeline, two queries a=0 and c=1, lambda = one step.
    //   t=0:{a}  t=10:{a}  t=20:{a,c}  t=30:{c}
    let inst = Instance::from_values(
        vec![(0, vec![0]), (10, vec![0]), (20, vec![0, 1]), (30, vec![1])],
        2,
    )
    .expect("valid instance");
    let lambda = FixedLambda(10);

    println!(
        "Instance: {} posts, {} labels, overlap rate {:.2}",
        inst.len(),
        inst.num_labels(),
        inst.overlap_rate()
    );
    println!("\nOffline MQDP (Section 4):");
    let opt = solve_opt(&inst, 10, &OptConfig::default()).expect("small instance");
    show(&inst, &opt);
    for sol in [
        solve_greedy_sc(&inst, &lambda),
        solve_scan(&inst, &lambda),
        solve_scan_plus(&inst, &lambda, LabelOrder::Input),
    ] {
        assert!(coverage::is_cover(&inst, &lambda, &sol.selected));
        show(&inst, &sol);
    }

    println!("\nStreaming MQDP (Section 5), tau = 5:");
    let mut engine = StreamScan::new_plus(inst.num_labels(), inst.len());
    let res = run_stream(&inst, &lambda, 5, &mut engine);
    assert!(res.is_cover(&inst, &lambda));
    println!(
        "  {:<10} -> {:>2} posts, max delay {} (tau 5)",
        res.algorithm,
        res.size(),
        res.max_delay
    );
    for e in &res.emissions {
        println!(
            "    post at t={:<3} emitted at t={:<3} (delay {})",
            inst.value(e.post),
            e.emit_time,
            e.delay(&inst)
        );
    }
    println!("\nAll covers verified. ✓");
}
