//! End-to-end pipeline of the paper's Figure 1, streaming option:
//!
//! 1. generate a synthetic news corpus (RSS substitute),
//! 2. train LDA and extract topics → queries (Mallet substitute),
//! 3. build a journalist profile: |L| topics from one broad topic,
//! 4. generate a tweet stream, drop near-duplicates with SimHash,
//! 5. match tweets to queries, diversify on the time dimension with
//!    StreamScan+, and print the representative timeline.
//!
//! ```text
//! cargo run --release --example news_monitor
//! ```

use mqdiv::core::{FixedLambda, Instance, LabelId, Post, PostId};
use mqdiv::datagen::{
    generate_news, generate_tweets, NewsConfig, ProfileGenerator, TweetStreamConfig, MINUTE_MS,
};
use mqdiv::stream::{run_stream, StreamScan};
use mqdiv::text::{KeywordMatcher, NearDuplicateFilter};
use mqdiv::topics::{extract_topics, LdaConfig, LdaModel, Vocabulary};

fn main() {
    // 1. News corpus.
    let corpus = generate_news(&NewsConfig {
        articles: 300,
        seed: 20130612,
        ..NewsConfig::default()
    });
    println!("corpus: {} articles", corpus.len());

    // 2. LDA topics -> queries (top-8 keywords each at this scale; the
    //    paper keeps 40 of a much larger vocabulary).
    let mut vocab = Vocabulary::new();
    let docs: Vec<Vec<u32>> = corpus.iter().map(|a| vocab.intern_text(&a.text)).collect();
    let model = LdaModel::train(
        &docs,
        vocab.len(),
        LdaConfig {
            num_topics: 20,
            iterations: 40,
            seed: 17,
            ..LdaConfig::default()
        },
    );
    let topics = extract_topics(&model, &vocab, 8);
    // Broad topic of each LDA topic = majority ground-truth broad of the
    // documents it dominates.
    let mut broad_of_topic = vec![0usize; topics.len()];
    for (k, bt) in broad_of_topic.iter_mut().enumerate() {
        let mut votes = [0u32; 10];
        for (d, a) in corpus.iter().enumerate() {
            if model.dominant_topic(d) == k {
                votes[a.broad_topic] += 1;
            }
        }
        *bt = (0..10).max_by_key(|&b| votes[b]).unwrap_or(0);
    }

    // 3. Journalist profile: 3 topics within one broad topic.
    let profiles = ProfileGenerator::new(&broad_of_topic);
    let profile = profiles.sample_many(3, 1, 99).remove(0);
    println!("\nprofile (|L| = 3):");
    let queries: Vec<Vec<String>> = profile
        .iter()
        .map(|&t| topics[t].keyword_strings())
        .collect();
    for (i, &t) in profile.iter().enumerate() {
        println!(
            "  L{i}: topic #{t} {:?}",
            &queries[i][..queries[i].len().min(5)]
        );
    }

    // 4. Tweet stream + SimHash near-duplicate elimination.
    let tweets = generate_tweets(&TweetStreamConfig {
        tweets_per_minute: 400.0,
        retweet_fraction: 0.15,
        duration_ms: 30 * MINUTE_MS,
        seed: 613,
        ..TweetStreamConfig::default()
    });
    let mut dedup = NearDuplicateFilter::new(3);
    let unique: Vec<_> = tweets
        .iter()
        .filter(|t| dedup.insert_text(&t.text))
        .collect();
    println!(
        "\nstream: {} tweets, {} after SimHash dedup",
        tweets.len(),
        unique.len()
    );

    // 5. Match and diversify (time dimension, lambda = 2 min, tau = 30 s).
    let matcher = KeywordMatcher::new(&queries);
    let mut posts = Vec::new();
    let mut texts = Vec::new();
    for t in &unique {
        let labels = matcher.match_labels(&t.text);
        if !labels.is_empty() {
            posts.push(Post::new(
                PostId(texts.len() as u64),
                t.timestamp_ms,
                labels.into_iter().map(LabelId).collect(),
            ));
            texts.push(t.text.clone());
        }
    }
    let inst = Instance::from_posts(posts, 3).expect("valid");
    println!(
        "matched: {} posts ({:.1}/min)",
        inst.len(),
        inst.len() as f64 / 30.0
    );

    let lambda = FixedLambda(2 * MINUTE_MS);
    let mut engine = StreamScan::new_plus(3, inst.len());
    let res = run_stream(&inst, &lambda, 30_000, &mut engine);
    assert!(res.is_cover(&inst, &lambda));
    println!(
        "\ndiversified timeline ({} of {} posts, max delay {:.1}s):",
        res.size(),
        inst.len(),
        res.max_delay as f64 / 1000.0
    );
    for &i in res.selected.iter().take(15) {
        let id = inst.post(i).id().0 as usize;
        let labels: Vec<String> = inst.labels(i).iter().map(|l| l.to_string()).collect();
        println!(
            "  [{:>5.1} min] {:?} {}",
            inst.value(i) as f64 / MINUTE_MS as f64,
            labels,
            &texts[id][..texts[id].len().min(60)]
        );
    }
    if res.size() > 15 {
        println!("  ... and {} more", res.size() - 15);
    }
}
