//! The investor scenario from the paper's introduction: subscribe to
//! ticker-style queries ('GOOG', 'MSFT', 'NASDAQ'), require **instant**
//! decisions (tau = 0), and compare the instant cache engine against the
//! delayed StreamScan across tau values — the size/delay trade-off of
//! Section 5.
//!
//! ```text
//! cargo run --release --example investor_feed
//! ```

use mqdiv::core::{FixedLambda, Instance};
use mqdiv::datagen::{generate_labeled_posts, LabeledStreamConfig, MINUTE_MS};
use mqdiv::stream::{run_stream, InstantScan, StreamGreedy, StreamScan};

fn main() {
    // Three tickers with skewed popularity (GOOG busier than MSFT etc.).
    let names = ["GOOG", "MSFT", "NASDAQ"];
    let posts = generate_labeled_posts(&LabeledStreamConfig {
        num_labels: 3,
        per_label_per_minute: 40.0,
        overlap: 1.3,
        label_skew: 0.8,
        duration_ms: 60 * MINUTE_MS,
        seed: 42,
        ..LabeledStreamConfig::default()
    });
    let inst = Instance::from_posts(posts, 3).expect("valid");
    println!(
        "one hour of ticker posts: {} matching posts ({:.0}/min), overlap {:.2}",
        inst.len(),
        inst.len() as f64 / 60.0,
        inst.overlap_rate()
    );
    for (i, name) in names.iter().enumerate() {
        println!(
            "  {name:<7} {:>5} posts",
            inst.postings(mqdiv::core::LabelId(i as u16)).len()
        );
    }

    let lambda = FixedLambda(2 * MINUTE_MS);
    println!("\nlambda = 2 min; trade-off between output size and delay:");
    println!("{:<18} {:>8} {:>12}", "engine", "|Z|", "max delay(s)");

    // Instant decisions: tau = 0.
    let mut instant = InstantScan::new(3);
    let r = run_stream(&inst, &lambda, 0, &mut instant);
    assert!(r.is_cover(&inst, &lambda));
    println!(
        "{:<18} {:>8} {:>12.1}",
        "Instant (tau=0)",
        r.size(),
        r.max_delay as f64 / 1000.0
    );

    // Delayed engines at increasing tau: fewer posts, more delay.
    for tau_s in [15i64, 60, 120] {
        let tau = tau_s * 1000;
        let mut scan = StreamScan::new_plus(3, inst.len());
        let r = run_stream(&inst, &lambda, tau, &mut scan);
        assert!(r.is_cover(&inst, &lambda));
        println!(
            "{:<18} {:>8} {:>12.1}",
            format!("StreamScan+ {tau_s}s"),
            r.size(),
            r.max_delay as f64 / 1000.0
        );

        let mut greedy = StreamGreedy::new(3, inst.len());
        let r = run_stream(&inst, &lambda, tau, &mut greedy);
        assert!(r.is_cover(&inst, &lambda));
        println!(
            "{:<18} {:>8} {:>12.1}",
            format!("StreamGreedySC {tau_s}s"),
            r.size(),
            r.max_delay as f64 / 1000.0
        );
    }
    println!("\nAll output sub-streams verified as lambda-covers. ✓");
}
