//! A live service in miniature: one global stream fanned out to many
//! subscribers ([`MultiUserHub`]), one user's burst-aware adaptive digest
//! ([`AdaptiveInstant`]), and the sliding-window timeline their client
//! would render ([`WindowedTimeline`]).
//!
//! ```text
//! cargo run --release --example live_digest
//! ```

use mqdiv::core::LabelId;
use mqdiv::datagen::{generate_burst_posts, Burst, BurstStreamConfig, MINUTE_MS};
use mqdiv::stream::{AdaptiveInstant, MultiUserHub, WindowedTimeline};

fn main() {
    // A 2-hour stream about one topic with a breaking-news burst.
    let posts = generate_burst_posts(&BurstStreamConfig {
        num_labels: 1,
        base_rate: 6.0,
        duration_ms: 120 * MINUTE_MS,
        bursts: vec![Burst {
            label: 0,
            start_ms: 60 * MINUTE_MS,
            duration_ms: 15 * MINUTE_MS,
            intensity: 12.0,
        }],
        seed: 99,
    });
    println!(
        "global stream: {} posts (burst at minute 60-75)",
        posts.len()
    );

    // 1. Fan-out: 5 users, some following topic 0.
    let mut hub = MultiUserHub::new(
        vec![vec![0], vec![0], vec![1], vec![0, 1], vec![2]],
        2 * MINUTE_MS,
    );
    for p in &posts {
        let topics: Vec<u32> = p.labels().iter().map(|l| l.0 as u32).collect();
        hub.on_post(p.value(), &topics);
    }
    println!("\nper-user deliveries (lambda = 2 min, instant rule):");
    for (u, s) in hub.stats().iter().enumerate() {
        println!(
            "  user {u}: matched {:>4}, delivered {:>3}",
            s.matched, s.delivered
        );
    }

    // 2. One user's adaptive digest: Eq. 2 estimated online.
    let mut adaptive = AdaptiveInstant::new(1, 2 * MINUTE_MS);
    let mut kept_pre = 0usize;
    let mut kept_burst = 0usize;
    let mut kept_post = 0usize;
    for p in &posts {
        if adaptive.on_post(p.value(), &[LabelId(0)]) {
            match p.value() / MINUTE_MS {
                0..=59 => kept_pre += 1,
                60..=75 => kept_burst += 1,
                _ => kept_post += 1,
            }
        }
    }
    println!(
        "\nadaptive digest: {kept_pre} posts in the first hour, \
         {kept_burst} during the 15-minute burst, {kept_post} after \
         (the burst gets denser coverage, as Section 6 argues)"
    );

    // 3. The client timeline: last 30 minutes, diversified on render.
    let mut tl = WindowedTimeline::new(1, 30 * MINUTE_MS, 2 * MINUTE_MS);
    for p in &posts {
        tl.on_post(p.id().0, p.value(), vec![0]);
    }
    let digest = tl.digest();
    println!(
        "\ntimeline window holds {} posts; rendered digest: {} representatives:",
        tl.len(),
        digest.len()
    );
    for p in digest.iter().take(10) {
        println!(
            "  [minute {:>5.1}] post #{}",
            p.time as f64 / MINUTE_MS as f64,
            p.id
        );
    }
    if digest.len() > 10 {
        println!("  ... and {} more", digest.len() - 10);
    }
}
