//! Seeded fuzz tests for the streaming engines: covers, delay budgets,
//! and the structural invariants of Section 5 on randomized streams
//! (ported from the former proptest suite to plain loops over `mqd_rng`
//! seeds).

use mqd_rng::{RngExt, SeedableRng, StdRng};

use mqdiv::core::algorithms::solve_scan;
use mqdiv::core::{FixedLambda, Instance};
use mqdiv::stream::{run_stream, InstantScan, StreamGreedy, StreamRunResult, StreamScan};

fn stream_instance(rng: &mut StdRng) -> (Instance, i64, i64) {
    let n = rng.random_range(1..80usize);
    let items: Vec<(i64, Vec<u16>)> = (0..n)
        .map(|_| {
            let t = rng.random_range(0..3_000i64);
            let k = rng.random_range(1..3usize);
            let labels: Vec<u16> = (0..k).map(|_| rng.random_range(0..4u16)).collect();
            (t, labels)
        })
        .collect();
    let lambda = rng.random_range(1..300i64);
    let tau = rng.random_range(0..400i64);
    (
        Instance::from_values(items, 4).expect("labels < 4"),
        lambda,
        tau,
    )
}

fn run_all(inst: &Instance, lambda: &FixedLambda, tau: i64) -> Vec<StreamRunResult> {
    let l = inst.num_labels();
    let n = inst.len();
    vec![
        run_stream(inst, lambda, tau, &mut StreamScan::new(l, n)),
        run_stream(inst, lambda, tau, &mut StreamScan::new_plus(l, n)),
        run_stream(inst, lambda, tau, &mut StreamGreedy::new(l, n)),
        run_stream(inst, lambda, tau, &mut StreamGreedy::new_plus(l, n)),
        run_stream(inst, lambda, 0, &mut InstantScan::new(l)),
    ]
}

const CASES: u64 = 48;

#[test]
fn engines_always_cover_and_respect_tau() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let (inst, lambda, tau) = stream_instance(&mut rng);
        let f = FixedLambda(lambda);
        for res in run_all(&inst, &f, tau) {
            assert!(
                res.is_cover(&inst, &f),
                "{} non-cover (seed {seed})",
                res.algorithm
            );
            let budget = if res.algorithm == "Instant" { 0 } else { tau };
            assert!(
                res.max_delay <= budget,
                "{}: delay {} > budget {budget} (seed {seed})",
                res.algorithm,
                res.max_delay
            );
        }
    }
}

#[test]
fn emissions_reference_real_posts_once() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let (inst, lambda, tau) = stream_instance(&mut rng);
        let f = FixedLambda(lambda);
        for res in run_all(&inst, &f, tau) {
            let mut seen = std::collections::HashSet::new();
            for e in &res.emissions {
                assert!((e.post as usize) < inst.len(), "seed {seed}");
                assert!(
                    seen.insert(e.post),
                    "{} re-emitted a post (seed {seed})",
                    res.algorithm
                );
                assert!(e.emit_time >= inst.value(e.post), "seed {seed}");
            }
            assert_eq!(seen.len(), res.selected.len(), "seed {seed}");
        }
    }
}

#[test]
fn stream_scan_with_huge_tau_equals_offline() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let (inst, lambda, _tau) = stream_instance(&mut rng);
        let f = FixedLambda(lambda);
        let offline = solve_scan(&inst, &f);
        let mut eng = StreamScan::new(inst.num_labels(), inst.len());
        let res = run_stream(&inst, &f, lambda * 4 + 1, &mut eng);
        assert_eq!(res.selected, offline.selected, "seed {seed}");
    }
}

#[test]
fn instant_outputs_are_pairwise_uncovered_single_label() {
    // The paper's 2s argument (Section 5.1) shows consecutive emissions
    // are > lambda apart; with multiple labels a post emitted for a
    // *different* uncovered label may land inside lambda on a shared
    // label, so the pairwise property is a theorem only per single-label
    // stream — which is exactly the setting of the paper's proof.
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.random_range(1..80usize);
        let times: Vec<i64> = (0..n).map(|_| rng.random_range(0..3_000i64)).collect();
        let lambda = rng.random_range(1..300i64);
        let inst = Instance::from_values(times.into_iter().map(|t| (t, vec![0u16])), 1).unwrap();
        let f = FixedLambda(lambda);
        let mut eng = InstantScan::new(1);
        let res = run_stream(&inst, &f, 0, &mut eng);
        let ts: Vec<i64> = res.selected.iter().map(|&i| inst.value(i)).collect();
        for w in ts.windows(2) {
            assert!(
                w[1] - w[0] > lambda,
                "instant cache admitted a covered emission (seed {seed})"
            );
        }
        // And the 2s bound itself (s = 1): |output| <= 2 * |opt|.
        let opt = solve_scan(&inst, &f); // optimal for a single label
        assert!(res.size() <= 2 * opt.size(), "seed {seed}");
    }
}

#[test]
fn greedy_windows_never_exceed_offline_input() {
    // Sanity: the emitted sub-stream is a subset of the input and not
    // larger than the trivial cover.
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let (inst, lambda, tau) = stream_instance(&mut rng);
        let f = FixedLambda(lambda);
        let mut eng = StreamGreedy::new(inst.num_labels(), inst.len());
        let res = run_stream(&inst, &f, tau, &mut eng);
        assert!(res.size() <= inst.len(), "seed {seed}");
    }
}
