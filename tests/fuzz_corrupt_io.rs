//! Seeded corruption fuzzing for the binary decoders: every mutation of a
//! valid binlog or checkpoint blob must produce a typed `Err` (or, behind
//! a vanishingly unlikely FNV collision, a value equal to the original) —
//! never a panic and never silent garbage. Each assertion carries its seed
//! so a failure is reproducible with a one-line filter.

use mqd_cli::binlog;
use mqd_cli::tsv::{self, LabeledRow};
use mqd_rng::{RngExt, SeedableRng, StdRng};
use mqd_stream::{
    encode_checkpoint, resume_supervised, FaultPlan, ShardEngineKind, SupervisedRun,
    SupervisorConfig,
};
use mqdiv::core::{Instance, MqdError};

const CASES: u64 = 64;

fn random_rows(rng: &mut StdRng) -> Vec<LabeledRow> {
    let n = rng.random_range(1..40usize);
    let mut t = 0i64;
    (0..n)
        .map(|i| {
            t += rng.random_range(0..1_000i64);
            let k = rng.random_range(1..4usize);
            LabeledRow {
                id: i as u64,
                value: t,
                labels: (0..k).map(|_| rng.random_range(0..6u32) as u16).collect(),
            }
        })
        .collect()
}

fn stream_instance(rng: &mut StdRng) -> Instance {
    let rows = random_rows(rng);
    tsv::to_instance(&rows, None).expect("generated rows are valid")
}

#[test]
fn binlog_corruption_is_always_a_typed_error() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = random_rows(&mut rng);
        let data = binlog::encode(&rows);
        // Byte flips at several positions.
        for _ in 0..8 {
            let mut bad = data.clone();
            let pos = rng.random_range(0..bad.len());
            bad[pos] ^= 1 << rng.random_range(0..8u32);
            match binlog::decode(&bad) {
                Err(MqdError::Corrupt { .. }) => {}
                Err(other) => panic!("seed {seed}: non-Corrupt error {other:?}"),
                Ok(decoded) => assert_eq!(decoded, rows, "seed {seed}: silent corruption"),
            }
        }
        // Truncation at every possible length shorter than the original.
        let cut = rng.random_range(0..data.len());
        match binlog::decode(&data[..cut]) {
            Err(MqdError::Corrupt { .. }) => {}
            Err(other) => panic!("seed {seed}: non-Corrupt error {other:?}"),
            Ok(_) => panic!("seed {seed}: truncated log decoded"),
        }
    }
}

#[test]
fn tsv_garbage_never_panics() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.random_range(0..200usize);
        let bytes: Vec<u8> = (0..n)
            .map(|_| {
                // Bias toward structure-relevant bytes so parsing gets past
                // the first field often enough to exercise deeper paths.
                match rng.random_range(0..4u32) {
                    0 => b'\t',
                    1 => b'\n',
                    2 => b'0' + (rng.random_range(0..10u32) as u8),
                    _ => rng.random_range(0..128u32) as u8,
                }
            })
            .collect();
        // Any outcome is fine except a panic.
        let _ = tsv::read_labeled(bytes.as_slice());
        let _ = tsv::read_text(bytes.as_slice());
    }
}

#[test]
fn checkpoint_corruption_is_always_a_typed_error() {
    for seed in 0..CASES / 4 {
        let mut rng = StdRng::seed_from_u64(0x43_4b_50_54 ^ seed);
        let inst = stream_instance(&mut rng);
        let (lambda, tau, shards) = (1_500i64, 700i64, 3usize);
        let kind = ShardEngineKind::ScanPlus;
        let plan = FaultPlan::for_instance(&inst, shards, seed, tau);
        let base = SupervisorConfig::default();
        let cfg = SupervisorConfig {
            max_restarts: base.max_restarts + plan.max_panics_per_shard(),
            ..base
        };

        let mut run = SupervisedRun::new(&inst, lambda, tau, shards, kind, &plan, cfg);
        let stop = rng.random_range(0..inst.len().max(1) as u32 + 1);
        while run.position() < stop && run.step().expect("chaos run failed") {}
        let bytes = encode_checkpoint(&mut run);
        drop(run);

        for _ in 0..8 {
            let mut bad = bytes.clone();
            let pos = rng.random_range(0..bad.len());
            bad[pos] ^= 1 << rng.random_range(0..8u32);
            match resume_supervised(&inst, lambda, tau, shards, kind, &plan, cfg, &bad) {
                Err(MqdError::Corrupt { .. }) | Err(MqdError::CheckpointMismatch { .. }) => {}
                Err(other) => panic!("seed {seed}: unexpected error {other:?}"),
                Ok(mut resumed) => {
                    // FNV collision or a flip the checksum absorbed — the
                    // resumed run must still complete without panicking.
                    resumed.run_all().unwrap_or(());
                }
            }
        }
        let cut = rng.random_range(0..bytes.len());
        match resume_supervised(&inst, lambda, tau, shards, kind, &plan, cfg, &bytes[..cut]) {
            Err(MqdError::Corrupt { .. }) => {}
            Err(other) => panic!("seed {seed}: non-Corrupt error {other:?}"),
            Ok(_) => panic!("seed {seed}: truncated checkpoint resumed"),
        }
    }
}
