//! Seeded fuzz tests for the offline solvers: every algorithm always
//! returns a valid lambda-cover, the exact solvers agree, and the paper's
//! approximation bounds hold on randomized instances. Ported from the
//! former proptest suite to plain `#[test]` loops over `mqd_rng` seeds so
//! the build needs no external crates; every case is reproducible from the
//! printed seed.

use mqd_rng::{RngExt, SeedableRng, StdRng};

use mqdiv::core::algorithms::{
    complete_cover, solve_brute, solve_greedy_sc, solve_greedy_sc_naive, solve_opt, solve_scan,
    solve_scan_plus, LabelOrder, OptConfig,
};
use mqdiv::core::{coverage, FixedLambda, Instance, VariableLambda};

/// A small random instance plus a lambda (exact solvers stay feasible).
fn tiny_instance(rng: &mut StdRng) -> (Instance, i64) {
    let n = rng.random_range(1..10usize);
    let items: Vec<(i64, Vec<u16>)> = (0..n)
        .map(|_| {
            let t = rng.random_range(0..80i64);
            let k = rng.random_range(1..3usize);
            let labels: Vec<u16> = (0..k).map(|_| rng.random_range(0..3u16)).collect();
            (t, labels)
        })
        .collect();
    let lambda = rng.random_range(0..30i64);
    (Instance::from_values(items, 3).expect("labels < 3"), lambda)
}

/// A medium instance (too big for exact solvers, fine for approximations).
fn medium_instance(rng: &mut StdRng) -> (Instance, i64) {
    let n = rng.random_range(1..120usize);
    let items: Vec<(i64, Vec<u16>)> = (0..n)
        .map(|_| {
            let t = rng.random_range(0..5_000i64);
            let k = rng.random_range(1..4usize);
            let labels: Vec<u16> = (0..k).map(|_| rng.random_range(0..5u16)).collect();
            (t, labels)
        })
        .collect();
    let lambda = rng.random_range(0..400i64);
    (Instance::from_values(items, 5).expect("labels < 5"), lambda)
}

const CASES: u64 = 64;

#[test]
fn opt_matches_brute_force() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let (inst, lambda) = tiny_instance(&mut rng);
        let dp = solve_opt(&inst, lambda, &OptConfig::default()).unwrap();
        let bf = solve_brute(&inst, &FixedLambda(lambda), None).unwrap();
        assert!(
            coverage::is_cover(&inst, &FixedLambda(lambda), &dp.selected),
            "seed {seed}"
        );
        assert_eq!(dp.size(), bf.size(), "seed {seed}");
    }
}

#[test]
fn all_approximations_return_valid_covers() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let (inst, lambda) = medium_instance(&mut rng);
        let f = FixedLambda(lambda);
        for sol in [
            solve_scan(&inst, &f),
            solve_scan_plus(&inst, &f, LabelOrder::Input),
            solve_scan_plus(&inst, &f, LabelOrder::DensestFirst),
            solve_scan_plus(&inst, &f, LabelOrder::SparsestFirst),
            solve_greedy_sc(&inst, &f),
        ] {
            assert!(
                coverage::is_cover(&inst, &f, &sol.selected),
                "{} produced a non-cover (seed {seed})",
                sol.algorithm
            );
            // Selected posts must be real indices, sorted, unique.
            assert!(sol.selected.windows(2).all(|w| w[0] < w[1]), "seed {seed}");
            assert!(
                sol.selected.iter().all(|&i| (i as usize) < inst.len()),
                "seed {seed}"
            );
        }
    }
}

#[test]
fn scan_bound_holds() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let (inst, lambda) = tiny_instance(&mut rng);
        let f = FixedLambda(lambda);
        let opt = solve_brute(&inst, &f, None).unwrap();
        let scan = solve_scan(&inst, &f);
        let s = inst.max_labels_per_post().max(1);
        assert!(
            scan.size() <= s * opt.size().max(1) || scan.size() <= s * opt.size(),
            "seed {seed}"
        );
        assert!(opt.size() <= scan.size(), "seed {seed}");
    }
}

#[test]
fn greedy_variants_agree() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let (inst, lambda) = medium_instance(&mut rng);
        let f = FixedLambda(lambda);
        let lazy = solve_greedy_sc(&inst, &f);
        let naive = solve_greedy_sc_naive(&inst, &f);
        assert_eq!(lazy.selected, naive.selected, "seed {seed}");
    }
}

#[test]
fn greedy_variants_agree_under_variable_lambda() {
    // The Fenwick fast path and the materialized sets must implement the
    // same *directional* coverage under Eq. 2 thresholds.
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let (inst, lambda) = medium_instance(&mut rng);
        let var = VariableLambda::compute(&inst, lambda.max(1));
        let lazy = solve_greedy_sc(&inst, &var);
        let naive = solve_greedy_sc_naive(&inst, &var);
        assert_eq!(lazy.selected, naive.selected, "seed {seed}");
    }
}

#[test]
fn complete_cover_contains_pins_and_covers() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let (inst, lambda) = medium_instance(&mut rng);
        let f = FixedLambda(lambda);
        let pin = rng.random_range(0..inst.len()) as u32;
        let sol = complete_cover(&inst, &f, &[pin]);
        assert!(sol.selected.contains(&pin), "seed {seed}");
        assert!(coverage::is_cover(&inst, &f, &sol.selected), "seed {seed}");
    }
}

#[test]
fn covers_are_monotone_in_lambda() {
    // A cover for lambda stays a cover for any larger lambda.
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let (inst, lambda) = tiny_instance(&mut rng);
        let f = FixedLambda(lambda);
        let sol = solve_scan(&inst, &f);
        let bigger = FixedLambda(lambda + 17);
        assert!(
            coverage::is_cover(&inst, &bigger, &sol.selected),
            "seed {seed}"
        );
        // And the optimum can only shrink.
        let opt_small = solve_brute(&inst, &f, None).unwrap();
        let opt_big = solve_brute(&inst, &bigger, None).unwrap();
        assert!(opt_big.size() <= opt_small.size(), "seed {seed}");
    }
}

#[test]
fn variable_lambda_covers_are_valid() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let (inst, lambda) = medium_instance(&mut rng);
        let var = VariableLambda::compute(&inst, lambda.max(1));
        for sol in [
            solve_scan(&inst, &var),
            solve_scan_plus(&inst, &var, LabelOrder::Input),
            solve_greedy_sc(&inst, &var),
        ] {
            assert!(
                coverage::is_cover(&inst, &var, &sol.selected),
                "{} non-cover under Eq. 2 lambda (seed {seed})",
                sol.algorithm
            );
        }
    }
}

#[test]
fn whole_instance_is_always_a_cover() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let (inst, lambda) = medium_instance(&mut rng);
        let f = FixedLambda(lambda);
        let all: Vec<u32> = (0..inst.len() as u32).collect();
        assert!(coverage::is_cover(&inst, &f, &all), "seed {seed}");
    }
}

#[test]
fn solution_is_minimal_under_brute() {
    // Removing any post from the brute-force optimum breaks coverage
    // (the optimum is inclusion-minimal).
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let (inst, lambda) = tiny_instance(&mut rng);
        let f = FixedLambda(lambda);
        let opt = solve_brute(&inst, &f, None).unwrap();
        for skip in 0..opt.selected.len() {
            let reduced: Vec<u32> = opt
                .selected
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, &p)| p)
                .collect();
            assert!(
                !coverage::is_cover(&inst, &f, &reduced),
                "optimum is not minimal (seed {seed})"
            );
        }
    }
}
