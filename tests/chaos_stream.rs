//! Chaos acceptance suite for the supervised streaming layer: over a fixed
//! seed matrix (extendable via `MQD_CHAOS_SEED` for the CI matrix), every
//! run must inject at least one shard panic and one channel stall, finish
//! with zero delay-budget violations among non-degraded emissions, emit a
//! valid lambda-cover, and produce a byte-for-byte reproducible fault
//! report. A kill/restore pass proves checkpoint recovery end to end.

use mqd_datagen::{generate_labeled_posts, LabeledStreamConfig, MINUTE_MS};
use mqd_stream::{
    encode_checkpoint, resume_supervised, run_supervised_reference, run_supervised_stream,
    FaultKind, FaultPlan, ShardEngineKind, SupervisedRun, SupervisorConfig,
};
use mqdiv::core::{coverage, FixedLambda, Instance};

const LAMBDA: i64 = 30_000;
const TAU: i64 = 10_000;
const SHARDS: usize = 4;

/// Base restart budget plus an allowance for the plan's injected panics —
/// the budget exists to catch crash loops, not planned chaos.
fn config_for(plan: &FaultPlan) -> SupervisorConfig {
    let base = SupervisorConfig::default();
    SupervisorConfig {
        max_restarts: base.max_restarts + plan.max_panics_per_shard(),
        ..base
    }
}

fn chaos_seeds() -> Vec<u64> {
    let mut seeds = vec![1, 7, 42, 1234, 4242];
    if let Ok(s) = std::env::var("MQD_CHAOS_SEED") {
        if let Ok(extra) = s.parse() {
            if !seeds.contains(&extra) {
                seeds.push(extra);
            }
        }
    }
    seeds
}

fn day_scale_instance() -> Instance {
    let posts = generate_labeled_posts(&LabeledStreamConfig {
        num_labels: 6,
        per_label_per_minute: 8.0,
        overlap: 1.3,
        duration_ms: 10 * MINUTE_MS,
        seed: 99,
        ..Default::default()
    });
    Instance::from_posts(posts, 6).expect("datagen produces valid posts")
}

#[test]
fn chaos_matrix_holds_the_delay_budget() {
    let inst = day_scale_instance();
    for seed in chaos_seeds() {
        for kind in [ShardEngineKind::ScanPlus, ShardEngineKind::GreedyPlus] {
            let plan = FaultPlan::for_instance(&inst, SHARDS, seed, TAU);
            let panics = plan
                .faults
                .iter()
                .filter(|f| matches!(f.kind, FaultKind::Panic))
                .count();
            let stalls = plan
                .faults
                .iter()
                .filter(|f| matches!(f.kind, FaultKind::Stall { .. }))
                .count();
            assert!(panics >= 1, "seed {seed}: no panic injected");
            assert!(stalls >= 1, "seed {seed}: no stall injected");

            let res =
                run_supervised_stream(&inst, LAMBDA, TAU, SHARDS, kind, &plan, config_for(&plan))
                    .expect("supervised run failed");

            assert!(
                !res.report.restarts.is_empty(),
                "seed {seed} {kind:?}: injected panic did not trigger a restart"
            );
            assert_eq!(
                res.report.tau_violations_unflagged, 0,
                "seed {seed} {kind:?}: non-degraded emission over budget"
            );
            assert!(
                res.report.max_unflagged_delay <= TAU,
                "seed {seed} {kind:?}: max unflagged delay {} > tau",
                res.report.max_unflagged_delay
            );
            assert!(
                res.result.is_cover(&inst, &FixedLambda(LAMBDA)),
                "seed {seed} {kind:?}: emitted sub-stream is not a cover"
            );
        }
    }
}

#[test]
fn fault_reports_are_byte_reproducible() {
    let inst = day_scale_instance();
    for seed in chaos_seeds() {
        let plan = FaultPlan::for_instance(&inst, SHARDS, seed, TAU);
        let cfg = config_for(&plan);
        let kind = ShardEngineKind::ScanPlus;
        let threaded = run_supervised_stream(&inst, LAMBDA, TAU, SHARDS, kind, &plan, cfg)
            .expect("threaded run failed");
        let reference = run_supervised_reference(&inst, LAMBDA, TAU, SHARDS, kind, &plan, cfg)
            .expect("reference run failed");
        let again = run_supervised_stream(&inst, LAMBDA, TAU, SHARDS, kind, &plan, cfg)
            .expect("repeat run failed");
        assert_eq!(
            threaded.report.to_json(),
            reference.report.to_json(),
            "seed {seed}: threaded report differs from sequential"
        );
        assert_eq!(
            threaded.report.to_json(),
            again.report.to_json(),
            "seed {seed}: report not reproducible across runs"
        );
        assert_eq!(threaded.emissions, reference.emissions, "seed {seed}");
    }
}

#[test]
fn kill_restore_passes_coverage_verification() {
    let inst = day_scale_instance();
    let kind = ShardEngineKind::GreedyPlus;
    let plan = FaultPlan::for_instance(&inst, SHARDS, 4242, TAU);
    let cfg = config_for(&plan);
    let full = run_supervised_reference(&inst, LAMBDA, TAU, SHARDS, kind, &plan, cfg)
        .expect("uninterrupted run failed");

    let kill_at = (inst.len() / 3) as u32;
    let mut run = SupervisedRun::new(&inst, LAMBDA, TAU, SHARDS, kind, &plan, cfg);
    while run.position() < kill_at && run.step().expect("pre-kill step failed") {}
    let bytes = encode_checkpoint(&mut run);
    drop(run); // the process dies here

    let mut resumed = resume_supervised(&inst, LAMBDA, TAU, SHARDS, kind, &plan, cfg, &bytes)
        .expect("resume failed");
    resumed.run_all().expect("post-resume run failed");
    let res = resumed.finish().expect("post-resume finish failed");

    assert_eq!(
        res.emissions, full.emissions,
        "restored run's output differs from the uninterrupted run"
    );
    let mut selected: Vec<u32> = res.emissions.iter().map(|e| e.post).collect();
    selected.sort_unstable();
    selected.dedup();
    assert!(
        coverage::is_cover(&inst, &FixedLambda(LAMBDA), &selected),
        "restored run's output is not a lambda-cover"
    );
    // Delay bound: tau + checkpoint interval covers in-flight posts; here
    // the checkpoint sits at a delivery boundary, so tau itself holds for
    // every unflagged emission.
    assert_eq!(res.report.tau_violations_unflagged, 0);
}
