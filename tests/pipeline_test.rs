//! End-to-end pipeline integration test (Figure 1 of the paper):
//! news corpus → LDA topics → profile → tweet stream → SimHash dedup →
//! keyword matching → instance → diversification → verified cover.

use mqdiv::core::algorithms::{solve_greedy_sc, solve_scan};
use mqdiv::core::{coverage, FixedLambda, Instance, LabelId, Post, PostId};
use mqdiv::datagen::{
    generate_news, generate_tweets, NewsConfig, ProfileGenerator, TweetStreamConfig, MINUTE_MS,
};
use mqdiv::stream::{run_stream, StreamScan};
use mqdiv::text::{KeywordMatcher, NearDuplicateFilter};
use mqdiv::topics::{extract_topics, LdaConfig, LdaModel, Vocabulary};

#[test]
fn full_pipeline_produces_verified_covers() {
    // 1. Corpus + LDA topics.
    let corpus = generate_news(&NewsConfig {
        articles: 120,
        seed: 1,
        ..NewsConfig::default()
    });
    let mut vocab = Vocabulary::new();
    let docs: Vec<Vec<u32>> = corpus.iter().map(|a| vocab.intern_text(&a.text)).collect();
    let model = LdaModel::train(
        &docs,
        vocab.len(),
        LdaConfig {
            num_topics: 16,
            iterations: 20,
            seed: 2,
            ..LdaConfig::default()
        },
    );
    let topics = extract_topics(&model, &vocab, 6);
    assert_eq!(topics.len(), 16);

    // 2. Profile: 3 topics from one broad topic (via dominant-doc votes).
    let mut broad_of_topic = vec![0usize; topics.len()];
    for (k, b) in broad_of_topic.iter_mut().enumerate() {
        let mut votes = [0u32; 10];
        for (d, a) in corpus.iter().enumerate() {
            if model.dominant_topic(d) == k {
                votes[a.broad_topic] += 1;
            }
        }
        *b = (0..10).max_by_key(|&x| votes[x]).unwrap();
    }
    let profiles = ProfileGenerator::new(&broad_of_topic);
    // With 16 topics over 10 broads, some broad usually holds >= 2 topics;
    // fall back to the first two topics if the vote landed 1-per-broad.
    let profile = profiles
        .sample_many(2, 1, 3)
        .pop()
        .unwrap_or_else(|| vec![0, 1]);
    let queries: Vec<Vec<String>> = profile
        .iter()
        .map(|&t| topics[t].keyword_strings())
        .collect();

    // 3. Stream, dedup, match.
    let tweets = generate_tweets(&TweetStreamConfig {
        tweets_per_minute: 200.0,
        duration_ms: 10 * MINUTE_MS,
        seed: 4,
        ..TweetStreamConfig::default()
    });
    let mut dedup = NearDuplicateFilter::new(3);
    let matcher = KeywordMatcher::new(&queries);
    let mut posts = Vec::new();
    for (i, t) in tweets.iter().enumerate() {
        if !dedup.insert_text(&t.text) {
            continue;
        }
        let labels = matcher.match_labels(&t.text);
        if !labels.is_empty() {
            posts.push(Post::new(
                PostId(i as u64),
                t.timestamp_ms,
                labels.into_iter().map(LabelId).collect(),
            ));
        }
    }
    assert!(
        posts.len() > 20,
        "pipeline matched too few posts ({}) — generator or matcher drifted",
        posts.len()
    );
    let inst = Instance::from_posts(posts, 2).unwrap();

    // 4. Offline + streaming diversification, both verified.
    let lambda = FixedLambda(MINUTE_MS);
    let offline = solve_greedy_sc(&inst, &lambda);
    assert!(coverage::is_cover(&inst, &lambda, &offline.selected));
    assert!(offline.size() < inst.len());

    let scan = solve_scan(&inst, &lambda);
    assert!(coverage::is_cover(&inst, &lambda, &scan.selected));

    let mut engine = StreamScan::new_plus(2, inst.len());
    let res = run_stream(&inst, &lambda, 15_000, &mut engine);
    assert!(res.is_cover(&inst, &lambda));
    assert!(res.max_delay <= 15_000);
}

#[test]
fn dedup_removes_retweet_mass() {
    let tweets = generate_tweets(&TweetStreamConfig {
        tweets_per_minute: 200.0,
        retweet_fraction: 0.4,
        duration_ms: 5 * MINUTE_MS,
        seed: 9,
        ..TweetStreamConfig::default()
    });
    let mut dedup = NearDuplicateFilter::new(3);
    let kept = tweets.iter().filter(|t| dedup.insert_text(&t.text)).count();
    assert!(
        (kept as f64) < tweets.len() as f64 * 0.75,
        "dedup kept {kept} of {}",
        tweets.len()
    );
}
