//! Property-based tests for the text substrates: the tokenizer never
//! panics and normalizes correctly on arbitrary input, SimHash is
//! deterministic, the real-time index agrees with a naive scan, and the
//! sentiment score stays bounded.

use proptest::prelude::*;

use mqdiv::text::{hamming, simhash, tokenize, KeywordMatcher, RtIndex, SentimentScorer};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tokenizer_total_and_normalized(text in ".{0,200}") {
        let tokens = tokenize(&text);
        for t in &tokens {
            prop_assert!(t.chars().count() >= 2, "short token {t:?}");
            prop_assert!(t.chars().all(|c| c.is_alphanumeric()), "bad chars in {t:?}");
            prop_assert!(
                t.chars().all(|c| !c.is_uppercase()),
                "uppercase survived in {t:?}"
            );
        }
        // Idempotence: retokenizing the joined tokens yields the same list.
        let rejoined = tokens.join(" ");
        prop_assert_eq!(tokenize(&rejoined), tokens);
    }

    #[test]
    fn simhash_deterministic_and_hamming_sane(a in ".{0,100}", b in ".{0,100}") {
        let ha = simhash(&a);
        prop_assert_eq!(ha, simhash(&a));
        let hb = simhash(&b);
        prop_assert_eq!(hamming(ha, hb), hamming(hb, ha));
        prop_assert!(hamming(ha, hb) <= 64);
        prop_assert_eq!(hamming(ha, ha), 0);
    }

    #[test]
    fn sentiment_always_bounded(text in ".{0,300}") {
        let s = SentimentScorer::new().score(&text);
        prop_assert!((-1.0..=1.0).contains(&s), "score {s} out of range");
    }

    #[test]
    fn rt_index_agrees_with_naive_scan(
        docs in proptest::collection::vec(
            ("[a-f]{2,4}( [a-f]{2,4}){0,5}", -1_000i64..1_000),
            1..30,
        ),
        from in -1_200i64..1_200,
        span in 0i64..2_000,
        keyword in "[a-f]{2,4}",
    ) {
        let mut idx = RtIndex::new(100);
        for (text, t) in &docs {
            idx.add_document(text, *t);
        }
        let to = from + span;
        let got = idx.search(&[keyword.clone()], from, to);
        let expect: Vec<u32> = docs
            .iter()
            .enumerate()
            .filter(|(_, (text, t))| {
                (from..=to).contains(t) && tokenize(text).contains(&keyword)
            })
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn matcher_labels_sorted_and_in_range(
        text in ".{0,120}",
        queries in proptest::collection::vec(
            proptest::collection::vec("[a-e]{2,3}", 1..4),
            1..6,
        ),
    ) {
        let m = KeywordMatcher::new(&queries);
        let labels = m.match_labels(&text);
        prop_assert!(labels.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(labels.iter().all(|&l| (l as usize) < queries.len()));
    }
}
