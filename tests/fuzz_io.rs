//! Seeded fuzz tests for the I/O substrates: TSV and binary-log round
//! trips over randomized rows, and the windowed timeline invariants
//! (ported from the former proptest suite to plain loops over `mqd_rng`
//! seeds).

use mqd_cli::binlog;
use mqd_cli::tsv::{self, LabeledRow};
use mqd_rng::{RngExt, SeedableRng, StdRng};
use mqdiv::stream::WindowedTimeline;

fn random_rows(rng: &mut StdRng) -> Vec<LabeledRow> {
    let n = rng.random_range(0..50usize);
    (0..n)
        .map(|_| {
            let id: u64 = rng.random();
            let value = rng.random::<u64>() as i64;
            let k = rng.random_range(0..4usize);
            let labels: Vec<u16> = (0..k).map(|_| rng.random::<u32>() as u16).collect();
            LabeledRow { id, value, labels }
        })
        .collect()
}

const CASES: u64 = 64;

#[test]
fn binlog_round_trips_arbitrary_rows() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = random_rows(&mut rng);
        let data = binlog::encode(&rows);
        assert_eq!(binlog::decode(&data).unwrap(), rows, "seed {seed}");
    }
}

#[test]
fn binlog_rejects_any_single_byte_flip() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = random_rows(&mut rng);
        let mut data = binlog::encode(&rows);
        let pos = rng.random_range(0..data.len());
        data[pos] ^= 0x5a;
        // Either an error, or (vanishingly unlikely with a 64-bit FNV
        // checksum) a detected-equal decode; never a silent wrong answer.
        if let Ok(decoded) = binlog::decode(&data) {
            assert_eq!(decoded, rows, "seed {seed}");
        }
    }
}

#[test]
fn tsv_round_trips() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = random_rows(&mut rng);
        let mut buf = Vec::new();
        tsv::write_labeled(&mut buf, &rows).unwrap();
        assert_eq!(
            tsv::read_labeled(buf.as_slice()).unwrap(),
            rows,
            "seed {seed}"
        );
    }
}

#[test]
fn timeline_digest_always_covers_window() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.random_range(1..60usize);
        let mut sorted: Vec<i64> = (0..n).map(|_| rng.random_range(0..10_000i64)).collect();
        sorted.sort_unstable();
        let window = rng.random_range(100..5_000i64);
        let lambda = rng.random_range(1..500i64);
        let mut tl = WindowedTimeline::new(2, window, lambda);
        for (i, &t) in sorted.iter().enumerate() {
            tl.on_post(i as u64, t, vec![(i % 2) as u16]);
        }
        let digest = tl.digest();
        // Every live post must have a same-label digest member within lambda.
        let now = *sorted.last().unwrap();
        for (i, &t) in sorted.iter().enumerate() {
            if t < now - window {
                continue; // expired
            }
            let label = (i % 2) as u16;
            let covered = digest
                .iter()
                .any(|p| p.labels.contains(&label) && (p.time - t).abs() <= lambda);
            assert!(
                covered,
                "post at t={t} label {label} unrepresented (seed {seed})"
            );
        }
        // Digest members are live posts.
        for p in &digest {
            assert!(p.time >= now - window, "seed {seed}");
        }
    }
}
