//! Seeded fuzz tests for the text substrates: the tokenizer never panics
//! and normalizes correctly on randomized input, SimHash is deterministic,
//! the real-time index agrees with a naive scan, and the sentiment score
//! stays bounded (ported from the former proptest suite to plain loops
//! over `mqd_rng` seeds).

use mqd_rng::{RngExt, SeedableRng, StdRng};

use mqdiv::text::{hamming, simhash, tokenize, KeywordMatcher, RtIndex, SentimentScorer};

/// A deliberately messy character pool: case, digits, punctuation,
/// whitespace, combining/multi-byte unicode, emoji.
const POOL: &[char] = &[
    'a', 'b', 'c', 'd', 'e', 'f', 'g', 'x', 'y', 'z', 'A', 'B', 'Q', 'Z', '0', '1', '9', ' ', ' ',
    ' ', '\t', '\n', '.', ',', '!', '?', '#', '@', '-', '_', '(', ')', '/', '\'', '"', 'é', 'ß',
    'λ', 'П', '中', '界', '🙂', '🚀', '\u{0301}', '\u{200d}',
];

fn random_text(rng: &mut StdRng, max_len: usize) -> String {
    let n = rng.random_range(0..=max_len);
    (0..n)
        .map(|_| POOL[rng.random_range(0..POOL.len())])
        .collect()
}

/// A lowercase word of 2–4 chars from a–f (tokenizer-stable).
fn word(rng: &mut StdRng) -> String {
    let n = rng.random_range(2..=4usize);
    (0..n)
        .map(|_| (b'a' + rng.random_range(0..6u8)) as char)
        .collect()
}

const CASES: u64 = 128;

#[test]
fn tokenizer_total_and_normalized() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let text = random_text(&mut rng, 200);
        let tokens = tokenize(&text);
        for t in &tokens {
            assert!(t.chars().count() >= 2, "short token {t:?} (seed {seed})");
            assert!(
                t.chars().all(|c| c.is_alphanumeric()),
                "bad chars in {t:?} (seed {seed})"
            );
            assert!(
                t.chars().all(|c| !c.is_uppercase()),
                "uppercase survived in {t:?} (seed {seed})"
            );
        }
        // Idempotence: retokenizing the joined tokens yields the same list.
        let rejoined = tokens.join(" ");
        assert_eq!(tokenize(&rejoined), tokens, "seed {seed}");
    }
}

#[test]
fn simhash_deterministic_and_hamming_sane() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_text(&mut rng, 100);
        let b = random_text(&mut rng, 100);
        let ha = simhash(&a);
        assert_eq!(ha, simhash(&a), "seed {seed}");
        let hb = simhash(&b);
        assert_eq!(hamming(ha, hb), hamming(hb, ha), "seed {seed}");
        assert!(hamming(ha, hb) <= 64, "seed {seed}");
        assert_eq!(hamming(ha, ha), 0, "seed {seed}");
    }
}

#[test]
fn sentiment_always_bounded() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let text = random_text(&mut rng, 300);
        let s = SentimentScorer::new().score(&text);
        assert!(
            (-1.0..=1.0).contains(&s),
            "score {s} out of range (seed {seed})"
        );
    }
}

#[test]
fn rt_index_agrees_with_naive_scan() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.random_range(1..30usize);
        let docs: Vec<(String, i64)> = (0..n)
            .map(|_| {
                let words = rng.random_range(1..=6usize);
                let text = (0..words)
                    .map(|_| word(&mut rng))
                    .collect::<Vec<_>>()
                    .join(" ");
                (text, rng.random_range(-1_000..1_000i64))
            })
            .collect();
        let from = rng.random_range(-1_200..1_200i64);
        let span = rng.random_range(0..2_000i64);
        let keyword = word(&mut rng);

        let mut idx = RtIndex::new(100);
        for (text, t) in &docs {
            idx.add_document(text, *t);
        }
        let to = from + span;
        let got = idx.search(std::slice::from_ref(&keyword), from, to);
        let expect: Vec<u32> = docs
            .iter()
            .enumerate()
            .filter(|(_, (text, t))| (from..=to).contains(t) && tokenize(text).contains(&keyword))
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(got, expect, "seed {seed}");
    }
}

#[test]
fn matcher_labels_sorted_and_in_range() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let text = random_text(&mut rng, 120);
        let nq = rng.random_range(1..6usize);
        let queries: Vec<Vec<String>> = (0..nq)
            .map(|_| {
                let k = rng.random_range(1..4usize);
                (0..k)
                    .map(|_| {
                        let len = rng.random_range(2..=3usize);
                        (0..len)
                            .map(|_| (b'a' + rng.random_range(0..5u8)) as char)
                            .collect::<String>()
                    })
                    .collect()
            })
            .collect();
        let m = KeywordMatcher::new(&queries);
        let labels = m.match_labels(&text);
        assert!(labels.windows(2).all(|w| w[0] < w[1]), "seed {seed}");
        assert!(
            labels.iter().all(|&l| (l as usize) < queries.len()),
            "seed {seed}"
        );
    }
}
