//! Property-based tests for the streaming engines: covers, delay budgets,
//! and the structural invariants of Section 5 on arbitrary streams.

use proptest::prelude::*;

use mqdiv::core::algorithms::solve_scan;
use mqdiv::core::{FixedLambda, Instance};
use mqdiv::stream::{run_stream, InstantScan, StreamGreedy, StreamScan, StreamRunResult};

fn stream_instance() -> impl Strategy<Value = (Instance, i64, i64)> {
    let post = (0i64..3_000, proptest::collection::vec(0u16..4, 1..3));
    (
        proptest::collection::vec(post, 1..80),
        1i64..300,
        0i64..400,
    )
        .prop_map(|(items, lambda, tau)| {
            (
                Instance::from_values(items, 4).expect("labels < 4"),
                lambda,
                tau,
            )
        })
}

fn run_all(inst: &Instance, lambda: &FixedLambda, tau: i64) -> Vec<StreamRunResult> {
    let l = inst.num_labels();
    let n = inst.len();
    vec![
        run_stream(inst, lambda, tau, &mut StreamScan::new(l, n)),
        run_stream(inst, lambda, tau, &mut StreamScan::new_plus(l, n)),
        run_stream(inst, lambda, tau, &mut StreamGreedy::new(l, n)),
        run_stream(inst, lambda, tau, &mut StreamGreedy::new_plus(l, n)),
        run_stream(inst, lambda, 0, &mut InstantScan::new(l)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engines_always_cover_and_respect_tau((inst, lambda, tau) in stream_instance()) {
        let f = FixedLambda(lambda);
        for res in run_all(&inst, &f, tau) {
            prop_assert!(res.is_cover(&inst, &f), "{} non-cover", res.algorithm);
            let budget = if res.algorithm == "Instant" { 0 } else { tau };
            prop_assert!(
                res.max_delay <= budget,
                "{}: delay {} > budget {budget}", res.algorithm, res.max_delay
            );
        }
    }

    #[test]
    fn emissions_reference_real_posts_once((inst, lambda, tau) in stream_instance()) {
        let f = FixedLambda(lambda);
        for res in run_all(&inst, &f, tau) {
            let mut seen = std::collections::HashSet::new();
            for e in &res.emissions {
                prop_assert!((e.post as usize) < inst.len());
                prop_assert!(seen.insert(e.post), "{} re-emitted a post", res.algorithm);
                prop_assert!(e.emit_time >= inst.value(e.post));
            }
            prop_assert_eq!(seen.len(), res.selected.len());
        }
    }

    #[test]
    fn stream_scan_with_huge_tau_equals_offline((inst, lambda, _tau) in stream_instance()) {
        let f = FixedLambda(lambda);
        let offline = solve_scan(&inst, &f);
        let mut eng = StreamScan::new(inst.num_labels(), inst.len());
        let res = run_stream(&inst, &f, lambda * 4 + 1, &mut eng);
        prop_assert_eq!(res.selected, offline.selected);
    }

    #[test]
    fn instant_outputs_are_pairwise_uncovered_single_label(
        (times, lambda) in (proptest::collection::vec(0i64..3_000, 1..80), 1i64..300)
    ) {
        // The paper's 2s argument (Section 5.1) shows consecutive emissions
        // are > lambda apart; with multiple labels a post emitted for a
        // *different* uncovered label may land inside lambda on a shared
        // label, so the pairwise property is a theorem only per single-label
        // stream — which is exactly the setting of the paper's proof.
        let inst = Instance::from_values(
            times.into_iter().map(|t| (t, vec![0u16])),
            1,
        ).unwrap();
        let f = FixedLambda(lambda);
        let mut eng = InstantScan::new(1);
        let res = run_stream(&inst, &f, 0, &mut eng);
        let ts: Vec<i64> = res.selected.iter().map(|&i| inst.value(i)).collect();
        for w in ts.windows(2) {
            prop_assert!(w[1] - w[0] > lambda,
                "instant cache admitted a covered emission");
        }
        // And the 2s bound itself (s = 1): |output| <= 2 * |opt|.
        let opt = solve_scan(&inst, &f); // optimal for a single label
        prop_assert!(res.size() <= 2 * opt.size());
    }

    #[test]
    fn greedy_windows_never_exceed_offline_input((inst, lambda, tau) in stream_instance()) {
        // Sanity: the emitted sub-stream is a subset of the input and not
        // larger than the trivial cover.
        let f = FixedLambda(lambda);
        let mut eng = StreamGreedy::new(inst.num_labels(), inst.len());
        let res = run_stream(&inst, &f, tau, &mut eng);
        prop_assert!(res.size() <= inst.len());
    }
}
