//! Property-based tests for the spatiotemporal extension.

use proptest::prelude::*;

use mqdiv::core::{LabelId, PostId};
use mqdiv::geo::{
    solve_geo_brute, solve_geo_greedy, solve_geo_sweep, GeoInstance, GeoLambda, GeoPost,
};

fn geo_instance() -> impl Strategy<Value = GeoInstance> {
    let post = (
        0i64..500,   // time
        0i64..1_000, // x
        0i64..1_000, // y
        0u16..3,     // label
    );
    (
        proptest::collection::vec(post, 1..40),
        1i64..200,
        1i64..500,
    )
        .prop_map(|(items, lt, ld)| {
            let posts: Vec<GeoPost> = items
                .into_iter()
                .enumerate()
                .map(|(i, (t, x, y, l))| {
                    GeoPost::new(PostId(i as u64), t, x, y, vec![LabelId(l)])
                })
                .collect();
            GeoInstance::new(posts, 3, GeoLambda::new(lt, ld))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn greedy_and_sweep_always_cover(inst in geo_instance()) {
        let g = solve_geo_greedy(&inst);
        let s = solve_geo_sweep(&inst);
        prop_assert!(inst.is_cover(&g.selected), "greedy non-cover");
        prop_assert!(inst.is_cover(&s.selected), "sweep non-cover");
        prop_assert!(g.selected.iter().all(|&i| (i as usize) < inst.len()));
    }

    #[test]
    fn brute_is_a_lower_bound_on_small(inst in geo_instance()) {
        if inst.len() <= 14 {
            let b = solve_geo_brute(&inst, Some(14)).expect("within cap");
            prop_assert!(inst.is_cover(&b.selected));
            let g = solve_geo_greedy(&inst);
            let s = solve_geo_sweep(&inst);
            prop_assert!(b.size() <= g.size());
            prop_assert!(b.size() <= s.size());
            // Minimality: dropping any brute pick breaks the cover.
            for skip in 0..b.selected.len() {
                let reduced: Vec<u32> = b
                    .selected
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != skip)
                    .map(|(_, &p)| p)
                    .collect();
                prop_assert!(!inst.is_cover(&reduced));
            }
        }
    }

    #[test]
    fn coverage_is_symmetric_for_uniform_thresholds(inst in geo_instance()) {
        for i in 0..inst.len().min(10) as u32 {
            for j in 0..inst.len().min(10) as u32 {
                for &a in inst.post(i).labels().to_vec().iter() {
                    prop_assert_eq!(
                        inst.covers(i, j, a),
                        inst.covers(j, i, a),
                        "geo coverage must be symmetric"
                    );
                }
            }
        }
    }

    #[test]
    fn widening_thresholds_keeps_covers_valid(inst in geo_instance()) {
        // A cover under (lt, ld) stays one under (2lt, 2ld).
        let g = solve_geo_greedy(&inst);
        let wider = GeoInstance::new(
            inst.posts().to_vec(),
            inst.num_labels(),
            GeoLambda::new(inst.lambda().time * 2, inst.lambda().dist * 2),
        );
        prop_assert!(wider.is_cover(&g.selected));
    }
}
