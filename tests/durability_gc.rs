//! Retention-GC oracle: on seeded ingest profiles with sliding live
//! queries, the durable store after any number of `run_gc` calls must
//! answer every live slice identically to an un-GC'd reference store.
//! That is the safety contract from DESIGN.md §15 — GC may only drop
//! windows no live λ-widened query can reach — checked here by direct
//! comparison rather than by trusting the horizon arithmetic.

use std::fs;
use std::path::PathBuf;

use mqd_core::record::Record;
use mqd_rng::{RngExt, SeedableRng, StdRng};
use mqd_store::Store;
use mqd_wal::{DurableOptions, DurableStore};

const WINDOW: usize = 32;
const NUM_LABELS: u16 = 6;
const ROWS: usize = 600;
const RETAIN: i64 = 5_000;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mqd-gc-oracle-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A live subscription/query profile: `labels` over the sliding span
/// `[tip - span, tip]`, with λ lookback `lambda`.
struct LiveSpec {
    labels: Vec<u16>,
    lambda: i64,
    span: i64,
}

impl LiveSpec {
    fn random(rng: &mut StdRng) -> LiveSpec {
        let k = rng.random_range(1..4usize);
        let mut labels: Vec<u16> = (0..k)
            .map(|_| rng.random_range(0..NUM_LABELS as u32) as u16)
            .collect();
        labels.sort_unstable();
        labels.dedup();
        LiveSpec {
            labels,
            lambda: rng.random_range(500..2_000i64),
            span: rng.random_range(1_000..4_000i64),
        }
    }

    /// Smallest value this spec may still read at `tip`: the slice start
    /// widened by λ.
    fn floor(&self, tip: i64) -> i64 {
        (tip - self.span).saturating_sub(self.lambda)
    }
}

/// The content a slice serves, in a comparable shape.
fn materialize(store: &Store, labels: &[u16], from: i64, to: i64) -> Vec<(u64, i64, Vec<u16>)> {
    let slice = store.slice(labels, from, to);
    (0..slice.instance.posts().len())
        .map(|i| {
            let r = slice.record_for(i as u32);
            (r.id, r.value, r.labels)
        })
        .collect()
}

#[test]
fn gc_never_drops_a_row_any_live_lambda_window_can_reach() {
    for seed in [3u64, 11, 77] {
        let dir = tmpdir(&format!("s{seed}"));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut durable = DurableStore::open(
            &dir,
            &DurableOptions {
                fsync: false,
                segment_rows: WINDOW,
                retain: Some(RETAIN),
            },
        )
        .expect("open fresh dir");
        let mut reference = Store::with_segment_target(WINDOW);
        let specs: Vec<LiveSpec> = (0..3).map(|_| LiveSpec::random(&mut rng)).collect();

        let mut value = 0i64;
        for i in 0..ROWS {
            value += rng.random_range(1..100i64);
            let k = rng.random_range(1..4usize);
            let row = Record {
                id: i as u64 + 1,
                value,
                labels: (0..k)
                    .map(|_| rng.random_range(0..NUM_LABELS as u32) as u16)
                    .collect(),
            };
            durable.append(&row).expect("append durable");
            reference.append(row).expect("append reference");

            if (i + 1) % 100 == 0 {
                let tip = value;
                let live_floor = specs
                    .iter()
                    .map(|s| s.floor(tip))
                    .min()
                    .expect("specs nonempty");
                durable.run_gc(live_floor).expect("gc");
                for (si, spec) in specs.iter().enumerate() {
                    let from = spec.floor(tip);
                    let got = materialize(durable.store(), &spec.labels, from, tip);
                    let want = materialize(&reference, &spec.labels, from, tip);
                    assert_eq!(
                        got,
                        want,
                        "seed {seed} @ row {}: live spec {si} lost rows to GC",
                        i + 1
                    );
                }
            }
        }

        // The oracle is vacuous if nothing was ever collected.
        assert!(
            durable.durable_stats().gc_segments > 0,
            "seed {seed}: profile never triggered GC — tighten RETAIN/spans"
        );

        // And what survives GC must also survive a restart: reopen and
        // re-check every live slice at the final tip.
        let tip = value;
        drop(durable);
        let reopened = DurableStore::open(
            &dir,
            &DurableOptions {
                fsync: false,
                segment_rows: WINDOW,
                retain: Some(RETAIN),
            },
        )
        .expect("reopen after gc");
        for (si, spec) in specs.iter().enumerate() {
            let from = spec.floor(tip);
            let got = materialize(reopened.store(), &spec.labels, from, tip);
            let want = materialize(&reference, &spec.labels, from, tip);
            assert_eq!(got, want, "seed {seed}: spec {si} differs after restart");
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
