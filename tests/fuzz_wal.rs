//! Seeded corruption fuzzing over the durable store's on-disk state: bit
//! flips and truncations of the WAL and the sealed segment blocks. The
//! contract under fire is the recovery acceptance rule — every corrupted
//! data dir either reopens cleanly with a *prefix* of the appended rows
//! (a torn WAL tail, truncated and survived) or fails with a typed
//! [`MqdError`]. Never a panic, and never a row the reference run did not
//! append (recovery must not invent or reorder acked data).
//!
//! Every assertion carries its (seed, position) so a failure reproduces
//! with a one-line filter.

use std::fs;
use std::path::{Path, PathBuf};

use mqd_core::record::Record;
use mqd_core::MqdError;
use mqd_rng::{RngExt, SeedableRng, StdRng};
use mqd_wal::{DurableOptions, DurableStore};

/// Small window so a modest row count spans several sealed blocks plus a
/// live WAL tail.
const WINDOW: usize = 32;
const NUM_LABELS: u16 = 6;

fn opts() -> DurableOptions {
    DurableOptions {
        fsync: false, // the fuzz corrupts files itself; skip the fsync tax
        segment_rows: WINDOW,
        retain: None,
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mqd-fuzz-wal-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn random_rows(rng: &mut StdRng, n: usize) -> Vec<Record> {
    let mut value = 0i64;
    (0..n)
        .map(|i| {
            // Strictly increasing values keep the value-sorted slice in
            // append order, so prefix checks compare like for like.
            value += rng.random_range(1..1_000i64);
            let k = rng.random_range(1..4usize);
            Record {
                id: i as u64 + 1,
                value,
                labels: (0..k)
                    .map(|_| rng.random_range(0..NUM_LABELS as u32) as u16)
                    .collect(),
            }
        })
        .collect()
}

/// Builds a data dir holding `rows`: sealed blocks for every complete
/// window plus the live WAL tail for the remainder.
fn build(dir: &Path, rows: &[Record]) {
    let mut store = DurableStore::open(dir, &opts()).expect("open fresh dir");
    for row in rows {
        store.append(row).expect("valid row");
    }
    store.sync().expect("sync");
}

/// Snapshot of every file in the dir, so each corruption case starts from
/// the same bytes (recovery itself rewrites the WAL).
fn snapshot(dir: &Path) -> Vec<(PathBuf, Vec<u8>)> {
    let mut files: Vec<(PathBuf, Vec<u8>)> = fs::read_dir(dir)
        .expect("read dir")
        .map(|e| {
            let p = e.expect("dir entry").path();
            let bytes = fs::read(&p).expect("read file");
            (p, bytes)
        })
        .collect();
    files.sort();
    files
}

fn restore(dir: &Path, files: &[(PathBuf, Vec<u8>)]) {
    for entry in fs::read_dir(dir).expect("read dir") {
        fs::remove_file(entry.expect("dir entry").path()).expect("clear scratch");
    }
    for (p, bytes) in files {
        fs::write(p, bytes).expect("restore file");
    }
}

/// The recovered rows, in store order, via a full-range slice over every
/// label (each row carries at least one label, so the union is total).
fn recovered_ids(store: &DurableStore) -> Vec<u64> {
    let labels: Vec<u16> = (0..NUM_LABELS).collect();
    let slice = store.store().slice(&labels, i64::MIN, i64::MAX);
    (0..slice.instance.posts().len())
        .map(|i| slice.record_for(i as u32).id)
        .collect()
}

/// The acceptance rule, applied to one reopen attempt.
fn assert_prefix_or_typed(
    outcome: Result<DurableStore, MqdError>,
    reference: &[Record],
    ctx: &str,
) {
    match outcome {
        Ok(store) => {
            let got = recovered_ids(&store);
            let want: Vec<u64> = reference.iter().take(got.len()).map(|r| r.id).collect();
            assert_eq!(
                got, want,
                "{ctx}: recovery must yield a strict prefix of the appended rows"
            );
        }
        // Any typed error is acceptable: corruption normally surfaces as
        // Corrupt/Io, and a checksum-colliding frame that decodes into an
        // invalid row surfaces as the row-contract error it fakes. The
        // panic path is what this fuzz exists to rule out.
        Err(_typed) => {}
    }
}

/// The acceptance rule for *resealed* frames grafted onto the log: the
/// checksum is valid by construction, so a mutation that leaves the body
/// decodable is a legitimate appended row — recovery may yield the whole
/// original log plus at most one grafted row, never more.
fn assert_prefix_plus_graft(
    outcome: Result<DurableStore, MqdError>,
    reference: &[Record],
    ctx: &str,
) {
    match outcome {
        Ok(store) => {
            let got = recovered_ids(&store);
            let upto = got.len().min(reference.len());
            let want: Vec<u64> = reference.iter().take(upto).map(|r| r.id).collect();
            assert_eq!(
                &got[..upto],
                &want[..],
                "{ctx}: the original rows must survive unchanged"
            );
            assert!(
                got.len() <= reference.len() + 1,
                "{ctx}: at most one grafted row may decode ({} recovered, {} appended)",
                got.len(),
                reference.len()
            );
        }
        Err(_typed) => {}
    }
}

#[test]
fn wal_bit_flips_recover_a_prefix_or_fail_typed() {
    let dir = tmpdir("flip");
    for seed in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.random_range(40..90usize);
        let rows = random_rows(&mut rng, n);
        build(&dir, &rows);
        let baseline = snapshot(&dir);
        let wal_path = dir.join("wal");
        let wal = fs::read(&wal_path).expect("wal exists");
        assert!(wal.len() > 5, "builder must leave a live WAL tail");
        for case in 0..24 {
            let pos = rng.random_range(0..wal.len());
            let bit = rng.random_range(0..8u32);
            let mut bad = wal.clone();
            bad[pos] ^= 1 << bit;
            fs::write(&wal_path, &bad).expect("write corrupted wal");
            assert_prefix_or_typed(
                DurableStore::open(&dir, &opts()),
                &rows,
                &format!("seed {seed} case {case}: flip bit {bit} at wal[{pos}]"),
            );
            restore(&dir, &baseline);
        }
        // Reset the scratch dir for the next seed's build.
        fs::remove_dir_all(&dir).expect("clear");
        fs::create_dir_all(&dir).expect("recreate");
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn wal_truncation_recovers_the_longest_intact_prefix() {
    let dir = tmpdir("trunc");
    let mut rng = StdRng::seed_from_u64(4242);
    let rows = random_rows(&mut rng, 2 * WINDOW + 17);
    build(&dir, &rows);
    let baseline = snapshot(&dir);
    let wal_path = dir.join("wal");
    let wal = fs::read(&wal_path).expect("wal exists");

    // Untouched dir reopens with every appended row.
    let full = DurableStore::open(&dir, &opts()).expect("clean reopen");
    assert_eq!(recovered_ids(&full).len(), rows.len());
    drop(full);
    restore(&dir, &baseline);

    let mut recovered_counts: Vec<usize> = Vec::new();
    for keep in 0..wal.len() {
        fs::write(&wal_path, &wal[..keep]).expect("truncate wal");
        match DurableStore::open(&dir, &opts()) {
            Ok(store) => {
                let got = recovered_ids(&store);
                let want: Vec<u64> = rows.iter().take(got.len()).map(|r| r.id).collect();
                assert_eq!(got, want, "truncated to {keep} bytes");
                // The sealed blocks alone carry the complete windows.
                assert!(
                    got.len() >= 2 * WINDOW,
                    "truncated to {keep}: sealed blocks must survive WAL loss"
                );
                recovered_counts.push(got.len());
            }
            Err(MqdError::Corrupt { .. }) => {
                // A tail shorter than the header is not a torn frame —
                // the file stops being a WAL at all, which is typed.
                assert!(
                    keep < 5,
                    "truncated to {keep}: only a sub-header tail may refuse"
                );
            }
            Err(other) => panic!("truncated to {keep}: unexpected error {other:?}"),
        }
        restore(&dir, &baseline);
    }
    // Longer intact prefixes never recover fewer rows.
    assert!(
        recovered_counts.windows(2).all(|w| w[0] <= w[1]),
        "recovery must be monotone in the intact prefix: {recovered_counts:?}"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// One well-formed WAL frame: `len:varint body fnv1a(body):u64_be`. Used
/// to splice *resealed* hostile frames into a real log — the checksum is
/// valid, so the mutated fields reach the decoder instead of dying at the
/// integrity check.
fn seal_frame(body: &[u8]) -> Vec<u8> {
    use mqd_core::wire::{fnv1a, put_varint};
    let mut frame = Vec::with_capacity(body.len() + 12);
    put_varint(&mut frame, body.len() as u64);
    frame.extend_from_slice(body);
    frame.extend_from_slice(&fnv1a(body).to_be_bytes());
    frame
}

fn frame_body(seq: u64, id: u64, value: i64, labels: &[u64]) -> Vec<u8> {
    use mqd_core::wire::{put_varint, put_varint_i64};
    let mut body = Vec::new();
    put_varint(&mut body, seq);
    put_varint(&mut body, id);
    put_varint_i64(&mut body, value);
    put_varint(&mut body, labels.len() as u64);
    for &l in labels {
        put_varint(&mut body, l);
    }
    body
}

/// Length-field attacks through valid checksums: a frame may *announce*
/// absurd sizes (label counts in the exabytes, body lengths past the
/// file) while every integrity check passes. The decoder must bound its
/// preallocation by what the bytes can actually hold — before the
/// `plausible_len` clamp, the huge-label-count case below aborted the
/// process in `Vec::with_capacity` instead of truncating the tail.
#[test]
fn resealed_length_field_attacks_recover_a_prefix_not_oom() {
    use mqd_core::wire::put_varint;

    let dir = tmpdir("lenfield");
    let mut rng = StdRng::seed_from_u64(31337);
    let rows = random_rows(&mut rng, WINDOW + 9);
    build(&dir, &rows);
    let baseline = snapshot(&dir);
    let wal_path = dir.join("wal");
    let wal = fs::read(&wal_path).expect("wal exists");
    let next_seq = rows.len() as u64; // grafted frames continue the log

    // Hand-built hostile tails. Each body is checksum-sealed, so rejection
    // (or acceptance) is purely the decoder's judgment.
    let huge = u64::MAX / 2;
    let hostile: Vec<(&str, Vec<u8>)> = vec![
        ("label count in the exabytes, no label bytes", {
            let mut body = frame_body(next_seq, 9_000, i64::MAX / 2, &[]);
            body.pop(); // drop the zero label count...
            put_varint(&mut body, huge); // ...and claim 2^63 labels
            seal_frame(&body)
        }),
        ("label count huge with truncated label bytes", {
            let mut body = frame_body(next_seq, 9_001, 1, &[]);
            body.pop(); // drop the zero label count...
            put_varint(&mut body, huge); // ...announce 2^63 labels
            body.extend_from_slice(&[0x01, 0x02]); // two actual bytes
            seal_frame(&body)
        }),
        (
            "label value past u16::MAX",
            seal_frame(&frame_body(next_seq, 9_002, 2, &[1 << 20])),
        ),
        ("announced body length past the file end", {
            let mut frame = Vec::new();
            put_varint(&mut frame, huge); // body "length"
            frame.extend_from_slice(&[0xAA; 16]);
            frame
        }),
        ("trailing garbage after the labels", {
            let mut body = frame_body(next_seq, 9_003, 3, &[1]);
            body.extend_from_slice(&[0x55; 4]);
            seal_frame(&body)
        }),
    ];
    for (what, tail) in &hostile {
        let mut bad = wal.clone();
        bad.extend_from_slice(tail);
        fs::write(&wal_path, &bad).expect("write grafted wal");
        assert_prefix_or_typed(
            DurableStore::open(&dir, &opts()),
            &rows,
            &format!("grafted frame: {what}"),
        );
        restore(&dir, &baseline);
    }

    // The fixed first hostile frame above is the shape that used to OOM;
    // sweep the same idea randomly: flip whole bytes of the *body* of a
    // resealed frame to 0xFF (varint continuation bits — the way length
    // fields inflate), keeping the checksum valid.
    let body0 = frame_body(next_seq, 424_242, i64::MAX / 4, &[0, 3, 5]);
    for case in 0..64 {
        let mut body = body0.clone();
        let hits = rng.random_range(1..4usize);
        for _ in 0..hits {
            let pos = rng.random_range(0..body.len());
            body[pos] = 0xFF;
        }
        let mut bad = wal.clone();
        bad.extend_from_slice(&seal_frame(&body));
        fs::write(&wal_path, &bad).expect("write mutated wal");
        assert_prefix_plus_graft(
            DurableStore::open(&dir, &opts()),
            &rows,
            &format!("case {case}: resealed body with 0xFF at {hits} position(s)"),
        );
        restore(&dir, &baseline);
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn segment_bit_flips_are_typed_errors() {
    let dir = tmpdir("segflip");
    let mut rng = StdRng::seed_from_u64(7);
    let rows = random_rows(&mut rng, 3 * WINDOW);
    build(&dir, &rows);
    let baseline = snapshot(&dir);
    let segs: Vec<PathBuf> = baseline
        .iter()
        .filter(|(p, _)| p.extension().is_some_and(|e| e == "mqds"))
        .map(|(p, _)| p.clone())
        .collect();
    assert!(!segs.is_empty(), "builder must seal at least one block");
    for (si, seg_path) in segs.iter().enumerate() {
        let seg = fs::read(seg_path).expect("segment exists");
        for case in 0..48 {
            let pos = rng.random_range(0..seg.len());
            let bit = rng.random_range(0..8u32);
            let mut bad = seg.clone();
            bad[pos] ^= 1 << bit;
            fs::write(seg_path, &bad).expect("write corrupted segment");
            match DurableStore::open(&dir, &opts()) {
                Err(_) => {} // typed; the checksum spans every byte
                Ok(store) => {
                    // Only reachable through an FNV collision that decodes
                    // to the same content — then nothing may have changed.
                    let got = recovered_ids(&store);
                    let want: Vec<u64> = rows.iter().map(|r| r.id).collect();
                    assert_eq!(
                        got, want,
                        "seg {si} case {case}: flip bit {bit} at [{pos}] accepted with drift"
                    );
                }
            }
            restore(&dir, &baseline);
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn segment_truncation_and_loss_are_typed_errors() {
    let dir = tmpdir("segloss");
    let mut rng = StdRng::seed_from_u64(99);
    let rows = random_rows(&mut rng, 3 * WINDOW);
    build(&dir, &rows);
    let baseline = snapshot(&dir);
    let segs: Vec<PathBuf> = baseline
        .iter()
        .filter(|(p, _)| p.extension().is_some_and(|e| e == "mqds"))
        .map(|(p, _)| p.clone())
        .collect();
    assert!(segs.len() >= 2, "need multiple blocks to drop one");

    // Truncation at every sampled length: the framed footer is gone, so
    // the block must refuse.
    let seg = fs::read(&segs[0]).expect("segment exists");
    for keep in (0..seg.len()).step_by(7) {
        fs::write(&segs[0], &seg[..keep]).expect("truncate segment");
        assert!(
            DurableStore::open(&dir, &opts()).is_err(),
            "segment truncated to {keep} bytes must not open"
        );
        restore(&dir, &baseline);
    }

    // A missing middle block is a sequence gap, not a shorter store.
    fs::remove_file(&segs[1]).expect("drop middle block");
    match DurableStore::open(&dir, &opts()) {
        Err(MqdError::Corrupt { reason, .. }) => {
            assert!(
                reason.contains("expected"),
                "gap must name the bad seq: {reason}"
            )
        }
        other => panic!(
            "missing middle block must be Corrupt, got {other:?}",
            other = other.map(|_| "Ok")
        ),
    }
    restore(&dir, &baseline);

    // An unacked row is never served: a WAL holding rows the reference
    // never appended (simulated by grafting a foreign WAL tail) must not
    // leak them past the contiguity check.
    let foreign_dir = tmpdir("segloss-foreign");
    build(
        &foreign_dir,
        &random_rows(&mut StdRng::seed_from_u64(1234), WINDOW / 2),
    );
    let foreign_wal = fs::read(foreign_dir.join("wal")).expect("foreign wal");
    fs::write(dir.join("wal"), &foreign_wal).expect("graft foreign wal");
    match DurableStore::open(&dir, &opts()) {
        Err(_) => {}
        Ok(store) => {
            let got = recovered_ids(&store);
            let want: Vec<u64> = rows.iter().take(got.len()).map(|r| r.id).collect();
            assert_eq!(got, want, "grafted WAL must not leak foreign rows");
        }
    }
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&foreign_dir);
}
