//! Seeded fuzzing of the serving protocol: malformed frames, oversized
//! requests, corrupt and truncated `INGESTB` bodies, half-closed sockets,
//! and concurrent ingest+query traffic. The contract under test: every
//! bad input maps to a typed error response — the server never panics and
//! never silently drops a connection it could have answered.

use std::net::SocketAddr;

use mqd_core::record::{encode_records, Record};
use mqd_rng::{RngExt, SeedableRng, StdRng};
use mqd_server::{Client, Server, ServerConfig};

fn start(threads: usize) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads,
        max_queue: 64,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    (addr, std::thread::spawn(move || server.run().unwrap()))
}

fn drain(addr: SocketAddr) {
    let mut c = Client::connect(addr).unwrap();
    assert!(c.request("DRAIN").unwrap().is_ok());
}

/// The server is still healthy: a fresh connection round-trips a PING.
fn assert_alive(addr: SocketAddr) {
    let mut c = Client::connect(addr).unwrap();
    let resp = c.request("PING").unwrap();
    assert!(resp.is_ok(), "{}", resp.status);
    assert!(c.request("QUIT").unwrap().is_ok());
}

#[test]
fn garbage_lines_get_typed_errors_and_keep_the_connection() {
    let (addr, server) = start(2);
    let mut rng = StdRng::seed_from_u64(0xF0220);
    let mut client = Client::connect(addr).unwrap();
    for round in 0..200 {
        let len = rng.random_range(0..120usize);
        let mut line: String = (0..len)
            .map(|_| (rng.random_range(0x20..0x7fu8)) as char)
            .collect();
        // `INGESTB <n>` is the one prefix that legitimately consumes raw
        // bytes after the line; exclude it so the stream stays line-framed
        // (dedicated body tests below cover that path).
        if line.to_ascii_uppercase().starts_with("INGESTB") {
            line.insert(0, '#');
        }
        if line.trim().is_empty() {
            continue;
        }
        let resp = client
            .request(&line)
            .unwrap_or_else(|e| panic!("round {round}: no response to {line:?}: {e}"));
        assert!(
            resp.status.starts_with("-ERR ") || resp.is_ok(),
            "round {round}: unframed status {:?} for {line:?}",
            resp.status
        );
        assert!(
            !resp.status.contains("panicked"),
            "round {round}: handler panicked on {line:?}"
        );
    }
    // Same connection still serves real requests.
    let resp = client.request("PING").unwrap();
    assert!(resp.is_ok());
    drop(client);
    drain(addr);
    server.join().unwrap();
}

#[test]
fn corrupt_ingestb_bodies_are_typed_and_consume_the_frame() {
    let (addr, server) = start(2);
    let rows: Vec<Record> = (0..50)
        .map(|i| Record {
            id: i,
            value: i as i64 * 10,
            labels: vec![(i % 3) as u16],
        })
        .collect();
    let good = encode_records(&rows);
    let mut rng = StdRng::seed_from_u64(0xBADB0D);
    let mut client = Client::connect(addr).unwrap();
    for _ in 0..50 {
        let mut body = good.clone();
        let flips = rng.random_range(1..8usize);
        for _ in 0..flips {
            let at = rng.random_range(0..body.len());
            body[at] ^= 1 << rng.random_range(0..8u8);
        }
        let mut raw = format!("INGESTB {}\n", body.len()).into_bytes();
        raw.extend_from_slice(&body);
        let resp = client.request_raw(&raw).unwrap();
        // A flip the checksum can detect must be a typed error; a flip
        // that keeps the log valid may ingest. Either way the connection
        // stays framed: the next request must round-trip.
        assert!(
            resp.is_ok() || resp.status.starts_with("-ERR "),
            "{}",
            resp.status
        );
        let ping = client.request("PING").unwrap();
        assert!(ping.is_ok(), "connection lost framing: {}", ping.status);
    }
    drop(client);
    drain(addr);
    server.join().unwrap();
}

#[test]
fn truncated_body_and_half_close_is_a_typed_error() {
    let (addr, server) = start(2);
    let mut client = Client::connect(addr).unwrap();
    // Announce 100 bytes, deliver 10, half-close: the server cannot
    // recover the frame but must still answer with the typed error.
    let mut raw = b"INGESTB 100\n".to_vec();
    raw.extend_from_slice(&[0u8; 10]);
    client.write_raw(&raw).unwrap();
    client.shutdown_write().unwrap();
    let resp = client.read_response().unwrap();
    assert!(resp.status.starts_with("-ERR Protocol"), "{}", resp.status);
    assert!(resp.status.contains("truncated body"), "{}", resp.status);
    assert_alive(addr);
    drain(addr);
    server.join().unwrap();
}

#[test]
fn half_closed_mid_line_still_gets_an_answer() {
    let (addr, server) = start(2);
    // Write a fragment with no trailing newline, then half-close: the
    // fragment is treated as a complete request line and answered.
    let mut c = Client::connect(addr).unwrap();
    c.write_raw(b"PI").unwrap();
    c.shutdown_write().unwrap();
    let resp = c.read_response().unwrap();
    assert!(resp.status.starts_with("-ERR Protocol"), "{}", resp.status);
    assert_alive(addr);
    drain(addr);
    server.join().unwrap();
}

#[test]
fn oversized_requests_are_rejected_typed() {
    let (addr, server) = start(2);

    // Oversized request line (> 64 KiB): typed error, then close.
    let mut client = Client::connect(addr).unwrap();
    let big = "QUERY ".to_string() + &"1,".repeat(40_000) + "1 5 scan";
    let resp = client.request(&big).unwrap();
    assert!(resp.status.starts_with("-ERR Protocol"), "{}", resp.status);

    // Oversized batch announcement: typed error without reading a body.
    let mut client = Client::connect(addr).unwrap();
    let resp = client.request("INGESTB 999999999999").unwrap();
    assert!(resp.status.starts_with("-ERR "), "{}", resp.status);
    let ping = client.request("PING").unwrap();
    assert!(ping.is_ok(), "{}", ping.status);

    assert_alive(addr);
    drain(addr);
    server.join().unwrap();
}

#[test]
fn hello_frame_attacks_are_typed_and_keep_the_connection() {
    use mqd_core::wire::{encode_hello, seal_framed, ShardIdentity, FRAME_FOOTER};

    let (addr, server) = start(2);
    let mut client = Client::connect(addr).unwrap();

    // Announced sizes the server must refuse before reading a frame:
    // zero, past the cap, and absurd (a pre-clamp decoder would have
    // preallocated the announced size).
    for bad in ["HELLO 0", "HELLO 257", "HELLO 999999999999", "HELLO -1"] {
        let resp = client.request(bad).unwrap();
        assert!(resp.status.starts_with("-ERR "), "{bad}: {}", resp.status);
        let ping = client.request("PING").unwrap();
        assert!(ping.is_ok(), "{bad} lost framing: {}", ping.status);
    }

    // A body shorter than announced, then half-close: typed, not hung.
    let mut torn = Client::connect(addr).unwrap();
    let good = encode_hello(&ShardIdentity {
        shard_id: 0,
        shard_count: 2,
    });
    let mut raw = format!("HELLO {}\n", good.len()).into_bytes();
    raw.extend_from_slice(&good[..good.len() / 2]);
    torn.write_raw(&raw).unwrap();
    torn.shutdown_write().unwrap();
    let resp = torn.read_response().unwrap();
    assert!(resp.status.contains("truncated body"), "{}", resp.status);

    // Structurally hostile frames of the correct announced size: bad
    // magic, bad version, out-of-range shard coordinates, truncated
    // varints, trailing bytes — every one resealed so the checksum is
    // valid and the *decoder* does the rejecting.
    let reseal = |mutate: &dyn Fn(&mut Vec<u8>)| -> Vec<u8> {
        let mut body = good[..good.len() - 12].to_vec(); // strip footer
        mutate(&mut body);
        let mut frame = body;
        seal_framed(&mut frame, FRAME_FOOTER);
        frame
    };
    let hostile: Vec<(&str, Vec<u8>)> = vec![
        ("flipped magic", reseal(&|b| b[0] ^= 0xFF)),
        ("future version", reseal(&|b| b[4] = 99)),
        ("shard id >= count", {
            let mut b = good[..good.len() - 12].to_vec();
            b.truncate(5);
            b.push(7); // shard_id 7
            b.push(2); // shard_count 2
            let mut f = b;
            seal_framed(&mut f, FRAME_FOOTER);
            f
        }),
        ("shard count 0", {
            let mut b = good[..good.len() - 12].to_vec();
            b.truncate(5);
            b.push(0);
            b.push(0);
            let mut f = b;
            seal_framed(&mut f, FRAME_FOOTER);
            f
        }),
        ("shard count past the cap", {
            let mut b = good[..good.len() - 12].to_vec();
            b.truncate(5);
            b.push(1);
            b.extend_from_slice(&[0xFF, 0x7F]); // varint 16383
            let mut f = b;
            seal_framed(&mut f, FRAME_FOOTER);
            f
        }),
        ("unterminated varint", {
            let mut b = good[..good.len() - 12].to_vec();
            b.truncate(5);
            b.extend_from_slice(&[0x80, 0x80, 0x80]); // all continuation bits
            let mut f = b;
            seal_framed(&mut f, FRAME_FOOTER);
            f
        }),
        (
            "trailing bytes",
            reseal(&|b| b.extend_from_slice(&[0xEE; 3])),
        ),
        ("corrupt checksum", {
            let mut f = good.clone();
            let at = f.len() - 1;
            f[at] ^= 0xFF;
            f
        }),
    ];
    for (what, frame) in &hostile {
        let mut raw = format!("HELLO {}\n", frame.len()).into_bytes();
        raw.extend_from_slice(frame);
        let resp = client.request_raw(&raw).unwrap();
        assert!(
            resp.status.starts_with("-ERR "),
            "{what}: accepted hostile frame: {}",
            resp.status
        );
        assert!(!resp.status.contains("panicked"), "{what}: {}", resp.status);
        let ping = client.request("PING").unwrap();
        assert!(ping.is_ok(), "{what} lost framing: {}", ping.status);
    }

    // Random mutation sweep over the sealed frame, resealed each time so
    // every mutation reaches the decoder with a valid checksum.
    let mut rng = StdRng::seed_from_u64(0x4E110);
    for case in 0..64 {
        let mut body = good[..good.len() - 12].to_vec();
        for _ in 0..rng.random_range(1..4usize) {
            let at = rng.random_range(0..body.len());
            body[at] = rng.random::<u64>() as u8;
        }
        let mut frame = body;
        seal_framed(&mut frame, FRAME_FOOTER);
        let mut raw = format!("HELLO {}\n", frame.len()).into_bytes();
        raw.extend_from_slice(&frame);
        let resp = client.request_raw(&raw).unwrap();
        // A mutation may reconstruct a *valid* frame (magic+version intact,
        // small coordinates) — the standalone server accepts any map. What
        // it must never do is panic or lose line framing.
        assert!(
            resp.is_ok() || resp.status.starts_with("-ERR "),
            "case {case}: {}",
            resp.status
        );
        assert!(!resp.status.contains("panicked"), "case {case}");
        let ping = client.request("PING").unwrap();
        assert!(ping.is_ok(), "case {case} lost framing: {}", ping.status);
    }

    drop(client);
    assert_alive(addr);
    drain(addr);
    server.join().unwrap();
}

#[test]
fn sharded_backend_rejects_misrouted_rows_under_fuzz() {
    use mqd_core::wire::{shard_of_label, ShardIdentity};

    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        max_queue: 64,
        shard: Some(ShardIdentity {
            shard_id: 1,
            shard_count: 2,
        }),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().unwrap());

    let mut rng = StdRng::seed_from_u64(0x5A4D);
    let mut client = Client::connect(addr).unwrap();
    let mut value = 0i64;
    let mut accepted = 0u64;
    for i in 0..200u64 {
        value += rng.random_range(0..50i64);
        let k = rng.random_range(1..4usize);
        let labels: Vec<u16> = (0..k).map(|_| rng.random_range(0..8u32) as u16).collect();
        let owned = labels.iter().any(|&l| shard_of_label(l, 2) == 1);
        let line = format!(
            "INGEST {} {} {}",
            i + 1,
            value,
            labels
                .iter()
                .map(|l| l.to_string())
                .collect::<Vec<_>>()
                .join(",")
        );
        let resp = client.request(&line).unwrap();
        if owned {
            assert!(resp.is_ok(), "{line}: {}", resp.status);
            accepted += 1;
        } else {
            assert!(
                resp.status.starts_with("-ERR Protocol"),
                "{line}: misrouted row accepted: {}",
                resp.status
            );
            assert!(resp.status.contains("shard"), "{}", resp.status);
        }
    }
    let stats = client.request("STATS").unwrap();
    assert!(
        stats.status.contains(&format!("\"rows\":{accepted}")),
        "rejected rows must not count: {}",
        stats.status
    );
    drop(client);
    drain(addr);
    handle.join().unwrap();
}

#[test]
fn concurrent_ingest_and_query_stay_typed() {
    let (addr, server) = start(4);
    std::thread::scope(|scope| {
        let writer = scope.spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            // Monotone with ties; interleaved with the reader under load.
            for i in 0..300u64 {
                let resp = c
                    .request(&format!("INGEST {i} {} {}", (i / 2) * 5, i % 4))
                    .unwrap();
                assert!(resp.is_ok(), "{}", resp.status);
            }
        });
        let reader = scope.spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            let mut rng = StdRng::seed_from_u64(0x9EAD);
            for _ in 0..150 {
                let alg = ["greedysc", "scan", "scanplus"][rng.random_range(0..3usize)];
                let resp = c.request(&format!("QUERY 0,1,2,3 25 {alg}")).unwrap();
                assert!(
                    resp.is_ok() || resp.status.starts_with("-ERR "),
                    "{}",
                    resp.status
                );
                assert!(!resp.status.contains("panicked"), "{}", resp.status);
            }
        });
        writer.join().unwrap();
        reader.join().unwrap();
    });
    // Post-contention, a full-range query answers and the store is intact.
    let mut c = Client::connect(addr).unwrap();
    let stats = c.request("STATS").unwrap();
    assert!(stats.status.contains(r#""rows":300"#), "{}", stats.status);
    drop(c);
    drain(addr);
    server.join().unwrap();
}
