//! End-to-end tests for the serving layer: many concurrent loopback
//! clients, answers byte-identical to the offline query path, typed
//! overload responses, and a clean drain.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};

use mqd_core::record::{format_tsv, Record};
use mqd_rng::{RngExt, SeedableRng, StdRng};
use mqd_server::{format_query, Client, Server, ServerConfig};
use mqd_store::{run_query, Algorithm, QuerySpec, Store};

const NUM_LABELS: u16 = 5;

fn corpus(seed: u64, n: usize) -> Vec<Record> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut value = 0i64;
    (0..n)
        .map(|i| {
            value += rng.random_range(0..100i64);
            let k = rng.random_range(1..=3usize);
            Record {
                id: i as u64,
                value,
                labels: (0..k).map(|_| rng.random_range(0..NUM_LABELS)).collect(),
            }
        })
        .collect()
}

fn start(threads: usize, max_queue: usize) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads,
        max_queue,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    (addr, std::thread::spawn(move || server.run().unwrap()))
}

fn drain(addr: SocketAddr) {
    let mut c = Client::connect(addr).unwrap();
    let resp = c.request("DRAIN").unwrap();
    assert!(resp.is_ok(), "{}", resp.status);
}

fn random_spec(rng: &mut StdRng, span: i64) -> QuerySpec {
    let algs = [Algorithm::GreedySc, Algorithm::Scan, Algorithm::ScanPlus];
    let mut labels: Vec<u16> = (0..NUM_LABELS)
        .filter(|_| rng.random::<f64>() < 0.5)
        .collect();
    if labels.is_empty() {
        labels.push(rng.random_range(0..NUM_LABELS));
    }
    let (from, to) = if rng.random::<f64>() < 0.3 {
        let a = rng.random_range(0..span.max(1));
        let b = rng.random_range(0..span.max(1));
        (a.min(b), a.max(b))
    } else {
        (i64::MIN, i64::MAX)
    };
    QuerySpec {
        labels,
        lambda: rng.random_range(10..2_000i64),
        proportional: rng.random::<f64>() < 0.25,
        algorithm: algs[rng.random_range(0..algs.len())],
        from,
        to,
    }
}

/// Acceptance: >= 64 concurrent loopback clients, zero panics, and every
/// served answer byte-identical to `run_query` on an offline store built
/// from the same rows.
#[test]
fn sixty_four_clients_get_offline_identical_answers() {
    const CLIENTS: usize = 64;
    const QUERIES_PER_CLIENT: usize = 4;

    let rows = corpus(0xE2E, 1_500);
    let span = rows.last().unwrap().value;
    let mut offline = Store::new();
    for r in &rows {
        offline.append(r.clone()).unwrap();
    }

    let (addr, server) = start(8, 2 * CLIENTS);
    let mut feeder = Client::connect(addr).unwrap();
    let resp = feeder.ingest_batch(&rows).unwrap();
    assert!(resp.is_ok(), "{}", resp.status);
    drop(feeder); // workers own their connections; free this one

    let mismatches = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let offline = &offline;
            let mismatches = &mismatches;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ (c as u64) << 20);
                let mut client = Client::connect(addr).unwrap();
                for _ in 0..QUERIES_PER_CLIENT {
                    let spec = random_spec(&mut rng, span);
                    let resp = client.request(&format_query(&spec)).unwrap();
                    assert!(resp.is_ok(), "{} -> {}", format_query(&spec), resp.status);
                    let want: Vec<String> = run_query(offline, &spec)
                        .unwrap()
                        .iter()
                        .map(format_tsv)
                        .collect();
                    if resp.lines != want {
                        mismatches.fetch_add(1, Ordering::Relaxed);
                        eprintln!(
                            "mismatch on {}: served {:?} offline {:?}",
                            format_query(&spec),
                            resp.lines,
                            want
                        );
                    }
                }
            });
        }
    });
    assert_eq!(mismatches.load(Ordering::Relaxed), 0);

    // The server survived 64 clients: stats still answer, counters add up.
    let mut c = Client::connect(addr).unwrap();
    let stats = c.request("STATS").unwrap();
    assert!(stats.is_ok());
    assert!(
        stats
            .status
            .contains(&format!(r#""queries":{}"#, CLIENTS * QUERIES_PER_CLIENT)),
        "{}",
        stats.status
    );
    assert!(
        stats.status.contains(r#""ingested_rows":1500"#),
        "{}",
        stats.status
    );
    drop(c);
    drain(addr);
    server.join().unwrap();
}

/// Rebuilds an offline store from the first `g` rows — the store state the
/// server reported via its `"generation":g` watermark (one append per
/// generation, in ingest order).
fn store_at(rows: &[Record], g: usize) -> Store {
    let mut s = Store::new();
    for r in &rows[..g] {
        s.append(r.clone()).unwrap();
    }
    s
}

/// Pulls the `"generation":N` watermark out of a `+OK` query status line.
fn parse_generation(status: &str) -> u64 {
    let tail = status
        .split("\"generation\":")
        .nth(1)
        .unwrap_or_else(|| panic!("no generation watermark in {status}"));
    let digits: String = tail.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits
        .parse()
        .unwrap_or_else(|_| panic!("bad generation in {status}"))
}

/// Acceptance for incremental cover maintenance: 64 clients query while a
/// writer ingests, and **every** response — fresh, repaired in place, or
/// served stale — must verify byte-identically against an offline solve on
/// the store state at its reported watermark generation. Staleness is
/// allowed; a wrong cover at the claimed watermark is not.
#[test]
fn concurrent_ingest_answers_verify_at_their_watermark() {
    const CLIENTS: usize = 64;
    const QUERIES_PER_CLIENT: usize = 4;
    const PRELOAD: usize = 600;

    let rows = corpus(0x3A7E12, 1_200);
    let span = rows.last().unwrap().value;

    // One worker per connection (clients + writer + stats), so no query
    // waits on connection queueing and the interleaving is real.
    let (addr, server) = start(CLIENTS + 2, 2 * CLIENTS);
    let mut feeder = Client::connect(addr).unwrap();
    let resp = feeder.ingest_batch(&rows[..PRELOAD]).unwrap();
    assert!(resp.is_ok(), "{}", resp.status);
    drop(feeder);

    let mismatches = AtomicU64::new(0);
    std::thread::scope(|scope| {
        let rows = &rows;
        scope.spawn(move || {
            let mut w = Client::connect(addr).unwrap();
            for r in &rows[PRELOAD..] {
                let labels: Vec<String> = r.labels.iter().map(|l| l.to_string()).collect();
                let line = format!("INGEST {} {} {}", r.id, r.value, labels.join(","));
                let resp = w.request(&line).unwrap();
                assert!(resp.is_ok(), "{line} -> {}", resp.status);
                // Spread the writes across the clients' query window.
                std::thread::sleep(std::time::Duration::from_micros(500));
            }
        });
        for c in 0..CLIENTS {
            let mismatches = &mismatches;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0x3A7E ^ (c as u64) << 20);
                let mut client = Client::connect(addr).unwrap();
                for _ in 0..QUERIES_PER_CLIENT {
                    let spec = random_spec(&mut rng, span);
                    let resp = client.request(&format_query(&spec)).unwrap();
                    assert!(resp.is_ok(), "{} -> {}", format_query(&spec), resp.status);
                    let g = parse_generation(&resp.status) as usize;
                    assert!(
                        (PRELOAD..=rows.len()).contains(&g),
                        "watermark {g} outside [{PRELOAD}, {}]",
                        rows.len()
                    );
                    let offline = store_at(rows, g);
                    let want: Vec<String> = run_query(&offline, &spec)
                        .unwrap()
                        .iter()
                        .map(format_tsv)
                        .collect();
                    if resp.lines != want {
                        mismatches.fetch_add(1, Ordering::Relaxed);
                        eprintln!(
                            "watermark mismatch on {} at generation {g}: served {:?} offline {:?}",
                            format_query(&spec),
                            resp.lines,
                            want
                        );
                    }
                }
            });
        }
    });
    assert_eq!(mismatches.load(Ordering::Relaxed), 0);

    // The writer ran to completion before the scope closed, so the store
    // must have advanced past the preload watermark.
    let mut c = Client::connect(addr).unwrap();
    let stats = c.request("STATS").unwrap();
    assert!(stats.is_ok());
    assert!(
        stats
            .status
            .contains(&format!(r#""generation":{}"#, rows.len())),
        "{}",
        stats.status
    );
    drop(c);
    drain(addr);
    server.join().unwrap();
}

/// Overload is a typed `-OVERLOADED` response, not a dropped connection:
/// with one worker (held busy) and a queue of one, the third connection
/// must be answered and turned away.
#[test]
fn overload_is_a_typed_response() {
    let (addr, server) = start(1, 1);

    // Occupy the only worker; the PING round-trip proves it is attached.
    let mut holder = Client::connect(addr).unwrap();
    assert!(holder.request("PING").unwrap().is_ok());

    // Fills the queue slot (never served while the holder stays open).
    let _queued = Client::connect(addr).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(100));

    // Overflow: must get the typed status, synchronously, then EOF.
    let mut rejected = Client::connect(addr).unwrap();
    let resp = rejected.read_response().unwrap();
    assert!(resp.is_overloaded(), "{}", resp.status);

    // Releasing the worker lets the queued connection be served.
    assert!(holder.request("QUIT").unwrap().is_ok());
    let mut queued = _queued;
    assert!(queued.request("PING").unwrap().is_ok());
    assert!(queued.request("QUIT").unwrap().is_ok());

    drain(addr);
    server.join().unwrap();
}

/// DRAIN finishes in-flight work, stops accepting, and `run` returns.
#[test]
fn drain_stops_the_server() {
    let (addr, server) = start(2, 8);
    let mut c = Client::connect(addr).unwrap();
    assert!(c.request("INGEST 1 10 0").unwrap().is_ok());
    assert!(c.request("DRAIN").unwrap().is_ok());
    server.join().unwrap();
    // The listener is gone: a fresh connection must fail (refused) or be
    // closed without a response.
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut c) => assert!(c.request("PING").is_err()),
    }
}
