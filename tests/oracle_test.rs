//! Workspace-level oracle acceptance: a short differential sweep over every
//! instance family, plus the fixed-vs-variable lambda property on the
//! uniform-density grid (Equation 2 degenerates to `lambda0` there, so the
//! two providers must be interchangeable for every solver — brute included).

use mqd_core::algorithms::{solve_brute, solve_greedy_sc, solve_scan, solve_scan_plus, LabelOrder};
use mqd_core::{FixedLambda, Instance, VariableLambda};
use mqd_oracle::generate::grid_case;
use mqd_oracle::{run_oracle, OracleConfig};

#[test]
fn oracle_sweep_all_profiles() {
    let cfg = OracleConfig {
        seeds: 8,
        write_reports: false,
        ..OracleConfig::default()
    };
    let mut log = Vec::new();
    let summary = run_oracle(&cfg, &mut log);
    assert!(
        summary.ok(),
        "oracle failures:\n{}",
        String::from_utf8_lossy(&log)
    );
}

#[test]
fn fixed_and_variable_lambda_agree_on_uniform_density() {
    for (n, k, num_labels) in [
        (2, 1, 1),
        (3, 7, 2),
        (5, 1, 3),
        (8, 250, 2),
        (12, 1000, 1),
        (16, 33, 3),
    ] {
        let (items, labels, lambda0) = grid_case(n, k, num_labels);
        let inst = Instance::from_values(items, labels).expect("grid instance");
        let var = VariableLambda::compute(&inst, lambda0);

        // Eq. 2 thresholds: expected_in_window is exactly 1 on the grid, so
        // every per-pair lambda equals lambda0.
        for (i, &l) in var.per_pair().iter().enumerate() {
            assert_eq!(
                l, lambda0,
                "grid n={n} k={k} L={num_labels}: pair {i} got lambda {l}, want {lambda0}"
            );
        }

        // Interchangeable providers => identical covers from every solver.
        let fixed = FixedLambda(lambda0);
        assert_eq!(
            solve_greedy_sc(&inst, &fixed).selected,
            solve_greedy_sc(&inst, &var).selected,
            "GreedySC diverged on grid n={n} k={k} L={num_labels}"
        );
        assert_eq!(
            solve_scan(&inst, &fixed).selected,
            solve_scan(&inst, &var).selected,
            "Scan diverged on grid n={n} k={k} L={num_labels}"
        );
        for order in [
            LabelOrder::Input,
            LabelOrder::DensestFirst,
            LabelOrder::SparsestFirst,
        ] {
            assert_eq!(
                solve_scan_plus(&inst, &fixed, order).selected,
                solve_scan_plus(&inst, &var, order).selected,
                "Scan+ {order:?} diverged on grid n={n} k={k} L={num_labels}"
            );
        }
        if n <= 12 {
            let bf = solve_brute(&inst, &fixed, None).expect("brute fixed");
            let bv = solve_brute(&inst, &var, None).expect("brute variable");
            assert_eq!(
                bf.selected, bv.selected,
                "Brute diverged on grid n={n} k={k} L={num_labels}"
            );
        }
    }
}
