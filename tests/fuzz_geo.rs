//! Seeded fuzz tests for the spatiotemporal extension (ported from the
//! former proptest suite to plain loops over `mqd_rng` seeds).

use mqd_rng::{RngExt, SeedableRng, StdRng};

use mqdiv::core::{LabelId, PostId};
use mqdiv::geo::{
    solve_geo_brute, solve_geo_greedy, solve_geo_sweep, GeoInstance, GeoLambda, GeoPost,
};

fn geo_instance(rng: &mut StdRng) -> GeoInstance {
    let n = rng.random_range(1..40usize);
    let posts: Vec<GeoPost> = (0..n)
        .map(|i| {
            let t = rng.random_range(0..500i64);
            let x = rng.random_range(0..1_000i64);
            let y = rng.random_range(0..1_000i64);
            let l = rng.random_range(0..3u16);
            GeoPost::new(PostId(i as u64), t, x, y, vec![LabelId(l)])
        })
        .collect();
    let lt = rng.random_range(1..200i64);
    let ld = rng.random_range(1..500i64);
    GeoInstance::new(posts, 3, GeoLambda::new(lt, ld))
}

const CASES: u64 = 48;

#[test]
fn greedy_and_sweep_always_cover() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = geo_instance(&mut rng);
        let g = solve_geo_greedy(&inst);
        let s = solve_geo_sweep(&inst);
        assert!(inst.is_cover(&g.selected), "greedy non-cover (seed {seed})");
        assert!(inst.is_cover(&s.selected), "sweep non-cover (seed {seed})");
        assert!(
            g.selected.iter().all(|&i| (i as usize) < inst.len()),
            "seed {seed}"
        );
    }
}

#[test]
fn brute_is_a_lower_bound_on_small() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = geo_instance(&mut rng);
        if inst.len() > 14 {
            continue;
        }
        let b = solve_geo_brute(&inst, Some(14)).expect("within cap");
        assert!(inst.is_cover(&b.selected), "seed {seed}");
        let g = solve_geo_greedy(&inst);
        let s = solve_geo_sweep(&inst);
        assert!(b.size() <= g.size(), "seed {seed}");
        assert!(b.size() <= s.size(), "seed {seed}");
        // Minimality: dropping any brute pick breaks the cover.
        for skip in 0..b.selected.len() {
            let reduced: Vec<u32> = b
                .selected
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, &p)| p)
                .collect();
            assert!(!inst.is_cover(&reduced), "seed {seed}");
        }
    }
}

#[test]
fn coverage_is_symmetric_for_uniform_thresholds() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = geo_instance(&mut rng);
        for i in 0..inst.len().min(10) as u32 {
            for j in 0..inst.len().min(10) as u32 {
                for &a in inst.post(i).labels().to_vec().iter() {
                    assert_eq!(
                        inst.covers(i, j, a),
                        inst.covers(j, i, a),
                        "geo coverage must be symmetric (seed {seed})"
                    );
                }
            }
        }
    }
}

#[test]
fn widening_thresholds_keeps_covers_valid() {
    // A cover under (lt, ld) stays one under (2lt, 2ld).
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = geo_instance(&mut rng);
        let g = solve_geo_greedy(&inst);
        let wider = GeoInstance::new(
            inst.posts().to_vec(),
            inst.num_labels(),
            GeoLambda::new(inst.lambda().time * 2, inst.lambda().dist * 2),
        );
        assert!(wider.is_cover(&g.selected), "seed {seed}");
    }
}
