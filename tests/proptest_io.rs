//! Property-based tests for the I/O substrates: TSV and binary-log round
//! trips over arbitrary rows, and the windowed timeline invariants.

use proptest::prelude::*;

use mqd_cli::binlog;
use mqd_cli::tsv::{self, LabeledRow};
use mqdiv::stream::WindowedTimeline;

fn rows_strategy() -> impl Strategy<Value = Vec<LabeledRow>> {
    proptest::collection::vec(
        (
            any::<u64>(),
            any::<i64>(),
            proptest::collection::vec(any::<u16>(), 0..4),
        )
            .prop_map(|(id, value, labels)| LabeledRow { id, value, labels }),
        0..50,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn binlog_round_trips_arbitrary_rows(rows in rows_strategy()) {
        let data = binlog::encode(&rows);
        prop_assert_eq!(binlog::decode(&data).unwrap(), rows);
    }

    #[test]
    fn binlog_rejects_any_single_byte_flip(rows in rows_strategy(), pos_seed in any::<u64>()) {
        let mut data = binlog::encode(&rows).to_vec();
        let pos = (pos_seed % data.len() as u64) as usize;
        data[pos] ^= 0x5a;
        // Either an error, or (vanishingly unlikely with a 64-bit FNV
        // checksum) a detected-equal decode; never a silent wrong answer.
        if let Ok(decoded) = binlog::decode(&data) {
            prop_assert_eq!(decoded, rows);
        }
    }

    #[test]
    fn tsv_round_trips(rows in rows_strategy()) {
        let mut buf = Vec::new();
        tsv::write_labeled(&mut buf, &rows).unwrap();
        prop_assert_eq!(tsv::read_labeled(buf.as_slice()).unwrap(), rows);
    }

    #[test]
    fn timeline_digest_always_covers_window(
        times in proptest::collection::vec(0i64..10_000, 1..60),
        window in 100i64..5_000,
        lambda in 1i64..500,
    ) {
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let mut tl = WindowedTimeline::new(2, window, lambda);
        for (i, &t) in sorted.iter().enumerate() {
            tl.on_post(i as u64, t, vec![(i % 2) as u16]);
        }
        let digest = tl.digest();
        // Every live post must have a same-label digest member within lambda.
        let now = *sorted.last().unwrap();
        for (i, &t) in sorted.iter().enumerate() {
            if t < now - window {
                continue; // expired
            }
            let label = (i % 2) as u16;
            let covered = digest
                .iter()
                .any(|p| p.labels.contains(&label) && (p.time - t).abs() <= lambda);
            prop_assert!(covered, "post at t={t} label {label} unrepresented");
        }
        // Digest members are live posts.
        for p in &digest {
            prop_assert!(p.time >= now - window);
        }
    }
}
