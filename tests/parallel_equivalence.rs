//! Cross-crate equivalence tests for the parallel execution layer: every
//! parallel path must be byte-identical to its sequential counterpart at
//! any thread count, on realistic datagen streams. These are the
//! determinism guarantees DESIGN.md's "Threading model" section promises.

use mqd_core::algorithms::solve_greedy_sc_threads;
use mqd_core::{coverage, FixedLambda, Instance};
use mqd_datagen::{generate_labeled_posts, LabeledStreamConfig, MINUTE_MS};
use mqd_rng::{RngExt, SeedableRng, StdRng};
use mqd_stream::{
    run_sharded_reference, run_sharded_stream, solve_batch_users_threads, BatchUser,
    ShardEngineKind,
};

const THREAD_COUNTS: &[usize] = &[1, 2, 8];

/// A few minutes of the calibrated synthetic Twitter stream.
fn stream_instance(seed: u64, num_labels: usize, minutes: i64, skew: f64) -> Instance {
    let posts = generate_labeled_posts(&LabeledStreamConfig {
        num_labels,
        per_label_per_minute: 30.0,
        overlap: 1.3,
        start_ms: 0,
        duration_ms: minutes * MINUTE_MS,
        label_skew: skew,
        diurnal_amplitude: 0.0,
        seed,
    });
    Instance::from_posts(posts, num_labels).expect("datagen stream is well-formed")
}

#[test]
fn greedy_sc_identical_across_thread_counts() {
    for (seed, labels, skew) in [(11, 3, 0.0), (12, 6, 0.8), (13, 10, 1.5)] {
        let inst = stream_instance(seed, labels, 4, skew);
        let f = FixedLambda(5_000);
        let base = solve_greedy_sc_threads(1, &inst, &f);
        assert!(coverage::is_cover(&inst, &f, &base.selected), "seed {seed}");
        for &t in THREAD_COUNTS {
            let sol = solve_greedy_sc_threads(t, &inst, &f);
            assert_eq!(
                sol.selected, base.selected,
                "GreedySC diverged: seed {seed}, {t} threads"
            );
        }
    }
}

#[test]
fn violations_identical_across_thread_counts() {
    for (seed, labels) in [(21, 4), (22, 8)] {
        let inst = stream_instance(seed, labels, 3, 0.5);
        let f = FixedLambda(7_000);
        // A deliberately partial selection so violations are non-empty.
        let selected: Vec<u32> = (0..inst.len() as u32).step_by(5).collect();
        let base = coverage::violations_threads(1, &inst, &f, &selected);
        assert!(!base.is_empty() || inst.len() < 5, "seed {seed}");
        for &t in THREAD_COUNTS {
            let v = coverage::violations_threads(t, &inst, &f, &selected);
            assert_eq!(v, base, "violations diverged: seed {seed}, {t} threads");
        }
    }
}

#[test]
fn batch_multiuser_identical_and_valid_across_thread_counts() {
    let inst = stream_instance(31, 8, 3, 0.6);
    let mut rng = StdRng::seed_from_u64(31);
    let users: Vec<BatchUser> = (0..20)
        .map(|_| {
            let k = rng.random_range(1..=4usize);
            BatchUser {
                labels: (0..k).map(|_| rng.random_range(0..8u16)).collect(),
                lambda: rng.random_range(1_000..12_000i64),
            }
        })
        .collect();
    let base = solve_batch_users_threads(1, &inst, &users);
    for &t in THREAD_COUNTS {
        let digests = solve_batch_users_threads(t, &inst, &users);
        assert_eq!(digests, base, "batch digests diverged at {t} threads");
    }
}

#[test]
fn sharded_streaming_matches_reference_and_respects_tau() {
    let inst = stream_instance(41, 6, 3, 0.4);
    let (lambda, tau) = (6_000i64, 4_000i64);
    let f = FixedLambda(lambda);
    for kind in [
        ShardEngineKind::Scan,
        ShardEngineKind::ScanPlus,
        ShardEngineKind::Greedy,
        ShardEngineKind::GreedyPlus,
    ] {
        for &shards in THREAD_COUNTS {
            let par = run_sharded_stream(&inst, lambda, tau, shards, kind);
            let seq = run_sharded_reference(&inst, lambda, tau, shards, kind);
            assert_eq!(
                par.emissions, seq.emissions,
                "{kind:?} emissions diverged at {shards} shards"
            );
            assert_eq!(par.selected, seq.selected, "{kind:?} at {shards} shards");
            assert!(
                coverage::is_cover(&inst, &f, &par.selected),
                "{kind:?} at {shards} shards is not a cover"
            );
            assert!(
                par.max_delay <= tau,
                "{kind:?} at {shards} shards: delay {} > tau {tau}",
                par.max_delay
            );
        }
    }
}

#[test]
fn global_thread_config_does_not_change_results() {
    // The env/CLI-facing entry points route through configured_threads();
    // pinning the global override must never change any answer.
    let inst = stream_instance(51, 5, 2, 0.0);
    let f = FixedLambda(5_000);
    let base = solve_greedy_sc_threads(1, &inst, &f);
    for n in [1usize, 3] {
        mqd_par::set_threads(Some(n));
        let sol = mqd_core::algorithms::solve_greedy_sc(&inst, &f);
        assert_eq!(sol.selected, base.selected, "override {n}");
    }
    mqd_par::set_threads(None);
}
