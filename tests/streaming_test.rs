//! Cross-crate integration tests for the streaming engines on generated
//! workloads: cover validity, delay constraints, the tau >= lambda
//! equivalence with offline Scan, and the documented size/delay trade-off.

use mqdiv::core::algorithms::solve_scan;
use mqdiv::core::{FixedLambda, Instance};
use mqdiv::datagen::{generate_labeled_posts, LabeledStreamConfig, MINUTE_MS};
use mqdiv::stream::{run_stream, InstantScan, StreamGreedy, StreamScan};

fn workload(num_labels: usize, seed: u64) -> Instance {
    let posts = generate_labeled_posts(&LabeledStreamConfig {
        num_labels,
        per_label_per_minute: 15.0,
        overlap: 1.3,
        duration_ms: 10 * MINUTE_MS,
        seed,
        ..Default::default()
    });
    Instance::from_posts(posts, num_labels).unwrap()
}

#[test]
fn all_engines_cover_within_delay_budget() {
    let inst = workload(3, 5);
    for lambda_s in [5i64, 20, 60] {
        let f = FixedLambda(lambda_s * 1000);
        for tau_s in [0i64, 5, 30] {
            let tau = tau_s * 1000;
            let engines: Vec<(&str, Box<dyn mqdiv::stream::StreamEngine>)> = vec![
                ("scan", Box::new(StreamScan::new(3, inst.len()))),
                ("scan+", Box::new(StreamScan::new_plus(3, inst.len()))),
                ("greedy", Box::new(StreamGreedy::new(3, inst.len()))),
                ("greedy+", Box::new(StreamGreedy::new_plus(3, inst.len()))),
            ];
            for (name, mut eng) in engines {
                let res = run_stream(&inst, &f, tau, eng.as_mut());
                assert!(
                    res.is_cover(&inst, &f),
                    "{name} lambda={lambda_s} tau={tau_s}: non-cover"
                );
                assert!(
                    res.max_delay <= tau,
                    "{name} lambda={lambda_s} tau={tau_s}: delay {} > tau",
                    res.max_delay
                );
            }
        }
    }
}

#[test]
fn stream_scan_equals_offline_scan_when_tau_at_least_lambda() {
    for seed in 0..6 {
        let inst = workload(2, 50 + seed);
        for lambda_s in [5i64, 15, 30] {
            let f = FixedLambda(lambda_s * 1000);
            let offline = solve_scan(&inst, &f);
            for tau_mult in [1i64, 2, 4] {
                let tau = lambda_s * 1000 * tau_mult;
                let mut eng = StreamScan::new(2, inst.len());
                let res = run_stream(&inst, &f, tau, &mut eng);
                assert_eq!(
                    res.selected, offline.selected,
                    "seed {seed} lambda {lambda_s}s tau {tau}ms: streaming != offline Scan"
                );
            }
        }
    }
}

#[test]
fn instant_engine_is_zero_delay_and_covers() {
    let inst = workload(2, 11);
    for lambda_s in [10i64, 30] {
        let f = FixedLambda(lambda_s * 1000);
        let mut eng = InstantScan::new(2);
        let res = run_stream(&inst, &f, 0, &mut eng);
        assert!(res.is_cover(&inst, &f));
        assert_eq!(res.max_delay, 0);
    }
}

#[test]
fn instant_engine_2s_bound_single_label() {
    // The Section 5.1 pairwise argument (consecutive emissions > lambda
    // apart, hence <= 2x the per-label optimum) is a theorem for a single
    // label; with multiple labels an emission triggered by another
    // uncovered label may land within lambda on a shared one.
    let inst = workload(1, 11);
    for lambda_s in [10i64, 30] {
        let f = FixedLambda(lambda_s * 1000);
        let mut eng = InstantScan::new(1);
        let res = run_stream(&inst, &f, 0, &mut eng);
        assert!(res.is_cover(&inst, &f));
        let times: Vec<i64> = res.selected.iter().map(|&i| inst.value(i)).collect();
        for w in times.windows(2) {
            assert!(
                w[1] - w[0] > lambda_s * 1000,
                "instant emitted two covered posts"
            );
        }
        let opt = solve_scan(&inst, &f); // optimal for one label
        assert!(res.size() <= 2 * opt.size());
    }
}

#[test]
fn larger_tau_never_hurts_stream_scan_much() {
    // The documented trade-off: more delay budget -> no larger output for
    // StreamScan (it converges to offline Scan).
    let inst = workload(2, 21);
    let f = FixedLambda(20_000);
    let sizes: Vec<usize> = [0i64, 5_000, 20_000, 60_000]
        .iter()
        .map(|&tau| {
            let mut eng = StreamScan::new(2, inst.len());
            run_stream(&inst, &f, tau, &mut eng).size()
        })
        .collect();
    assert!(
        sizes.windows(2).all(|w| w[1] <= w[0]),
        "sizes should be non-increasing in tau: {sizes:?}"
    );
}

#[test]
fn emissions_are_causally_ordered() {
    // emit_time must be >= the post's own timestamp and non-decreasing in
    // emission order (the engine cannot emit into the past).
    let inst = workload(3, 33);
    let f = FixedLambda(15_000);
    let mut eng = StreamGreedy::new(3, inst.len());
    let res = run_stream(&inst, &f, 10_000, &mut eng);
    for e in &res.emissions {
        assert!(e.emit_time >= inst.value(e.post));
    }
    for w in res.emissions.windows(2) {
        assert!(w[0].emit_time <= w[1].emit_time);
    }
}
