//! Cross-crate integration tests for the offline solvers on generated
//! workloads: optimality ordering, approximation bounds, and agreement
//! between the exact solvers.

use mqdiv::core::algorithms::{
    solve_brute, solve_greedy_sc, solve_greedy_sc_naive, solve_opt, solve_scan, solve_scan_plus,
    LabelOrder, OptConfig,
};
use mqdiv::core::{coverage, FixedLambda, Instance, LabelId, VariableLambda};
use mqdiv::datagen::{generate_labeled_posts, LabeledStreamConfig, MINUTE_MS};

fn small_instance(num_labels: usize, seed: u64) -> Instance {
    let posts = generate_labeled_posts(&LabeledStreamConfig {
        num_labels,
        per_label_per_minute: 3.0,
        overlap: 1.3,
        duration_ms: 2 * MINUTE_MS,
        seed,
        ..Default::default()
    });
    Instance::from_posts(posts, num_labels).unwrap()
}

#[test]
fn solver_ordering_on_generated_streams() {
    for seed in 0..8 {
        let inst = small_instance(2, seed);
        if inst.len() > 18 || inst.is_empty() {
            continue;
        }
        let lambda_ms = 20_000;
        let f = FixedLambda(lambda_ms);
        let opt = solve_opt(&inst, lambda_ms, &OptConfig::default()).unwrap();
        let brute = solve_brute(&inst, &f, None).unwrap();
        assert_eq!(
            opt.size(),
            brute.size(),
            "seed {seed}: exact solvers disagree"
        );

        let scan = solve_scan(&inst, &f);
        let scanp = solve_scan_plus(&inst, &f, LabelOrder::Input);
        let greedy = solve_greedy_sc(&inst, &f);
        let greedy_naive = solve_greedy_sc_naive(&inst, &f);
        assert_eq!(greedy.selected, greedy_naive.selected);

        for sol in [&scan, &scanp, &greedy] {
            assert!(coverage::is_cover(&inst, &f, &sol.selected));
            assert!(sol.size() >= opt.size(), "no solver may beat OPT");
        }
        // Paper bounds.
        let s = inst.max_labels_per_post() as f64;
        assert!(scan.size() as f64 <= s * opt.size() as f64 + 1e-9);
        let ln_bound = ((inst.len() * inst.num_labels()) as f64).ln().max(1.0) * opt.size() as f64;
        assert!(greedy.size() as f64 <= ln_bound + 1.0);
    }
}

#[test]
fn scan_plus_never_worse_than_scan_on_these_workloads() {
    // Not a theorem, but holds across this seeded workload family; a
    // regression here signals the cross-label pruning broke.
    for seed in 0..10 {
        let inst = small_instance(3, 100 + seed);
        let f = FixedLambda(15_000);
        let scan = solve_scan(&inst, &f);
        let scanp = solve_scan_plus(&inst, &f, LabelOrder::Input);
        assert!(
            scanp.size() <= scan.size(),
            "seed {seed}: Scan+ {} > Scan {}",
            scanp.size(),
            scan.size()
        );
    }
}

#[test]
fn variable_lambda_produces_valid_directional_covers() {
    let posts = generate_labeled_posts(&LabeledStreamConfig {
        num_labels: 3,
        per_label_per_minute: 20.0,
        overlap: 1.3,
        label_skew: 1.0,
        duration_ms: 10 * MINUTE_MS,
        seed: 77,
        ..Default::default()
    });
    let inst = Instance::from_posts(posts, 3).unwrap();
    let var = VariableLambda::compute(&inst, 30_000);
    for sol in [
        solve_scan(&inst, &var),
        solve_scan_plus(&inst, &var, LabelOrder::Input),
        solve_greedy_sc(&inst, &var),
    ] {
        assert!(
            coverage::is_cover(&inst, &var, &sol.selected),
            "{} non-cover under variable lambda",
            sol.algorithm
        );
    }
    // Popular (skewed) label 0 must see smaller average lambda than the
    // rarest label.
    let avg = |a: LabelId| -> f64 {
        let lp = inst.postings(a);
        lp.iter()
            .map(|&i| var.per_pair()[inst.pair_id(i, a).unwrap() as usize] as f64)
            .sum::<f64>()
            / lp.len().max(1) as f64
    };
    assert!(
        avg(LabelId(0)) < avg(LabelId(2)),
        "dense label should get smaller lambda: {} vs {}",
        avg(LabelId(0)),
        avg(LabelId(2))
    );
}

#[test]
fn lambda_zero_requires_exact_value_cover() {
    let inst = Instance::from_values(
        vec![(0, vec![0]), (0, vec![0]), (1, vec![0]), (1, vec![1])],
        2,
    )
    .unwrap();
    let f = FixedLambda(0);
    let opt = solve_opt(&inst, 0, &OptConfig::default()).unwrap();
    assert!(coverage::is_cover(&inst, &f, &opt.selected));
    assert_eq!(opt.size(), 3); // one a-post per timestamp + the b-post
}

#[test]
fn huge_lambda_reduces_to_pure_set_cover() {
    // With lambda spanning the whole range, MQDP is set cover over label
    // sets; a post with all labels is a singleton optimum.
    let inst = Instance::from_values(
        vec![
            (0, vec![0]),
            (1_000_000, vec![1]),
            (2_000_000, vec![2]),
            (1_500_000, vec![0, 1, 2]),
        ],
        3,
    )
    .unwrap();
    let f = FixedLambda(10_000_000);
    let opt = solve_opt(&inst, 10_000_000, &OptConfig::default()).unwrap();
    assert_eq!(opt.size(), 1);
    let greedy = solve_greedy_sc(&inst, &f);
    assert_eq!(greedy.size(), 1);
}
