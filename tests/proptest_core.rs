//! Property-based tests (proptest) for the offline solvers: every
//! algorithm always returns a valid lambda-cover, the exact solvers agree,
//! and the paper's approximation bounds hold on arbitrary instances.

use proptest::prelude::*;

use mqdiv::core::algorithms::{
    solve_brute, solve_greedy_sc, solve_greedy_sc_naive, solve_opt, solve_scan, solve_scan_plus,
    LabelOrder, OptConfig,
};
use mqdiv::core::{coverage, FixedLambda, Instance, VariableLambda};

/// Strategy: a small random instance plus a lambda.
fn tiny_instance() -> impl Strategy<Value = (Instance, i64)> {
    let post = (0i64..80, proptest::collection::vec(0u16..3, 1..3));
    (
        proptest::collection::vec(post, 1..10),
        0i64..30,
    )
        .prop_map(|(items, lambda)| {
            (
                Instance::from_values(items, 3).expect("labels < 3"),
                lambda,
            )
        })
}

/// Strategy: a medium instance (too big for exact solvers, fine for the
/// approximations).
fn medium_instance() -> impl Strategy<Value = (Instance, i64)> {
    let post = (0i64..5_000, proptest::collection::vec(0u16..5, 1..4));
    (
        proptest::collection::vec(post, 1..120),
        0i64..400,
    )
        .prop_map(|(items, lambda)| {
            (
                Instance::from_values(items, 5).expect("labels < 5"),
                lambda,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn opt_matches_brute_force((inst, lambda) in tiny_instance()) {
        let dp = solve_opt(&inst, lambda, &OptConfig::default()).unwrap();
        let bf = solve_brute(&inst, &FixedLambda(lambda), None).unwrap();
        prop_assert!(coverage::is_cover(&inst, &FixedLambda(lambda), &dp.selected));
        prop_assert_eq!(dp.size(), bf.size());
    }

    #[test]
    fn all_approximations_return_valid_covers((inst, lambda) in medium_instance()) {
        let f = FixedLambda(lambda);
        for sol in [
            solve_scan(&inst, &f),
            solve_scan_plus(&inst, &f, LabelOrder::Input),
            solve_scan_plus(&inst, &f, LabelOrder::DensestFirst),
            solve_scan_plus(&inst, &f, LabelOrder::SparsestFirst),
            solve_greedy_sc(&inst, &f),
        ] {
            prop_assert!(
                coverage::is_cover(&inst, &f, &sol.selected),
                "{} produced a non-cover", sol.algorithm
            );
            // Selected posts must be real indices, sorted, unique.
            prop_assert!(sol.selected.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(sol.selected.iter().all(|&i| (i as usize) < inst.len()));
        }
    }

    #[test]
    fn scan_bound_holds((inst, lambda) in tiny_instance()) {
        let f = FixedLambda(lambda);
        let opt = solve_brute(&inst, &f, None).unwrap();
        let scan = solve_scan(&inst, &f);
        let s = inst.max_labels_per_post().max(1);
        prop_assert!(scan.size() <= s * opt.size().max(1) || scan.size() <= s * opt.size());
        prop_assert!(opt.size() <= scan.size());
    }

    #[test]
    fn greedy_variants_agree((inst, lambda) in medium_instance()) {
        let f = FixedLambda(lambda);
        let lazy = solve_greedy_sc(&inst, &f);
        let naive = solve_greedy_sc_naive(&inst, &f);
        prop_assert_eq!(lazy.selected, naive.selected);
    }

    #[test]
    fn greedy_variants_agree_under_variable_lambda((inst, lambda) in medium_instance()) {
        // The Fenwick fast path and the materialized sets must implement the
        // same *directional* coverage under Eq. 2 thresholds.
        let var = VariableLambda::compute(&inst, lambda.max(1));
        let lazy = solve_greedy_sc(&inst, &var);
        let naive = solve_greedy_sc_naive(&inst, &var);
        prop_assert_eq!(lazy.selected, naive.selected);
    }

    #[test]
    fn complete_cover_contains_pins_and_covers(
        (inst, lambda) in medium_instance(),
        pin_seed in any::<u64>(),
    ) {
        use mqdiv::core::algorithms::complete_cover;
        let f = FixedLambda(lambda);
        let pin = (pin_seed % inst.len() as u64) as u32;
        let sol = complete_cover(&inst, &f, &[pin]);
        prop_assert!(sol.selected.contains(&pin));
        prop_assert!(coverage::is_cover(&inst, &f, &sol.selected));
    }

    #[test]
    fn covers_are_monotone_in_lambda((inst, lambda) in tiny_instance()) {
        // A cover for lambda stays a cover for any larger lambda.
        let f = FixedLambda(lambda);
        let sol = solve_scan(&inst, &f);
        let bigger = FixedLambda(lambda + 17);
        prop_assert!(coverage::is_cover(&inst, &bigger, &sol.selected));
        // And the optimum can only shrink.
        let opt_small = solve_brute(&inst, &f, None).unwrap();
        let opt_big = solve_brute(&inst, &bigger, None).unwrap();
        prop_assert!(opt_big.size() <= opt_small.size());
    }

    #[test]
    fn variable_lambda_covers_are_valid((inst, lambda) in medium_instance()) {
        let var = VariableLambda::compute(&inst, lambda.max(1));
        for sol in [
            solve_scan(&inst, &var),
            solve_scan_plus(&inst, &var, LabelOrder::Input),
            solve_greedy_sc(&inst, &var),
        ] {
            prop_assert!(
                coverage::is_cover(&inst, &var, &sol.selected),
                "{} non-cover under Eq. 2 lambda", sol.algorithm
            );
        }
    }

    #[test]
    fn whole_instance_is_always_a_cover((inst, lambda) in medium_instance()) {
        let f = FixedLambda(lambda);
        let all: Vec<u32> = (0..inst.len() as u32).collect();
        prop_assert!(coverage::is_cover(&inst, &f, &all));
    }

    #[test]
    fn solution_is_minimal_under_brute((inst, lambda) in tiny_instance()) {
        // Removing any post from the brute-force optimum breaks coverage
        // (the optimum is inclusion-minimal).
        let f = FixedLambda(lambda);
        let opt = solve_brute(&inst, &f, None).unwrap();
        for skip in 0..opt.selected.len() {
            let reduced: Vec<u32> = opt
                .selected
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, &p)| p)
                .collect();
            prop_assert!(
                !coverage::is_cover(&inst, &f, &reduced),
                "optimum is not minimal"
            );
        }
    }
}
